"""Fig. 14 — iaCPQx query time as the path-length bound k grows."""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig14_k_query_time
from repro.bench.runner import prepare_dataset
from repro.core.interest import InterestAwareIndex
from repro.graph.datasets import load_dataset


@pytest.mark.parametrize("k", [1, 2, 3])
def test_query_time_at_k(benchmark, k):
    """Average S/C4 query time at one k on the robots stand-in."""
    graph = load_dataset("robots", scale=0.2, seed=7)
    prepared = prepare_dataset("robots", graph, ("S", "C4"), 2, k=k, seed=7)
    engine = InterestAwareIndex.build(graph, k=k, interests=prepared.interests)
    queries = [wq.query for wq in prepared.all_queries()]
    if not queries:
        pytest.skip("no queries generated")

    def run():
        for query in queries:
            engine.evaluate(query)

    benchmark(run)


def test_fig14_table(benchmark, results_dir):
    """Regenerate the Fig. 14 sweep."""
    result = benchmark.pedantic(
        lambda: fig14_k_query_time(
            datasets=("robots",), ks=(1, 2, 3, 4), templates=("T", "S", "C2", "C4")
        ),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    assert {row[1] for row in result.rows} == {1, 2, 3, 4}
