"""Fig. 11 — iaCPQx scalability on growing gMark citation graphs."""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig11_scalability
from repro.core.interest import InterestAwareIndex
from repro.graph.datasets import gmark_interests
from repro.graph.schema import citation_schema


@pytest.mark.parametrize("size", [300, 900, 2700])
def test_gmark_build(benchmark, size):
    """iaCPQx construction time on a gMark graph of the given size."""
    graph = citation_schema().generate(size, seed=7)
    interests = frozenset(gmark_interests(graph))
    index = benchmark.pedantic(
        lambda: InterestAwareIndex.build(graph, k=2, interests=interests),
        rounds=2,
        iterations=1,
    )
    assert index.num_pairs > 0


def test_fig11_table(benchmark, results_dir):
    """Regenerate the Fig. 11 per-template growth series."""
    result = benchmark.pedantic(
        lambda: fig11_scalability(
            sizes=(300, 600, 1200), templates=("T", "S", "C2", "C4")
        ),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
