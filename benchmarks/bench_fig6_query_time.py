"""Fig. 6 — the main query-time comparison.

Benchmarks each method's average template-query time on a representative
dataset, and regenerates the full per-dataset table.  The reproduction
target is the ranking shape: CPQx / iaCPQx dominate the
conjunction-heavy templates (T, S, TT, St), Path stays competitive on
pure join chains (C2, C4), the matchers win some cyclic joins (Ti, Si),
and BFS trails everywhere.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig6_query_time
from repro.bench.runner import ALL_METHODS, prepare_dataset
from repro.graph.datasets import load_dataset
from repro.query.templates import template_names


@pytest.fixture(scope="module")
def prepared():
    graph = load_dataset("robots", scale=0.25, seed=7)
    return prepare_dataset(
        "robots", graph, tuple(template_names()), queries_per_template=2, seed=7
    )


@pytest.mark.parametrize("method", ALL_METHODS)
@pytest.mark.parametrize("template", ["T", "S", "St", "C2", "C4", "Ti"])
def test_query_time(benchmark, prepared, method, template):
    """Average evaluation time of one template for one method."""
    engine = prepared.engine(method)
    queries = [wq.query for wq in prepared.workload[template]]
    if not queries:
        pytest.skip("sparse graph produced no queries for this template")

    def run():
        for query in queries:
            engine.evaluate(query)

    benchmark(run)


def test_fig6_table(benchmark, results_dir):
    """Regenerate the Fig. 6 table across the default dataset subset."""
    result = benchmark.pedantic(
        lambda: fig6_query_time(datasets=("robots", "advogato")),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    # shape check: on conjunctive templates, language-aware beats BFS
    for dataset in ("robots", "advogato"):
        for template in ("T", "S"):
            rows = {
                row[1]: row[3]
                for row in result.rows
                if row[0] == dataset and row[2] == template
            }
            if "CPQx" in rows and "BFS" in rows:
                assert rows["CPQx"] <= rows["BFS"] * 5
