"""Table VI — iaCPQx edge and label-sequence (interest) update times.

The paper's shape: interest deletion is near-instant (drop one posting
list), interest insertion costs one sequence evaluation, edge updates sit
in between — all far below a rebuild.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import table6_iacpqx_updates
from repro.bench.runner import prepare_dataset
from repro.core.interest import InterestAwareIndex
from repro.graph.datasets import load_dataset


@pytest.fixture()
def setting():
    graph = load_dataset("robots", scale=0.3, seed=7)
    prepared = prepare_dataset("robots", graph, ("C2", "S"), 4, seed=7)
    return graph, prepared.interests


@pytest.mark.parametrize("operation", ["seq-delete", "seq-insert"])
def test_interest_update(benchmark, setting, operation):
    """Single interest-sequence maintenance cost."""
    graph, interests = setting
    seq = sorted((s for s in interests if len(s) > 1), key=repr)[0]

    def setup():
        index = InterestAwareIndex.build(graph, k=2, interests=interests)
        if operation == "seq-insert":
            index.delete_interest(seq)
        return (index,), {}

    def run(index):
        if operation == "seq-delete":
            index.delete_interest(seq)
        else:
            index.insert_interest(seq)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


def test_table6(benchmark, results_dir):
    """Regenerate Table VI; sequence deletion must be the cheapest op."""
    result = benchmark.pedantic(
        lambda: table6_iacpqx_updates(datasets=("robots", "advogato"), updates=10),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    for _name, edge_del, edge_ins, seq_del, seq_ins in result.rows:
        assert seq_del <= seq_ins  # deletion is a posting drop (paper: µs vs s)
        assert max(edge_del, edge_ins, seq_ins) < 5.0
