"""Table III — pruning power of the CPQ-equivalence classes.

Counts class identifiers (CPQx / iaCPQx) versus s-t pairs (iaPath)
flowing through the evaluation of S-template queries; the paper's point
is that class counts are orders of magnitude smaller.
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.experiments import table3_pruning_power


def test_table3(benchmark, results_dir):
    """Regenerate Table III and check the pruning-power shape."""
    result = benchmark.pedantic(
        lambda: table3_pruning_power(datasets=("robots", "advogato", "biogrid")),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    for row in result.rows:
        _, cpqx_classes, ia_classes, iapath_pairs = row
        # iaCPQx touches no more identifiers than iaPath touches pairs
        assert ia_classes <= iapath_pairs
        if cpqx_classes != "-":
            assert cpqx_classes <= iapath_pairs
