"""Fig. 9 — YAGO2 benchmark queries Y1-Y4.

Runs the four translated benchmark query shapes over the YAGO2-like
schema graph with iaCPQx, iaPath, the matchers, and BFS; the paper
reports iaCPQx achieving the smallest average time.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig9_yago_benchmark
from repro.bench.runner import build_engine
from repro.graph.datasets import load_dataset
from repro.query.ast import resolve
from repro.query.templates import yago2_queries
from repro.query.workloads import workload_interests


@pytest.fixture(scope="module")
def setting():
    graph = load_dataset("yago2-bench", scale=0.25, seed=7)
    queries = {
        name: resolve(query, graph.registry)
        for name, query in yago2_queries().items()
    }
    interests = frozenset(workload_interests(list(queries.values()), 2))
    return graph, queries, interests


@pytest.mark.parametrize("method", ["iaCPQx", "iaPath", "TurboHom", "Tentris", "BFS"])
def test_yago2_queries(benchmark, setting, method):
    """Average Y1-Y4 evaluation time for one method."""
    graph, queries, interests = setting
    engine = build_engine(method, graph, k=2, interests=interests)

    def run():
        for query in queries.values():
            engine.evaluate(query)

    benchmark(run)


def test_fig9_table(benchmark, results_dir):
    """Regenerate the Fig. 9 table."""
    result = benchmark.pedantic(fig9_yago_benchmark, rounds=1, iterations=1)
    assert {row[0] for row in result.rows} == {"Y1", "Y2", "Y3", "Y4"}
    write_result(results_dir, result)
