"""Table II — dataset overview.

Regenerates the dataset statistics table (|V|, |E|, |L| with inverses) for
the synthetic stand-ins next to the paper's original numbers, and
benchmarks representative dataset builds.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import table2_datasets
from repro.graph.datasets import load_dataset


@pytest.mark.parametrize("name", ["robots", "advogato", "yago", "g-mark-1m"])
def test_dataset_build(benchmark, name):
    """Time building one dataset stand-in."""
    graph = benchmark(lambda: load_dataset(name, scale=0.25, seed=7))
    assert graph.num_vertices > 0
    assert graph.num_edges > 0


def test_table2_render(benchmark, results_dir):
    """Regenerate the full Table II and persist it."""
    result = benchmark.pedantic(table2_datasets, rounds=1, iterations=1)
    assert len(result.rows) >= 19  # 14 real stand-ins + 5 gMark + bench graphs
    write_result(results_dir, result)
