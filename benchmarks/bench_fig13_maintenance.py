"""Fig. 13 — impact of lazy maintenance on query time.

After x% of edges are deleted and re-inserted, lookup costs rise a little
(more, finer classes) but join-heavy templates barely move; answers stay
identical — the paper verifies the same.
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.experiments import fig13_maintenance_impact


def test_fig13(benchmark, results_dir):
    """Regenerate the Fig. 13 sweep and bound the degradation."""
    result = benchmark.pedantic(
        lambda: fig13_maintenance_impact(
            dataset="robots",
            edge_ratios=(0.0, 0.05, 0.20),
            templates=("T", "C2", "C4"),
        ),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    # query time after churn stays within two orders of magnitude of fresh
    for method in ("CPQx", "iaCPQx"):
        fresh = {
            row[2]: row[3]
            for row in result.rows
            if row[0] == method and row[1] == 0
        }
        worst = {
            row[2]: row[3]
            for row in result.rows
            if row[0] == method and row[1] == 20
        }
        for template, fresh_time in fresh.items():
            if template in worst and fresh_time > 0:
                assert worst[template] <= fresh_time * 100 + 1e-3
