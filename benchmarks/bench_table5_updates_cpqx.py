"""Table V — CPQx edge deletion / insertion maintenance time."""

from __future__ import annotations

import random

import pytest

from conftest import write_result
from repro.bench.experiments import table5_cpqx_updates
from repro.core.cpqx import CPQxIndex
from repro.graph.datasets import load_dataset


@pytest.mark.parametrize("operation", ["delete", "insert"])
def test_edge_update(benchmark, operation):
    """Single-edge maintenance cost (fresh index per round)."""
    base = load_dataset("robots", scale=0.3, seed=7)
    rng = random.Random(7)
    triples = sorted(base.triples(), key=repr)
    edge = triples[rng.randrange(len(triples))]

    def setup():
        index = CPQxIndex.build(base.copy(), k=2)
        return (index,), {}

    def run(index):
        if operation == "delete":
            index.delete_edge(*edge)
        else:
            index.insert_edge(edge[0], edge[1], edge[2] + 1)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


def test_table5(benchmark, results_dir):
    """Regenerate Table V; updates must be cheap relative to rebuilds."""
    result = benchmark.pedantic(
        lambda: table5_cpqx_updates(datasets=("robots", "advogato"), updates=10),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    for _name, deletion, insertion in result.rows:
        assert deletion < 2.0 and insertion < 2.0
