"""Ablation: CQ evaluation with and without CPQ chain collapsing.

Sec. VII #3's pipeline claim, measured: collapsing eliminable chain
variables into index-served CPQ label sequences versus joining every
triple pattern individually.
"""

from __future__ import annotations

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.cq import ConjunctiveQuery, evaluate_cq, parse_bgp
from repro.graph.generators import bipartite_visit_graph


@pytest.fixture(scope="module")
def setting():
    graph = bipartite_visit_graph(
        num_users=110, num_items=18, follow_edges=330, visit_edges=240, seed=8
    )
    index = CPQxIndex.build(graph, k=2)
    bgp = parse_bgp(
        "?x follows ?a . ?a follows ?c . ?c visits ?b",
        ("?x", "?b"),
        graph.registry,
    )
    return graph, index, bgp


def _uncollapsed(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """Make every variable projected so no chain can collapse."""
    variables = tuple(sorted(cq.variables()))
    return ConjunctiveQuery(cq.patterns, variables)


@pytest.mark.parametrize("mode", ["collapsed", "uncollapsed"])
def test_cq_pipeline(benchmark, setting, mode):
    """Chain-collapsed CPQ pipeline vs per-pattern joins."""
    graph, index, bgp = setting
    query = bgp if mode == "collapsed" else _uncollapsed(bgp)

    def run():
        return evaluate_cq(query, index)

    answers = benchmark(run)
    assert answers  # the workload graph is dense enough to always match
    if mode == "uncollapsed":
        projected = {
            (row[sorted(query.projection).index("?x")],
             row[sorted(query.projection).index("?b")])
            for row in answers
        }
        collapsed = evaluate_cq(bgp, index)
        # same x/b endpoints regardless of collapsing
        assert {(x, b) for x, b in collapsed} == projected
