"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these isolate *why* CPQx wins:

1. class-id conjunction (Prop. 4.1) vs forced pair-set intersection on
   the same index;
2. identity fusion (Algorithm 4's \\*ID operators) vs a separate
   ``∩ id`` conjunction against the all-loops relation;
3. representative-based ``Il2c`` construction vs the paper's literal
   per-pair Algorithm 2 loop (identical output, different cost).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import prepare_dataset
from repro.core.cpqx import CPQxIndex
from repro.core.executor import Result, execute_plan
from repro.graph.datasets import load_dataset
from repro.plan.nodes import ConjNode, IdentityAll
from repro.plan.planner import build_plan, greedy_splitter


@pytest.fixture(scope="module")
def setting():
    graph = load_dataset("robots", scale=0.3, seed=7)
    prepared = prepare_dataset("robots", graph, ("S", "Ti"), 3, seed=7)
    index = prepared.engine("CPQx")
    return graph, prepared, index


class _PairizedProvider:
    """Adapter forcing every lookup to materialize pairs immediately.

    This disables the class-id fast path while reusing the same stored
    index — the "language-unaware execution over CPQx" ablation.
    """

    def __init__(self, index: CPQxIndex) -> None:
        self.index = index
        self.graph = index.graph

    def lookup(self, seq):
        classes = self.index.lookup(seq).classes
        return Result.of_pairs(self.index.expand_classes(classes))

    def expand_classes(self, classes):  # pragma: no cover - never class-typed
        return self.index.expand_classes(classes)

    def loop_classes_of(self, classes):  # pragma: no cover
        return self.index.loop_classes_of(classes)


@pytest.mark.parametrize("mode", ["class-conjunction", "pair-conjunction"])
def test_conjunction_path(benchmark, setting, mode):
    """Class-id intersection vs forced pair intersection on S queries."""
    _, prepared, index = setting
    queries = [wq.query for wq in prepared.workload["S"]]
    if not queries:
        pytest.skip("no S queries generated")
    provider = index if mode == "class-conjunction" else _PairizedProvider(index)
    plans = [build_plan(q, greedy_splitter(index.k)) for q in queries]

    def run():
        for plan in plans:
            execute_plan(plan, provider)

    benchmark(run)
    # both modes must agree on the answers
    for plan, query in zip(plans, queries):
        assert execute_plan(plan, provider) == index.evaluate(query)


@pytest.mark.parametrize("mode", ["fused", "unfused"])
def test_identity_fusion(benchmark, setting, mode):
    """Algorithm 4's fused IDENTITY vs an explicit ∩ id conjunction."""
    _, prepared, index = setting
    queries = [wq.query for wq in prepared.workload["Ti"]]
    if not queries:
        pytest.skip("no Ti queries generated")
    splitter = greedy_splitter(index.k)
    plans = []
    for wq_query in queries:
        fused = build_plan(wq_query, splitter)
        if mode == "fused":
            plans.append(fused)
        else:
            # strip the fusion flag and conjoin with the full loop relation
            inner = build_plan(wq_query.left, splitter)  # Ti = (chain) & id
            plans.append(ConjNode(inner, IdentityAll()))

    def run():
        for plan in plans:
            execute_plan(plan, index)

    benchmark(run)
    for plan, query in zip(plans, queries):
        assert execute_plan(plan, index) == index.evaluate(query)


@pytest.mark.parametrize("method", ["representative", "per-pair"])
def test_il2c_construction(benchmark, setting, method):
    """Representative-based vs per-pair Il2c assembly (same output)."""
    graph, _, reference = setting
    index = benchmark.pedantic(
        lambda: CPQxIndex.build(graph, k=2, il2c_method=method),
        rounds=2,
        iterations=1,
    )
    assert index.num_classes == reference.num_classes
    assert index.size_bytes() == reference.size_bytes()


@pytest.mark.parametrize("mode", ["greedy-split", "optimized-split"])
def test_split_optimizer(benchmark, mode):
    """Greedy prefix splitting vs cardinality-aware DP splitting.

    Uses diameter-4 chain queries (C4) on a label-skewed graph, where
    split-point choice moves real work between join inputs.
    """
    from repro.graph.generators import relabel_graph
    from repro.graph.datasets import load_dataset
    from repro.plan.optimizer import enable_optimizer
    from repro.query.workloads import random_template_queries

    graph = relabel_graph(load_dataset("advogato", scale=0.3, seed=7), 6, seed=7)
    index = CPQxIndex.build(graph, k=2)
    queries = [
        wq.query
        for wq in random_template_queries(graph, "C4", count=4, seed=7)
    ]
    if not queries:
        pytest.skip("no C4 queries generated")
    baseline = [index.evaluate(q) for q in queries]
    if mode == "optimized-split":
        enable_optimizer(index)
        assert [index.evaluate(q) for q in queries] == baseline

    def run():
        for query in queries:
            index.evaluate(query)

    benchmark(run)
