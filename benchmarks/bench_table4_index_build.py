"""Table IV — index sizes and construction times for all four indexes."""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import table4_index_size
from repro.bench.runner import build_engine, prepare_dataset
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def prepared():
    graph = load_dataset("robots", scale=0.3, seed=7)
    return prepare_dataset("robots", graph, ("S", "C2", "T"), 2, seed=7)


@pytest.mark.parametrize("method", ["CPQx", "iaCPQx", "Path", "iaPath"])
def test_index_build(benchmark, prepared, method):
    """Construction time of one index on the robots stand-in."""
    index = benchmark.pedantic(
        lambda: build_engine(method, prepared.graph, k=2, interests=prepared.interests),
        rounds=2,
        iterations=1,
    )
    assert index.size_bytes() > 0


def test_table4(benchmark, results_dir):
    """Regenerate Table IV and verify the paper's size ordering."""
    result = benchmark.pedantic(
        lambda: table4_index_size(datasets=("robots", "advogato", "wikidata")),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    by_key = {(row[0], row[1]): row for row in result.rows}
    for dataset in ("robots", "advogato"):
        cpqx = by_key[(dataset, "CPQx")]
        path = by_key[(dataset, "Path")]
        ia = by_key[(dataset, "iaCPQx")]
        # Thm. 4.2 compares the γ|C| vs γ|P≤k| terms; on very sparse
        # stand-ins γ ≈ 1 and the fixed per-class key overhead can nudge
        # CPQx slightly above Path, so allow a 15% tolerance (the paper's
        # own robots row shows only an 11% gap).
        assert cpqx[2] <= path[2] * 1.15
        assert ia[2] <= cpqx[2]
    # infeasible dataset reports dashes for the full indexes (paper's "-")
    assert by_key[("wikidata", "CPQx")][2] == "-"
    assert by_key[("wikidata", "iaCPQx")][2] != "-"
