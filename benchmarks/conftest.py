"""Shared configuration for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md §3).  Rendered result tables are written to
``benchmarks/results/*.txt`` so a ``pytest benchmarks/ --benchmark-only``
run leaves the paper-shaped outputs on disk alongside pytest-benchmark's
own timing report.

Scale is kept small by default so the whole suite completes in minutes on
a laptop; export ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_QUERIES`` to run
closer to the paper's sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_BENCH_SCALE", "0.25")
os.environ.setdefault("REPRO_BENCH_QUERIES", "2")

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config) -> None:
    """Keep benchmark calibration short so the whole suite stays fast."""
    for option, value in (
        ("benchmark_max_time", 0.4),
        ("benchmark_min_rounds", 2),
        ("benchmark_warmup", False),
    ):
        if hasattr(config.option, option):
            setattr(config.option, option, value)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the rendered experiment tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, result) -> None:
    """Persist a rendered ExperimentResult (used by every bench module)."""
    safe = result.experiment.lower().replace(" ", "_").replace(".", "")
    path = results_dir / f"{safe}.txt"
    path.write_text(result.render() + "\n", encoding="utf-8")
