"""Fig. 8 — impact of the interest-set size on iaCPQx query time.

Shrinks the interest share from 100% of the workload's label sequences to
0% (only the mandatory single labels); times should degrade toward the
join-everything regime as interests vanish.
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.experiments import fig8_interest_size


def test_fig8(benchmark, results_dir):
    """Regenerate the Fig. 8 sweep on the yago stand-in."""
    result = benchmark.pedantic(
        lambda: fig8_interest_size(
            dataset="yago",
            fractions=(1.0, 0.5, 0.0),
            templates=("T", "S", "C2", "C4"),
        ),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    # |Lq| must shrink monotonically with the interest share
    sizes = {}
    for pct, _template, _time, lq in result.rows:
        sizes.setdefault(pct, lq)
    ordered = [sizes[pct] for pct in sorted(sizes, reverse=True)]
    assert ordered == sorted(ordered, reverse=True)
