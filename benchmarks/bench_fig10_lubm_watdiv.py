"""Fig. 10 — LUBM / WatDiv benchmark-query time as graphs grow.

The paper's observation to reproduce: WatDiv's join-heavier query mix
grows faster with graph size than LUBM's.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig10_lubm_watdiv
from repro.core.interest import InterestAwareIndex
from repro.graph.schema import lubm_schema, watdiv_schema
from repro.query.ast import resolve
from repro.query.templates import lubm_queries, watdiv_queries
from repro.query.workloads import workload_interests


@pytest.mark.parametrize(
    "suite,schema,queries",
    [
        ("lubm", lubm_schema, lubm_queries),
        ("watdiv", watdiv_schema, watdiv_queries),
    ],
    ids=["lubm", "watdiv"],
)
def test_suite_queries(benchmark, suite, schema, queries):
    """Average benchmark-suite evaluation time at a fixed size."""
    graph = schema().generate(700, seed=7)
    resolved = [resolve(q, graph.registry) for q in queries().values()]
    interests = frozenset(workload_interests(resolved, 2))
    engine = InterestAwareIndex.build(graph, k=2, interests=interests)

    def run():
        for query in resolved:
            engine.evaluate(query)

    benchmark(run)


def test_fig10_table(benchmark, results_dir):
    """Regenerate the Fig. 10 growth table."""
    result = benchmark.pedantic(
        lambda: fig10_lubm_watdiv(sizes=(300, 600, 1200)), rounds=1, iterations=1
    )
    assert {row[0] for row in result.rows} == {"LUBM", "WatDiv"}
    write_result(results_dir, result)
    # larger graphs must not get *faster* by an order of magnitude (sanity)
    for suite in ("LUBM", "WatDiv"):
        times = [row[3] for row in result.rows if row[0] == suite]
        assert times[-1] >= times[0] / 10
