"""Fig. 7 — empty vs non-empty vs first-answer query time.

On the knowledge-graph stand-ins, compares iaCPQx with the TurboHom++-
and Tentris-style engines across answer-emptiness classes, including the
first-answer (limit=1) mode.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig7_empty_nonempty
from repro.bench.runner import prepare_dataset
from repro.graph.datasets import load_dataset
from repro.query.workloads import split_by_emptiness


@pytest.fixture(scope="module")
def prepared():
    graph = load_dataset("yago", scale=0.2, seed=7)
    return prepare_dataset("yago", graph, ("T", "S", "C4"), 4, seed=7)


@pytest.mark.parametrize("method", ["iaCPQx", "TurboHom", "Tentris"])
def test_first_answer(benchmark, prepared, method):
    """First-answer evaluation (limit=1) on non-empty T queries."""
    non_empty, _ = split_by_emptiness(prepared.workload["T"], prepared.graph)
    if not non_empty:
        pytest.skip("no non-empty queries generated")
    engine = prepared.engine(method)

    def run():
        for wq in non_empty:
            engine.evaluate(wq.query, limit=1)

    benchmark(run)


def test_fig7_table(benchmark, results_dir):
    """Regenerate the Fig. 7 table on the yago stand-in."""
    result = benchmark.pedantic(
        lambda: fig7_empty_nonempty(datasets=("yago",)), rounds=1, iterations=1
    )
    assert result.rows
    write_result(results_dir, result)
    kinds = set(result.column("kind"))
    # C2's full sequence passes the non-empty sub-path filter, so at least
    # one non-empty (hence first-answer) measurement always exists.
    assert "non-empty" in kinds and "first" in kinds
