"""Fig. 15 — iaCPQx index size and construction time as k grows."""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.experiments import fig15_k_index_cost
from repro.bench.runner import prepare_dataset
from repro.core.interest import InterestAwareIndex
from repro.graph.datasets import load_dataset


@pytest.mark.parametrize("k", [1, 2, 3])
def test_build_at_k(benchmark, k):
    """iaCPQx construction time at one k."""
    graph = load_dataset("robots", scale=0.2, seed=7)
    prepared = prepare_dataset("robots", graph, ("S", "C4"), 2, k=k, seed=7)
    index = benchmark.pedantic(
        lambda: InterestAwareIndex.build(graph, k=k, interests=prepared.interests),
        rounds=2,
        iterations=1,
    )
    assert index.size_bytes() > 0


def test_fig15_table(benchmark, results_dir):
    """Regenerate the Fig. 15 sweep; size grows (weakly) with k."""
    result = benchmark.pedantic(
        lambda: fig15_k_index_cost(datasets=("robots",), ks=(1, 2, 3, 4)),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    sizes = [row[2] for row in result.rows if row[0] == "robots"]
    assert sizes == sorted(sizes) or sizes[-1] >= sizes[0]
