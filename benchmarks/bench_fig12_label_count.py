"""Fig. 12 — index size vs number of labels (ego-Facebook topology).

The shape to reproduce: Path/CPQx sizes grow with the label count while
the interest-aware indexes shrink, and the CPQ-aware indexes stay below
their language-unaware counterparts throughout.
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.experiments import fig12_label_count


def test_fig12(benchmark, results_dir):
    """Regenerate the Fig. 12 label-count sweep and check its shape."""
    result = benchmark.pedantic(
        lambda: fig12_label_count(label_counts=(16, 64, 256, 1024)),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    for labels, path_size, cpqx_size, iapath_size, iacpqx_size in result.rows:
        # CPQ-aware index never larger than the language-unaware one (Thm 4.2)
        assert cpqx_size <= path_size
        assert iacpqx_size <= iapath_size * 1.05 + 64
    # interest-aware sizes shrink as labels grow (fixed interests match less)
    ia_sizes = result.column("iaCPQx")
    assert ia_sizes[-1] <= ia_sizes[0]
