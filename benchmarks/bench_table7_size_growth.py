"""Table VII — index-size growth under lazy maintenance.

Lazy updates never merge classes, so churn grows the index; the paper's
claim to reproduce is that the growth ratio stays modest (≤ ~1.7 at 20%
churn).
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.experiments import table7_size_growth


def test_table7(benchmark, results_dir):
    """Regenerate Table VII and bound the growth ratios."""
    result = benchmark.pedantic(
        lambda: table7_size_growth(
            dataset="robots",
            edge_ratios=(0.01, 0.05, 0.20),
            seq_counts=(2, 6),
        ),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    write_result(results_dir, result)
    for _index, _kind, _amount, ratio in result.rows:
        assert 0.5 <= ratio <= 3.0
    edge_rows = [row for row in result.rows if row[1] == "edges" and row[0] == "CPQx"]
    ratios = [row[3] for row in edge_rows]
    # growth is (weakly) monotone in churn
    assert all(b >= a * 0.95 for a, b in zip(ratios, ratios[1:]))
