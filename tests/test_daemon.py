"""Serving-daemon suite: admission, breaker, drain, swap, identical answers.

Two layers of tests:

* **in-loop** — the daemon driven directly on an asyncio event loop
  (``daemon.submit`` and friends), where pausing the dispatch gate makes
  admission, shedding, expiry, and drain ordering deterministic;
* **over HTTP** — a daemon on a background thread behind the real TCP
  front, driven through :class:`repro.serve.daemon.DaemonClient` exactly
  as the bench and the CI smoke script drive it.

The recurring invariant is the repository's serving contract: every
answer the daemon returns is byte-identical to the serial
``execute_batch`` encoding, no matter what the admission queue, the
breaker, or a mid-flight hot swap did around it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.daemon_bench import DaemonHarness
from repro.db import GraphDatabase
from repro.graph.generators import random_graph
from repro.serve.daemon import (
    AdmissionQueue,
    CircuitBreaker,
    DaemonConfig,
    LatencyRecorder,
    Request,
    ServingDaemon,
)
from repro.serve.daemon.batching import encode_answers

QUERIES = [
    "l1 & l2",
    "(l1 . l2) & id",
    "(l1 . l1) & (l2 . l2)",
    "l1 . l2^-",
    "(l2 . l1) & l3",
    "l1 . l2",
]


@pytest.fixture(scope="module")
def daemon_graph():
    return random_graph(40, 220, 3, seed=13)


@pytest.fixture
def db(daemon_graph):
    database = GraphDatabase.from_graph(daemon_graph.copy()).build_index(
        engine="cpqx", k=2
    )
    yield database
    database.close()


def expected_answers(database, texts):
    batch = database.execute_batch(texts)
    return {
        text: encode_answers(result.pairs(), None)
        for text, result in zip(texts, batch.results, strict=True)
    }


def run_with_daemon(db, config, scenario):
    """Run ``await scenario(daemon)`` against a started in-loop daemon."""

    async def main():
        daemon = ServingDaemon(db, config)
        await daemon.start()
        try:
            return await scenario(daemon)
        finally:
            daemon.request_stop()
            await daemon.drain()
            await daemon.close()

    return asyncio.run(main())


async def park_dispatcher(daemon):
    """Pause dispatch deterministically (see the bench's flush trick).

    An idle batch loop is blocked inside ``queue.get()`` — already past
    the gate — so the first request after clearing the gate is still
    served.  Awaiting one flush request guarantees the loop has cycled
    back to the cleared gate before the caller proceeds.
    """
    daemon.dispatch_gate.clear()
    status, _ = await daemon.submit(QUERIES[0])
    assert status == 200


# ---------------------------------------------------------------------------
# components: the bounded queue, the latency window, the breaker
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_offer_sheds_beyond_capacity(self):
        async def main():
            queue = AdmissionQueue(2)
            requests = [
                Request(None, "q", None, None, asyncio.get_running_loop().create_future())
                for _ in range(3)
            ]
            assert queue.offer(requests[0]) is True
            assert queue.offer(requests[1]) is True
            assert queue.offer(requests[2]) is False  # full: shed, never block
            assert queue.depth() == 2
            assert queue.max_depth == 2

        asyncio.run(main())

    def test_drain_pending_returns_requests_not_stop(self):
        async def main():
            queue = AdmissionQueue(4)
            request = Request(
                None, "q", None, None, asyncio.get_running_loop().create_future()
            )
            queue.offer(request)
            await queue.put_stop()
            pending = queue.drain_pending()
            assert pending == [request]
            assert queue.depth() == 0

        asyncio.run(main())

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(0)


class TestLatencyRecorder:
    def test_percentiles_over_window(self):
        recorder = LatencyRecorder(window=100)
        for ms in range(1, 101):
            recorder.record(ms / 1000)
        assert recorder.percentile(50) == pytest.approx(0.050, abs=0.002)
        assert recorder.percentile(99) == pytest.approx(0.099, abs=0.002)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p99_ms"] >= snapshot["p50_ms"]

    def test_empty_window_reports_none(self):
        assert LatencyRecorder().percentile(50) is None
        assert LatencyRecorder().snapshot()["p50_ms"] is None


class TestCircuitBreaker:
    def test_trips_only_at_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.times_opened == 1

    def test_open_routes_to_thread_fallback(self):
        breaker = CircuitBreaker(threshold=1, cooldown=60.0)
        breaker.record_failure()
        assert breaker.route("process") == "thread"
        assert breaker.route("auto") == "thread"

    def test_thread_mode_never_touches_the_breaker_route(self):
        breaker = CircuitBreaker(threshold=1, cooldown=60.0)
        breaker.record_failure()
        assert breaker.route("thread") == "thread"
        assert breaker.probes == 0

    def test_half_open_probes_process_then_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.state == "half_open"  # lazy transition on observation
        assert breaker.route("auto") == "process"
        assert breaker.probes == 1
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_failed_probe_reopens_and_rearms_cooldown(self):
        breaker = CircuitBreaker(threshold=2, cooldown=0.05)
        breaker.record_failure()
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.state == "half_open"
        breaker.record_failure()  # one failure re-opens a half-open breaker
        assert breaker.state == "open"
        assert breaker.times_opened == 1  # re-arm, not a fresh open

    def test_success_interrupts_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0)


# ---------------------------------------------------------------------------
# the in-loop daemon: admission, deadlines, shedding, drain, swap
# ---------------------------------------------------------------------------
class TestDaemonServing:
    def test_answers_identical_to_serial_execute_batch(self, db):
        expected = expected_answers(db, QUERIES)

        async def scenario(daemon):
            responses = await asyncio.gather(
                *(daemon.submit(text) for text in QUERIES)
            )
            for text, (status, payload) in zip(QUERIES, responses, strict=True):
                assert status == 200
                assert payload["answers"] == expected[text]
                assert payload["count"] == len(expected[text])
                assert payload["generation"] == 1

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)

    def test_concurrent_submissions_coalesce_into_batches(self, db):
        async def scenario(daemon):
            await park_dispatcher(daemon)
            tasks = [asyncio.create_task(daemon.submit(text)) for text in QUERIES]
            while daemon.queue.depth() < len(QUERIES):
                await asyncio.sleep(0.005)
            daemon.dispatch_gate.set()
            responses = await asyncio.gather(*tasks)
            assert all(status == 200 for status, _ in responses)
            # All six parked requests fused into one serve_batch call.
            assert any(payload["batched"] == len(QUERIES) for _, payload in responses)

        run_with_daemon(
            db, DaemonConfig(mode="thread", batch_window=0.05, max_batch=32), scenario
        )

    def test_parse_errors_are_structured_400s(self, db):
        async def scenario(daemon):
            status, payload = await daemon.submit("l1 &&& nonsense (((")
            assert status == 400
            assert payload["error"] == "parse"
            # A garbage query costs its sender, never the daemon.
            status, _ = await daemon.submit(QUERIES[0])
            assert status == 200

        run_with_daemon(db, DaemonConfig(mode="thread"), scenario)

    def test_limit_truncates_deterministically(self, db):
        expected = expected_answers(db, QUERIES)
        wide = max(QUERIES, key=lambda text: len(expected[text]))
        assert len(expected[wide]) > 2

        async def scenario(daemon):
            status, payload = await daemon.submit(wide, limit=2)
            assert status == 200
            assert payload["answers"] == expected[wide][:2]

        run_with_daemon(db, DaemonConfig(mode="thread"), scenario)

    def test_over_capacity_requests_shed_with_structured_errors(self, db):
        async def scenario(daemon):
            await park_dispatcher(daemon)
            seated = [asyncio.create_task(daemon.submit(QUERIES[0])) for _ in range(2)]
            while daemon.queue.depth() < 2:
                await asyncio.sleep(0.005)
            status, payload = await daemon.submit(QUERIES[1])
            assert status == 503
            assert payload["error"] == "overloaded"
            assert payload["capacity"] == 2
            assert payload["queue_depth"] == 2
            assert daemon.stats.shed == 1
            assert daemon.queue.max_depth <= daemon.queue.capacity
            daemon.dispatch_gate.set()
            responses = await asyncio.gather(*seated)
            assert all(status == 200 for status, _ in responses)

        run_with_daemon(
            db, DaemonConfig(mode="thread", capacity=2, batch_window=0.002), scenario
        )

    def test_expired_deadlines_rejected_before_dispatch(self, db):
        async def scenario(daemon):
            await park_dispatcher(daemon)
            task = asyncio.create_task(daemon.submit(QUERIES[0], timeout=0.01))
            while daemon.queue.depth() < 1:
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.05)  # let the parked request expire
            daemon.dispatch_gate.set()
            status, payload = await task
            assert status == 504
            assert payload["error"] == "deadline"
            assert daemon.stats.expired == 1

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)

    def test_graceful_drain_answers_everything_admitted(self, db):
        expected = expected_answers(db, QUERIES)

        async def scenario(daemon):
            await park_dispatcher(daemon)
            tasks = [asyncio.create_task(daemon.submit(text)) for text in QUERIES]
            while daemon.queue.depth() < len(QUERIES):
                await asyncio.sleep(0.005)
            daemon.request_stop()
            # New admissions are rejected the moment draining begins...
            status, payload = await daemon.submit(QUERIES[0])
            assert (status, payload["error"]) == (503, "draining")
            await daemon.drain()
            # ...but everything already admitted is answered, correctly.
            for text, task in zip(QUERIES, tasks, strict=True):
                status, payload = task.result()
                assert status == 200
                assert payload["answers"] == expected[text]
            assert daemon.drained_clean is True

        async def main():
            daemon = ServingDaemon(
                db, DaemonConfig(mode="thread", batch_window=0.002)
            )
            await daemon.start()
            try:
                await scenario(daemon)
            finally:
                await daemon.close()

        asyncio.run(main())

    def test_forced_drain_fails_fast_and_resolves_every_future(self, db, monkeypatch):
        real = db.serve_batch

        def glacial(*args, **kwargs):
            time.sleep(1.0)
            return real(*args, **kwargs)

        async def scenario(daemon):
            await park_dispatcher(daemon)
            monkeypatch.setattr(db, "serve_batch", glacial)
            tasks = [asyncio.create_task(daemon.submit(text)) for text in QUERIES[:3]]
            while daemon.queue.depth() < 3:
                await asyncio.sleep(0.005)
            daemon.request_stop()
            await daemon.drain()
            assert daemon.drained_clean is False
            # Past the deadline the daemon still answers — structured
            # draining errors, never abandoned futures.
            for task in tasks:
                status, payload = task.result()
                assert (status, payload["error"]) == (503, "draining")

        async def main():
            daemon = ServingDaemon(
                db,
                DaemonConfig(mode="thread", batch_window=0.002, drain_deadline=0.1),
            )
            await daemon.start()
            try:
                await scenario(daemon)
            finally:
                monkeypatch.setattr(db, "serve_batch", real)
                await daemon.close()

        asyncio.run(main())

    def test_batch_level_failure_feeds_the_breaker_and_answers_500(
        self, db, monkeypatch
    ):
        def broken(*args, **kwargs):
            raise RuntimeError("session exploded")

        async def scenario(daemon):
            monkeypatch.setattr(db, "serve_batch", broken)
            status, payload = await daemon.submit(QUERIES[0])
            assert status == 500
            assert payload["error"] == "serving"
            assert daemon.breaker.failures == 1

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)


class TestHotSwap:
    def test_update_swaps_generation_and_new_queries_see_it(self, db, daemon_graph):
        texts = list(QUERIES)
        expected_old = expected_answers(db, texts)
        reference = GraphDatabase.from_graph(daemon_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        from repro.bench.daemon_bench import _missing_edge

        edge = _missing_edge(daemon_graph)
        reference.update(add_edges=[edge])
        expected_new = expected_answers(reference, texts)
        reference.close()
        changed = [t for t in texts if expected_old[t] != expected_new[t]]

        async def scenario(daemon):
            before = await asyncio.gather(*(daemon.submit(t) for t in texts))
            for text, (status, payload) in zip(texts, before, strict=True):
                assert status == 200
                assert payload["answers"] == expected_old[text]
            status, payload = await daemon.apply_update({"add_edges": [list(edge)]})
            assert status == 200
            assert payload["generation"] == 1  # incremental: same engine gen
            assert daemon.stats.swaps == 1
            after = await asyncio.gather(*(daemon.submit(t) for t in texts))
            for text, (status, payload) in zip(texts, after, strict=True):
                assert status == 200
                assert payload["answers"] == expected_new[text]

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)
        assert changed, "update must change at least one workload answer"

    def test_probes_racing_a_swap_see_old_or_new_never_torn(self, db, daemon_graph):
        texts = list(QUERIES)
        expected_old = expected_answers(db, texts)
        reference = GraphDatabase.from_graph(daemon_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        from repro.bench.daemon_bench import _missing_edge

        edge = _missing_edge(daemon_graph)
        reference.update(add_edges=[edge])
        expected_new = expected_answers(reference, texts)
        reference.close()

        async def scenario(daemon):
            probes = [
                asyncio.create_task(daemon.submit(texts[i % len(texts)]))
                for i in range(4 * len(texts))
            ]
            await asyncio.sleep(0.01)
            status, _ = await daemon.apply_update({"add_edges": [list(edge)]})
            assert status == 200
            responses = await asyncio.gather(*probes)
            for i, (status, payload) in enumerate(responses):
                text = texts[i % len(texts)]
                assert status == 200
                assert payload["answers"] in (expected_old[text], expected_new[text])

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)

    def test_reload_swaps_a_saved_index_in(self, db, daemon_graph, tmp_path):
        texts = list(QUERIES)
        other = GraphDatabase.from_graph(daemon_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        from repro.bench.daemon_bench import _missing_edge

        other.update(add_edges=[_missing_edge(daemon_graph)])
        expected_new = expected_answers(other, texts)
        saved = tmp_path / "swapped.idx"
        other.save(str(saved))
        other.close()

        async def scenario(daemon):
            generation_before = daemon.db._engine_gen
            status, payload = await daemon.reload_index(str(saved))
            assert status == 200
            assert payload["generation"] == generation_before + 1
            for text in texts:
                status, payload = await daemon.submit(text)
                assert status == 200
                assert payload["answers"] == expected_new[text]

        run_with_daemon(db, DaemonConfig(mode="thread", batch_window=0.002), scenario)

    def test_reload_rejects_bad_paths_without_dropping_the_index(self, db):
        async def scenario(daemon):
            status, payload = await daemon.reload_index("/nonexistent/index.idx")
            assert status == 400
            assert payload["error"] == "reload"
            status, _ = await daemon.submit(QUERIES[0])
            assert status == 200  # the old index still serves

        run_with_daemon(db, DaemonConfig(mode="thread"), scenario)


# ---------------------------------------------------------------------------
# over HTTP: the real TCP front, as the bench and smoke script drive it
# ---------------------------------------------------------------------------
class TestDaemonOverHTTP:
    def test_lifecycle_probes_query_stats_and_drain(self, db):
        expected = expected_answers(db, QUERIES)
        harness = DaemonHarness(
            db, DaemonConfig(mode="thread", batch_window=0.002, capacity=8)
        )
        client = harness.start()
        try:
            assert client.healthz()[0] == 200
            assert client.readyz()[0] == 200
            with ThreadPoolExecutor(max_workers=4) as pool:
                rows = list(
                    pool.map(lambda text: (text, client.query(text)), QUERIES)
                )
            for text, (status, payload) in rows:
                assert status == 200
                assert payload["answers"] == expected[text]
            stats = client.stats()
            assert stats["completed"] == len(QUERIES)
            assert stats["ready"] is True
            assert stats["breaker"]["state"] == "closed"
            assert stats["queue"]["capacity"] == 8
            assert stats["latency"]["count"] == len(QUERIES)
        finally:
            harness.stop(client)
        assert harness.daemon.drained_clean is True

    def test_malformed_requests_get_structured_errors(self, db):
        import http.client

        harness = DaemonHarness(db, DaemonConfig(mode="thread"))
        client = harness.start()
        try:
            status, payload = client.query("")  # empty query text
            assert (status, payload["error"]) == (400, "parse")
            connection = http.client.HTTPConnection(
                "127.0.0.1", harness.daemon.port, timeout=10.0
            )
            connection.request(
                "POST", "/query", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            connection.request("GET", "/no-such-route")
            assert connection.getresponse().status == 404
            connection.close()
        finally:
            harness.stop(client)

    def test_shutdown_endpoint_drains_cleanly(self, db):
        harness = DaemonHarness(db, DaemonConfig(mode="thread"))
        client = harness.start()
        status, _ = client.query(QUERIES[0])
        assert status == 200
        harness.stop(client)  # POST /shutdown + join
        assert harness.daemon.drained_clean is True
        assert harness.daemon.stats.completed == 1
