"""Thread-safety of the serving path: locks, memo layers, serve_batch.

The guarantees under test (documented in ``docs/concurrency.md``):

* :class:`repro.core.concurrency.RWLock` admits concurrent readers,
  gives writers exclusivity, and prefers waiting writers;
* :class:`repro.core.cache.LRUCache` survives concurrent get/put
  hammering without corruption;
* :meth:`GraphDatabase.serve_batch` under N threads returns exactly the
  serial :meth:`execute_batch` answers;
* the stress case: reader threads querying *while* ``update()``
  mutates the graph never observe a state that is not an update
  boundary, and no stale memo entry survives an update.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.cache import LRUCache
from repro.core.concurrency import RWLock
from repro.core.cpqx import CPQxIndex
from repro.db import GraphDatabase
from repro.graph.generators import random_graph

QUERIES = [
    "l1 & l2",
    "(l1 . l2) & id",
    "(l1 . l1) & (l2 . l2)",
    "l1 . l2^-",
    "(l2 . l1) & l3",
]


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # only passes if all 3 readers are inside

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log: list[str] = []

        def writer(tag):
            with lock.write():
                log.append(f"{tag}-in")
                time.sleep(0.02)
                log.append(f"{tag}-out")

        def reader():
            with lock.read():
                log.append("r-in")
                log.append("r-out")

        threads = [
            threading.Thread(target=writer, args=("w1",)),
            threading.Thread(target=reader),
            threading.Thread(target=writer, args=("w2",)),
        ]
        for thread in threads:
            thread.start()
            time.sleep(0.005)  # deterministic arrival order
        for thread in threads:
            thread.join(timeout=5)
        # Critical sections never interleave: every "-in" is followed
        # by its own "-out" before the next section opens.
        for position in range(0, len(log), 2):
            assert log[position].replace("-in", "") == \
                log[position + 1].replace("-out", "")

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write():
                writer_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        writer_started.wait(timeout=5)
        deadline = time.monotonic() + 5
        while lock._writers_waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.001)  # let the writer reach the wait loop
        assert lock._writers_waiting == 1
        late_reader_entered = threading.Event()

        def late_reader():
            with lock.read():
                late_reader_entered.set()

        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.02)
        # Writer queued => the late reader must be held at the door.
        assert not late_reader_entered.is_set()
        lock.release_read()
        thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert writer_done.is_set() and late_reader_entered.is_set()


class TestLRUCacheThreadSafety:
    def test_concurrent_hammering_stays_consistent(self):
        cache = LRUCache(capacity=32)
        errors: list[BaseException] = []

        def hammer(offset: int) -> None:
            try:
                for round_ in range(400):
                    key = (offset * round_) % 50
                    cache.put(key, key * 2)
                    value = cache.get(key % 37)
                    assert value is None or value == (key % 37) * 2
                    if round_ % 97 == 0:
                        cache.clear()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(offset,))
            for offset in range(1, 9)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(cache) <= 32


@pytest.fixture(scope="module")
def stress_graph():
    return random_graph(50, 260, 3, seed=11)


class TestServeBatch:
    def test_identical_to_serial_execution(self, stress_graph):
        db = GraphDatabase.from_graph(stress_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        serial = db.execute_batch(QUERIES)
        threaded = db.serve_batch(QUERIES * 4, workers=8)
        assert len(threaded) == 4 * len(serial)
        for index, result in enumerate(threaded):
            assert result.pairs() == serial[index % len(serial)].pairs()
        assert threaded.total_answers == 4 * serial.total_answers

    def test_respects_limit_and_resolves_auto_engine(self, stress_graph):
        db = GraphDatabase.from_graph(stress_graph.copy())
        batch = db.serve_batch(["l1 & l2"], workers=2, limit=3)
        assert db.is_built  # engine="auto" resolved before threading
        assert len(batch[0].pairs()) <= 3


class TestConcurrentUpdateStress:
    """8 reader threads query while update() mutates the graph."""

    def _expected_per_step(self, base, steps):
        """Serial ground truth: fresh engine per post-step graph state."""
        expected = []
        state = base.copy()
        db = GraphDatabase.from_graph(state)
        for add_edges, remove_edges in [((), ())] + steps:
            for v, u, label in add_edges:
                state.add_edge(v, u, label)
            for v, u, label in remove_edges:
                state.remove_edge(v, u, label)
            engine = CPQxIndex.build(state.copy(), k=2)
            expected.append([
                engine.evaluate(db._resolve(query)) for query in QUERIES
            ])
        return expected

    def test_no_stale_reads_and_serial_equivalence(self, stress_graph):
        base = stress_graph
        vertices = sorted(base.vertices())[:4]
        v0, v1, v2, v3 = vertices
        steps = [
            ([("nv0", v0, "l1")], ()),
            ([(v1, "nv0", "l2")], ()),
            ((), [("nv0", v0, "l1")]),
            ([("nv1", "nv0", "l1"), (v2, "nv1", "l2")], ()),
            ((), [(v1, "nv0", "l2")]),
            ([(v3, "nv1", "l3")], ()),
        ]
        expected = self._expected_per_step(base, steps)
        valid_per_query = [
            {step[q] for step in expected} for q in range(len(QUERIES))
        ]

        db = GraphDatabase.from_graph(base.copy()).build_index(
            engine="cpqx", k=2
        )
        stop = threading.Event()
        violations: list[str] = []
        reader_errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    batch = db.execute_batch(QUERIES)
                    for q, result in enumerate(batch):
                        if result.pairs() not in valid_per_query[q]:
                            violations.append(QUERIES[q])
            except BaseException as exc:  # pragma: no cover - failure path
                reader_errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        try:
            for step_index, (add_edges, remove_edges) in enumerate(steps):
                time.sleep(0.01)
                db.update(add_edges=add_edges, remove_edges=remove_edges)
                # No stale memo hit: answers served immediately after the
                # update must reflect it (the token retired every cache).
                after = db.serve_batch(QUERIES, workers=4)
                for q, result in enumerate(after):
                    assert result.pairs() == expected[step_index + 1][q], (
                        f"stale answer after step {step_index} for "
                        f"{QUERIES[q]!r}"
                    )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

        assert not reader_errors, reader_errors
        assert not violations, (
            f"readers observed non-boundary states for: {set(violations)}"
        )
        # Final state equals a fresh serial re-run on the final graph.
        final = db.serve_batch(QUERIES, workers=8)
        for q, result in enumerate(final):
            assert result.pairs() == expected[-1][q]

    def test_rebuilding_engine_never_serves_mixed_state(self, stress_graph):
        # Non-incremental engines are *swapped* by update(): the serving
        # path must bind the engine inside the read lock, or an
        # in-flight batch would evaluate the stale index against the
        # already-mutated graph (a state matching no update boundary).
        from repro.baselines.path_index import PathIndex

        base = stress_graph
        v0, v1 = sorted(base.vertices())[:2]
        steps = [
            ([("nv0", v0, "l1"), ("nv0", v0, "l2")], ()),
            ([(v1, "nv0", "l1")], ()),
            ((), [("nv0", v0, "l2")]),
        ]
        state = base.copy()
        db_probe = GraphDatabase.from_graph(state)
        expected = []
        for add_edges, remove_edges in [((), ())] + steps:
            for v, u, label in add_edges:
                state.add_edge(v, u, label)
            for v, u, label in remove_edges:
                state.remove_edge(v, u, label)
            engine = PathIndex.build(state.copy(), k=2)
            expected.append([
                engine.evaluate(db_probe._resolve(query)) for query in QUERIES
            ])
        valid_per_query = [
            {step[q] for step in expected} for q in range(len(QUERIES))
        ]

        db = GraphDatabase.from_graph(base.copy()).build_index(
            engine="path", k=2
        )
        stop = threading.Event()
        violations: list[str] = []
        reader_errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    for q, result in enumerate(db.serve_batch(QUERIES, workers=2)):
                        if result.pairs() not in valid_per_query[q]:
                            violations.append(QUERIES[q])
            except BaseException as exc:  # pragma: no cover - failure path
                reader_errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for add_edges, remove_edges in steps:
                time.sleep(0.02)
                db.update(add_edges=add_edges, remove_edges=remove_edges)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not reader_errors, reader_errors
        assert not violations, (
            f"readers observed mixed engine/graph states for: {set(violations)}"
        )
        final = db.serve_batch(QUERIES, workers=4)
        for q, result in enumerate(final):
            assert result.pairs() == expected[-1][q]
