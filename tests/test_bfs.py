"""Unit tests for the index-free BFS baseline."""

from __future__ import annotations

import pytest

from repro.baselines.bfs import BFSEngine
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestLookups:
    def test_lookup_is_relation(self, g):
        engine = BFSEngine(g)
        assert engine.lookup((1,)).pairs == g.label_relation(1)
        assert engine.lookup((1, 2)).pairs == g.sequence_relation((1, 2))

    def test_splitter_keeps_sequences_whole(self, g):
        engine = BFSEngine(g)
        assert engine.splitter()((1, 2, 1, 2, 1)) == [(1, 2, 1, 2, 1)]

    def test_no_length_limit(self, g):
        engine = BFSEngine(g)
        query = parse("a . b . a . b . a", g.registry)
        assert engine.evaluate(query) == reference(query, g)


class TestQueries:
    @pytest.mark.parametrize("text", [
        "a", "id", "a & id", "(a . b) & a", "(a . b . a) & id",
    ])
    def test_matches_reference(self, g, text):
        engine = BFSEngine(g)
        query = parse(text, g.registry)
        assert engine.evaluate(query) == reference(query, g)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_workloads(self, seed):
        g = random_graph(16, 40, 3, seed=seed)
        engine = BFSEngine(g)
        for template in ("C2", "S", "St", "SC", "Si"):
            for wq in random_template_queries(g, template, count=2, seed=seed):
                assert engine.evaluate(wq.query) == reference(wq.query, g)

    def test_limit(self, g):
        engine = BFSEngine(g)
        answer = engine.evaluate(parse("a", g.registry), limit=1)
        assert len(answer) == 1
