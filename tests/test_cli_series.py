"""Tests for the CLI's figure-style series rendering."""

from __future__ import annotations

from repro.cli import EXPERIMENTS, SERIES_VIEWS, main


class TestSeriesViews:
    def test_views_reference_real_experiments(self):
        for name in SERIES_VIEWS:
            assert name in EXPERIMENTS

    def test_view_columns_exist(self, monkeypatch):
        """Each view's columns must exist in its experiment's headers."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.08")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "1")
        from repro.bench import experiments as E

        quick = {
            "fig14": lambda: E.fig14_k_query_time(
                datasets=("robots",), ks=(1, 2), templates=("C2",)
            ),
            "fig15": lambda: E.fig15_k_index_cost(datasets=("robots",), ks=(1, 2)),
        }
        for name, runner in quick.items():
            result = runner()
            x, y, group = SERIES_VIEWS[name]
            assert x in result.headers
            assert y in result.headers
            assert group in result.headers

    def test_cli_prints_chart_for_figures(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.08")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "1")
        assert main(["experiment", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 15" in out
        assert "log scale" in out
        assert "#" in out

    def test_cli_table_only_for_tables(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.08")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "1")
        assert main(["experiment", "table7"]) == 0
        out = capsys.readouterr().out
        assert "log scale" not in out
