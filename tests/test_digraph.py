"""Unit tests for the labeled digraph and its inverse-extended adjacency."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, UnknownVertexError
from repro.graph.digraph import LabeledDigraph
from repro.graph.io import edges_from_strings


@pytest.fixture()
def g() -> LabeledDigraph:
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestConstruction:
    def test_from_triples_registers_labels(self):
        graph = LabeledDigraph.from_triples([("x", "y", "rel")])
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.registry.id_of("rel") == 1

    def test_add_vertex_idempotent(self, g):
        before = g.num_vertices
        g.add_vertex(0)
        assert g.num_vertices == before

    def test_duplicate_edge_is_noop(self, g):
        before = g.num_edges
        g.add_edge(0, 1, "a")
        assert g.num_edges == before

    def test_add_edge_with_id(self, g):
        g.add_edge(1, 0, 1)
        assert g.has_edge(1, 0, 1)

    def test_add_edge_rejects_bad_label(self, g):
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 3.5)

    def test_edge_counts_include_inverses(self, g):
        assert g.num_edges == 4
        assert g.num_extended_edges == 8


class TestRemoval:
    def test_remove_edge(self, g):
        g.remove_edge(0, 1, "a")
        assert not g.has_edge(0, 1, 1)
        assert g.num_edges == 3

    def test_remove_missing_edge_raises(self, g):
        with pytest.raises(GraphError):
            g.remove_edge(0, 2, "a")

    def test_remove_edge_cleans_empty_buckets(self, g):
        g.remove_edge(0, 1, "a")
        # re-adding works and adjacency stays consistent
        g.add_edge(0, 1, "a")
        assert g.has_edge(0, 1, 1)

    def test_remove_vertex_removes_incident_edges(self, g):
        g.remove_vertex(0)
        assert not g.has_vertex(0)
        assert g.num_edges == 1  # only 1->2 b remains
        assert set(g.triples()) == {(1, 2, 2)}

    def test_remove_unknown_vertex_raises(self, g):
        with pytest.raises(UnknownVertexError):
            g.remove_vertex(99)


class TestExtendedAdjacency:
    def test_has_edge_inverse(self, g):
        assert g.has_edge(1, 0, -1)   # inverse of 0->1 a
        assert not g.has_edge(0, 1, -1)

    def test_successors_forward(self, g):
        assert g.successors(0, 1) == {1}
        assert g.successors(0, 2) == {0}

    def test_successors_inverse(self, g):
        assert g.successors(1, -1) == {0}
        assert g.successors(0, -1) == {2}

    def test_successors_missing(self, g):
        assert g.successors(99, 1) == frozenset()
        assert g.successors(1, 2) == {2}

    def test_out_items_covers_both_directions(self, g):
        items = {(label, frozenset(targets)) for label, targets in g.out_items(0)}
        assert (1, frozenset({1})) in items     # 0 -a-> 1
        assert (2, frozenset({0})) in items     # 0 -b-> 0 self loop
        assert (-1, frozenset({2})) in items    # 2 -a-> 0 inverted
        assert (-2, frozenset({0})) in items    # self loop inverse

    def test_edge_labels_extended(self, g):
        assert g.edge_labels(0, 1) == {1}
        assert g.edge_labels(1, 0) == {-1}
        assert g.edge_labels(0, 0) == {2, -2}
        assert g.edge_labels(0, 2) == {-1}  # only via inverse of 2->0 a

    def test_extended_triples_doubles(self, g):
        triples = list(g.extended_triples())
        assert len(triples) == 8
        assert (1, 0, -1) in triples

    def test_degrees(self, g):
        # vertex 0: out a->1, self b (fwd+inv), inverse of 2->0
        assert g.out_degree(0) == 4
        assert g.max_degree() >= 4

    def test_labels_used(self, g):
        assert g.labels_used() == {1, 2}


class TestRelations:
    def test_label_relation_forward(self, g):
        assert g.label_relation(1) == {(0, 1), (2, 0)}

    def test_label_relation_inverse_is_converse(self, g):
        forward = g.label_relation(1)
        backward = g.label_relation(-1)
        assert backward == {(u, v) for v, u in forward}

    def test_sequence_relation_empty_is_identity(self, g):
        assert g.sequence_relation(()) == {(v, v) for v in g.vertices()}

    def test_sequence_relation_single(self, g):
        assert g.sequence_relation((2,)) == {(1, 2), (0, 0)}

    def test_sequence_relation_composes(self, g):
        # a then b: 0-a->1-b->2 and 2-a->0-b->0
        assert g.sequence_relation((1, 2)) == {(0, 2), (2, 0)}

    def test_sequence_relation_with_inverse(self, g):
        # a then a^-: x -a-> m <-a- y; a-edges are 0->1 and 2->0,
        # which share no target, so only the trivial out-and-backs match
        assert g.sequence_relation((1, -1)) == {(0, 0), (2, 2)}


class TestMisc:
    def test_copy_is_deep_for_structure(self, g):
        clone = g.copy()
        clone.remove_edge(0, 1, "a")
        assert g.has_edge(0, 1, 1)
        assert not clone.has_edge(0, 1, 1)

    def test_copy_equal(self, g):
        assert g.copy() == g

    def test_equality_differs_on_edges(self, g):
        other = g.copy()
        other.add_edge(1, 1, "a")
        assert g != other

    def test_unhashable(self, g):
        with pytest.raises(TypeError):
            hash(g)

    def test_repr(self, g):
        assert "LabeledDigraph" in repr(g)
        assert "|V|=3" in repr(g)
