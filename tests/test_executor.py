"""Unit tests for the plan executor (Algorithms 3 & 4)."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.core.cpqx import CPQxIndex
from repro.core.executor import ExecutionStats, Result, execute_plan
from repro.graph.io import edges_from_strings
from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a"])


@pytest.fixture()
def index(g):
    return CPQxIndex.build(g, k=2)


class TestResult:
    def test_exactly_one_side(self):
        with pytest.raises(QuerySyntaxError):
            Result()
        with pytest.raises(QuerySyntaxError):
            Result(pairs=frozenset(), classes=frozenset())

    def test_constructors(self):
        assert Result.of_pairs([(1, 2)]).pairs == {(1, 2)}
        assert Result.of_classes([3]).classes == {3}


class TestLookupExecution:
    def test_lookup(self, index):
        answer = execute_plan(Lookup((1,)), index)
        assert answer == {(0, 1), (2, 0), (1, 0)}

    def test_lookup_with_identity(self, index):
        # a a^-: out-and-back loops plus (0,1)/(1,0) two-way pairs
        unfiltered = execute_plan(Lookup((1, -1)), index)
        filtered = execute_plan(Lookup((1, -1), with_identity=True), index)
        assert filtered == {(v, u) for v, u in unfiltered if v == u}
        assert filtered < unfiltered

    def test_missing_sequence(self, index):
        assert execute_plan(Lookup((99,)), index) == frozenset()


class TestJoinExecution:
    def test_join(self, index):
        plan = JoinNode(Lookup((1,)), Lookup((2,)))
        assert execute_plan(plan, index) == {(0, 2), (2, 0), (1, 0)}

    def test_join_with_identity(self, index):
        plan = JoinNode(Lookup((1,)), Lookup((1,)), with_identity=True)
        direct = execute_plan(JoinNode(Lookup((1,)), Lookup((1,))), index)
        fused = execute_plan(plan, index)
        assert fused == {(v, u) for v, u in direct if v == u}

    def test_join_stats(self, index):
        stats = ExecutionStats()
        execute_plan(JoinNode(Lookup((1,)), Lookup((2,))), index, stats=stats)
        assert stats.joins == 1
        assert stats.lookups == 2
        assert stats.pairs_touched > 0


class TestConjunctionExecution:
    def test_class_level_conjunction(self, index):
        stats = ExecutionStats()
        plan = ConjNode(Lookup((1,)), Lookup((1, -1)))
        answer = execute_plan(plan, index, stats=stats)
        assert stats.class_conjunctions == 1
        assert stats.pair_conjunctions == 0
        # pairs with an a-edge AND an a-out-and-back
        expected = index.expand_classes(index.lookup((1,)).classes) & \
            index.expand_classes(index.lookup((1, -1)).classes)
        assert answer == expected

    def test_mixed_conjunction_materializes(self, index):
        stats = ExecutionStats()
        # join result (pairs) ∩ lookup result (classes)
        plan = ConjNode(JoinNode(Lookup((1,)), Lookup((2,))), Lookup((1,)))
        execute_plan(plan, index, stats=stats)
        assert stats.pair_conjunctions == 1

    def test_conjunction_with_identity_on_classes(self, index):
        plan = ConjNode(Lookup((1, 2)), Lookup((2, -2)), with_identity=True)
        answer = execute_plan(plan, index)
        assert all(v == u for v, u in answer)

    def test_empty_class_intersection(self, index):
        plan = ConjNode(Lookup((1,)), Lookup((99,)))
        assert execute_plan(plan, index) == frozenset()


class TestIdentityAll:
    def test_returns_all_loops(self, g, index):
        answer = execute_plan(IdentityAll(), index)
        assert answer == {(v, v) for v in g.vertices()}


class TestLimit:
    def test_limit_truncates(self, index):
        full = execute_plan(Lookup((1,)), index)
        limited = execute_plan(Lookup((1,)), index, limit=2)
        assert len(limited) == 2
        assert limited <= full

    def test_limit_on_class_expansion_is_partial(self, index):
        limited = execute_plan(Lookup((1,)), index, limit=1)
        assert len(limited) == 1

    def test_limit_larger_than_answer(self, index):
        full = execute_plan(Lookup((2,)), index)
        assert execute_plan(Lookup((2,)), index, limit=99) == full


class TestStatsMerge:
    def test_merge_accumulates(self):
        a = ExecutionStats(lookups=1, classes_touched=2, pairs_touched=3,
                           class_conjunctions=1, pair_conjunctions=0, joins=2)
        b = ExecutionStats(lookups=2, classes_touched=1, pairs_touched=1,
                           class_conjunctions=0, pair_conjunctions=2, joins=1)
        a.merge(b)
        assert (a.lookups, a.classes_touched, a.pairs_touched) == (3, 3, 4)
        assert (a.class_conjunctions, a.pair_conjunctions, a.joins) == (1, 2, 3)


class TestEngineBaseErrors:
    def test_pair_engine_rejects_class_calls(self, g):
        from repro.baselines.bfs import BFSEngine

        engine = BFSEngine(g)
        with pytest.raises(QuerySyntaxError):
            engine.expand_classes(frozenset({1}))
        with pytest.raises(QuerySyntaxError):
            engine.loop_classes_of(frozenset({1}))
