"""Unit tests for graph IO (TSV, JSON, string fixtures)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.io import (
    edges_from_strings,
    graph_from_document,
    graph_to_document,
    load_json,
    load_tsv,
    save_json,
    save_tsv,
)


@pytest.fixture()
def sample():
    return edges_from_strings(["alice bob knows", "bob carol knows", "carol alice likes"])


class TestTsv:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "graph.tsv"
        save_tsv(sample, path)
        loaded = load_tsv(path)
        assert loaded == sample

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# header\n\na\tb\tf\n", encoding="utf-8")
        graph = load_tsv(path)
        assert graph.num_edges == 1

    def test_integer_vertices_parsed(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("1\t2\tf\n", encoding="utf-8")
        graph = load_tsv(path)
        assert graph.has_vertex(1)
        assert not graph.has_vertex("1")

    def test_bad_field_count_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\n", encoding="utf-8")
        with pytest.raises(GraphError):
            load_tsv(path)

    def test_empty_graph_roundtrip(self, tmp_path):
        from repro.graph.digraph import LabeledDigraph

        path = tmp_path / "empty.tsv"
        save_tsv(LabeledDigraph(), path)
        assert load_tsv(path).num_edges == 0


class TestJson:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "graph.json"
        save_json(sample, path)
        loaded = load_json(path)
        assert loaded == sample
        # label names survive the round trip
        assert set(loaded.registry) == set(sample.registry)

    def test_document_roundtrip_preserves_isolated_vertices(self):
        from repro.graph.digraph import LabeledDigraph

        graph = LabeledDigraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "b", "f")
        doc = graph_to_document(graph)
        restored = graph_from_document(doc)
        assert restored.has_vertex("lonely")
        assert restored == graph

    def test_bad_edge_entry_raises(self):
        with pytest.raises(GraphError):
            graph_from_document({"labels": ["f"], "edges": [["a", "b"]]})


class TestStringFixture:
    def test_parses_whitespace_fields(self):
        graph = edges_from_strings(["x   y   f"])
        assert graph.has_edge("x", "y", 1)

    def test_bad_line_raises(self):
        with pytest.raises(GraphError):
            edges_from_strings(["only two"])
