"""Unit tests for P≤k / L≤k enumeration (Sec. III-A)."""

from __future__ import annotations

import pytest

from repro.errors import IndexBuildError
from repro.core.paths import (
    enumerate_sequences,
    gamma,
    invert_sequences,
    label_sequences_for_pair,
    reachable_pairs,
)
from repro.graph.generators import cycle_graph, random_graph
from repro.graph.io import edges_from_strings


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestEnumerateSequences:
    def test_k1_is_extended_edge_relations(self, g):
        sequences = enumerate_sequences(g, 1)
        assert sequences[(1,)] == {(0, 1), (2, 0)}
        assert sequences[(-1,)] == {(1, 0), (0, 2)}
        assert sequences[(2,)] == {(1, 2), (0, 0)}

    def test_k2_contains_compositions(self, g):
        sequences = enumerate_sequences(g, 2)
        assert sequences[(1, 2)] == {(0, 2), (2, 0)}
        # shorter sequences are retained at higher k
        assert sequences[(1,)] == {(0, 1), (2, 0)}

    def test_no_empty_entries(self, g):
        for pairs in enumerate_sequences(g, 3).values():
            assert pairs

    def test_matches_direct_relation_computation(self, g):
        sequences = enumerate_sequences(g, 3)
        for seq, pairs in sequences.items():
            assert pairs == g.sequence_relation(seq), seq

    def test_k_zero_rejected(self, g):
        with pytest.raises(IndexBuildError):
            enumerate_sequences(g, 0)

    def test_sequence_lengths_bounded(self, g):
        for seq in enumerate_sequences(g, 2):
            assert 1 <= len(seq) <= 2


class TestInvertSequences:
    def test_transposition(self, g):
        sequences = enumerate_sequences(g, 2)
        per_pair = invert_sequences(sequences)
        for seq, pairs in sequences.items():
            for pair in pairs:
                assert seq in per_pair[pair]

    def test_per_pair_matches_targeted_computation(self, g):
        per_pair = invert_sequences(enumerate_sequences(g, 2))
        for pair, seqs in per_pair.items():
            assert seqs == label_sequences_for_pair(g, pair[0], pair[1], 2)


class TestReachablePairs:
    def test_matches_enumeration_domain(self, g):
        for k in (1, 2, 3):
            expected = set()
            for pairs in enumerate_sequences(g, k).values():
                expected.update(pairs)
            assert reachable_pairs(g, k) == expected

    def test_monotone_in_k(self, g):
        assert reachable_pairs(g, 1) <= reachable_pairs(g, 2) <= reachable_pairs(g, 3)

    def test_excludes_identity_only_pairs(self):
        g = edges_from_strings(["0 1 a"])
        pairs = reachable_pairs(g, 2)
        # (0,0) reachable via a then a^-, but an isolated vertex is not
        g.add_vertex(9)
        assert (9, 9) not in reachable_pairs(g, 2)
        assert (0, 0) in pairs


class TestPerPairSequences:
    def test_empty_for_unconnected(self, g):
        g.add_vertex(9)
        assert label_sequences_for_pair(g, 0, 9, 3) == frozenset()

    def test_cycle_lengths(self):
        g = cycle_graph(3)
        seqs = label_sequences_for_pair(g, 0, 0, 3)
        assert (1, 1, 1) in seqs          # all the way around
        assert (1, -1) in seqs            # out and back
        assert (1,) not in seqs

    def test_agreement_with_enumeration_on_random_graph(self):
        g = random_graph(15, 40, 3, seed=2)
        per_pair = invert_sequences(enumerate_sequences(g, 2))
        for pair in list(per_pair)[:40]:
            assert per_pair[pair] == label_sequences_for_pair(g, pair[0], pair[1], 2)


class TestGamma:
    def test_empty_graph(self):
        from repro.graph.digraph import LabeledDigraph

        g = LabeledDigraph()
        g.add_vertex(0)
        assert gamma(g, 2) == 0.0

    def test_single_edge(self):
        g = edges_from_strings(["0 1 a"])
        # pairs: (0,1):{a}, (1,0):{a^-}, (0,0):{aa^-}, (1,1):{a^- a}
        assert gamma(g, 2) == 1.0

    def test_gamma_grows_with_redundancy(self):
        sparse = edges_from_strings(["0 1 a"])
        dense = edges_from_strings(["0 1 a", "0 1 b", "0 1 c"])
        assert gamma(dense, 2) > gamma(sparse, 2)
