"""The parallel k-path-bisimulation partition equals the serial one.

PR 4's contract is stronger than fingerprint equality: the sharded
refinement of :func:`repro.core.partition.compute_partition_codes` must
return a :class:`~repro.core.partition.CodePartition` *identical* to the
serial build — class ids included (both paths renumber canonically by
smallest member code).  These tests check that contract by property over
random graphs, k values, and shard counts; on degenerate graphs; through
every engine's fingerprint; and for the serial-fallback threshold and
the worker-failure path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.partition as partition_module
from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from array import array

from repro.core.parallel import index_fingerprint, shard_processes
from repro.core.partition import compute_partition_codes, refines
from repro.db import GraphDatabase
from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph


def _exit_silently(task, conn) -> None:
    """A worker that dies without reporting (for the EOF-surfacing test)."""
    conn.close()


def assert_partitions_match(graph, serial, sharded) -> None:
    """The full PR-4 contract plus the weaker invariants it implies."""
    # Identity: same classes, same numbering, same diagnostics.
    assert sharded.class_of == serial.class_of
    assert sharded.loop_classes == serial.loop_classes
    assert sharded.level_class_counts == serial.level_class_counts
    # Class-block equality, member for member.
    assert {
        class_id: tuple(members.codes)
        for class_id, members in sharded.blocks.items()
    } == {
        class_id: tuple(members.codes)
        for class_id, members in serial.blocks.items()
    }
    # Mutual refinement on the decoded pairs (partition equality even if
    # the numbering contract ever weakens).
    decode = graph.interner.decode_pair
    fine = {decode(code): cid for code, cid in sharded.class_of.items()}
    coarse = {decode(code): cid for code, cid in serial.class_of.items()}
    assert refines(fine, coarse)
    assert refines(coarse, fine)


class TestParallelEqualsSerial:
    """The property the parallel partition stands on."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.sampled_from([1, 2, 3]),
        workers=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed, k, workers):
        graph = random_graph(30, 140, 3, seed=seed)
        serial = compute_partition_codes(graph, k)
        sharded = compute_partition_codes(graph, k, workers=workers, min_pairs=0)
        assert_partitions_match(graph, serial, sharded)

    def test_larger_graph_k3(self):
        graph = random_graph(60, 420, 3, seed=99)
        serial = compute_partition_codes(graph, 3)
        sharded = compute_partition_codes(graph, 3, workers=3, min_pairs=0)
        assert_partitions_match(graph, serial, sharded)


class TestDegenerateGraphs:
    """Empty, single-edge, and single-label graphs survive sharding."""

    def test_empty_graph(self):
        empty = LabeledDigraph()
        for k in (1, 2, 3):
            sharded = compute_partition_codes(empty, k, workers=4, min_pairs=0)
            assert sharded == compute_partition_codes(empty, k)
            assert sharded.num_pairs == 0
            assert sharded.num_classes == 0

    def test_single_edge(self):
        graph = LabeledDigraph.from_triples([("a", "b", "f")])
        for k in (1, 2, 3):
            serial = compute_partition_codes(graph, k)
            sharded = compute_partition_codes(graph, k, workers=4, min_pairs=0)
            assert_partitions_match(graph, serial, sharded)
            if k == 1:
                # the forward pair and its virtual inverse
                assert serial.num_pairs == 2
            else:
                # plus the (a,a)/(b,b) loops that f·f⁻ composes at level 2
                assert serial.num_pairs == 4

    def test_all_same_label(self):
        chain = [(i, i + 1, "a") for i in range(8)]
        cycle = [(f"c{i}", f"c{(i + 1) % 5}", "a") for i in range(5)]
        loop = [("x", "x", "a")]
        graph = LabeledDigraph.from_triples(chain + cycle + loop)
        for k in (2, 3):
            serial = compute_partition_codes(graph, k)
            sharded = compute_partition_codes(graph, k, workers=3, min_pairs=0)
            assert_partitions_match(graph, serial, sharded)

    def test_star_graph_skewed_sources(self):
        # One hub anchors most pairs: round-robin sharding must still
        # cover every source and merge back losslessly.
        triples = [("hub", f"s{i}", "a") for i in range(20)]
        triples += [(f"s{i}", f"s{i + 1}", "b") for i in range(19)]
        graph = LabeledDigraph.from_triples(triples)
        serial = compute_partition_codes(graph, 2)
        sharded = compute_partition_codes(graph, 2, workers=4, min_pairs=0)
        assert_partitions_match(graph, serial, sharded)


class TestFallbackAndValidation:
    """Threshold fallback, argument validation, failure propagation."""

    def test_small_graphs_fall_back_to_serial(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parallel refinement ran below the threshold")

        monkeypatch.setattr(partition_module, "_parallel_refinement", forbidden)
        graph = random_graph(30, 120, 2, seed=1)
        # far below PARALLEL_MIN_PAIRS: workers must be quietly ignored
        result = compute_partition_codes(graph, 2, workers=4)
        assert result == compute_partition_codes(graph, 2)

    def test_min_pairs_zero_forces_parallel(self, monkeypatch):
        calls = []
        original = partition_module._parallel_refinement

        def recording(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(partition_module, "_parallel_refinement", recording)
        graph = random_graph(30, 120, 2, seed=1)
        compute_partition_codes(graph, 2, workers=2, min_pairs=0)
        assert calls

    def test_k_one_never_shards(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("k=1 has no refinement levels to shard")

        monkeypatch.setattr(partition_module, "_parallel_refinement", forbidden)
        graph = random_graph(20, 80, 2, seed=3)
        parallel = compute_partition_codes(graph, 1, workers=4, min_pairs=0)
        assert parallel == compute_partition_codes(graph, 1)

    def test_invalid_workers_rejected(self):
        graph = LabeledDigraph.from_triples([("a", "b", "f")])
        for bad in (0, -1, "four"):
            with pytest.raises(IndexBuildError):
                compute_partition_codes(graph, 2, workers=bad)

    def test_worker_failure_surfaces_as_build_error(self):
        # Spawn-compatible failure injection (workers re-import the
        # package, so monkeypatching the parent cannot reach them): a
        # malformed task — mismatched level-1 columns — makes the worker
        # raise mid-protocol, and the shipped ("error", traceback)
        # message must surface parent-side as IndexBuildError.
        bad_task = (2, [0], 4, array("q", [1, 2, 3]), array("q", [0]))
        with shard_processes(
            partition_module._partition_shard_worker, [bad_task]
        ) as connections:
            with pytest.raises(IndexBuildError, match="partition worker"):
                partition_module._recv_payload(connections[0])

    def test_dead_worker_surfaces_as_build_error(self):
        # A worker that dies without reporting closes its pipe; the
        # parent must turn the EOF into IndexBuildError, not hang.
        with shard_processes(_exit_silently, [0]) as connections:
            with pytest.raises(IndexBuildError, match="exited unexpectedly"):
                partition_module._recv_payload(connections[0])


class TestEngineIntegration:
    """The parallel partition reaches the engines and changes nothing."""

    BUILDERS = [
        ("cpqx", lambda g, w: CPQxIndex.build(g, k=2, workers=w)),
        ("path", lambda g, w: PathIndex.build(g, k=2, workers=w)),
        (
            "iacpqx",
            lambda g, w: InterestAwareIndex.build(
                g, k=2, interests={(1, 2), (2, -1)}, workers=w
            ),
        ),
        (
            "iapath",
            lambda g, w: InterestAwarePathIndex.build(
                g, k=2, interests={(1, 2), (2, -1)}, workers=w
            ),
        ),
    ]

    @pytest.mark.parametrize("key,build", BUILDERS, ids=[k for k, _ in BUILDERS])
    def test_fingerprints_identical_with_forced_parallel_partition(
        self, key, build, monkeypatch
    ):
        # Drop the threshold so the CPQx builds below actually exercise
        # the sharded partition (test graphs sit under the default).
        monkeypatch.setattr(partition_module, "PARALLEL_MIN_PAIRS", 0)
        graph = random_graph(50, 260, 3, seed=11)
        serial = build(graph, 1)
        sharded = build(graph, 2)
        assert index_fingerprint(serial) == index_fingerprint(sharded)

    def test_session_build_index_uses_parallel_partition(self, monkeypatch):
        monkeypatch.setattr(partition_module, "PARALLEL_MIN_PAIRS", 0)
        calls = []
        original = partition_module._parallel_refinement

        def recording(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(partition_module, "_parallel_refinement", recording)
        graph = random_graph(40, 200, 3, seed=4)
        sharded = GraphDatabase.from_graph(graph.copy()).build_index(
            engine="cpqx", k=2, workers=2
        )
        assert calls
        serial = GraphDatabase.from_graph(graph.copy()).build_index(
            engine="cpqx", k=2
        )
        assert index_fingerprint(sharded.engine) == index_fingerprint(serial.engine)
        assert sharded.query("l1 & l2").pairs() == serial.query("l1 & l2").pairs()


class TestServeBatchAutoWorkers:
    """serve_batch accepts the same "auto" sentinel as build_index."""

    def test_auto_matches_serial_answers(self):
        graph = random_graph(30, 150, 3, seed=2)
        db = GraphDatabase.from_graph(graph).build_index(engine="cpqx", k=2)
        queries = ["l1 & l2", "l1 . l2", "(l1 . l2) & id"]
        serial = db.execute_batch(queries)
        auto = db.serve_batch(queries, workers="auto")
        assert [r.pairs() for r in auto] == [r.pairs() for r in serial]

    def test_bad_sentinel_rejected(self):
        db = GraphDatabase.from_triples([("a", "b", "l1")])
        db.build_index(engine="cpqx", k=2)
        with pytest.raises(IndexBuildError):
            db.serve_batch(["l1"], workers="all")
