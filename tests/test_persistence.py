"""Unit tests for index persistence (save/load round trips, crash safety)."""

from __future__ import annotations

import json

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.persistence import (
    FILE_MAGIC,
    CorruptIndexError,
    PersistenceError,
    decode_vertex,
    encode_vertex,
    load_index,
    save_index,
)
from repro.serve.faults import FaultInjected, FaultInjector, inject
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.graph.schema import citation_schema
from repro.query.parser import parse
from repro.query.workloads import random_template_queries


class TestVertexCodec:
    @pytest.mark.parametrize("vertex", [0, -3, "name", ("u", 5), ("a", ("b", 1))])
    def test_roundtrip(self, vertex):
        assert decode_vertex(encode_vertex(vertex)) == vertex

    def test_rejects_unsupported(self):
        with pytest.raises(PersistenceError):
            encode_vertex(3.14)
        with pytest.raises(PersistenceError):
            encode_vertex(True)

    def test_rejects_malformed(self):
        with pytest.raises(PersistenceError):
            decode_vertex({"x": 1})
        with pytest.raises(PersistenceError):
            decode_vertex(None)


class TestCpqxRoundtrip:
    def test_structure_preserved(self, tmp_path):
        graph = random_graph(20, 55, 3, seed=21)
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CPQxIndex)
        assert loaded.k == index.k
        assert loaded.num_classes == index.num_classes
        assert loaded.num_pairs == index.num_pairs
        assert loaded.size_bytes() == index.size_bytes()
        assert loaded.graph == index.graph

    def test_queries_identical_after_reload(self, tmp_path):
        graph = random_graph(20, 55, 3, seed=22)
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        for template in ("C2", "S", "Ti"):
            for wq in random_template_queries(graph, template, count=2, seed=23):
                assert loaded.evaluate(wq.query) == index.evaluate(wq.query)

    def test_maintenance_works_after_reload(self, tmp_path):
        graph = edges_from_strings(["0 1 a", "1 2 a"])
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        loaded.insert_edge(2, 0, "a")
        query = parse("(a . a . a) & id", loaded.graph.registry)
        assert loaded.evaluate(query) == {(0, 0), (1, 1), (2, 2)}

    def test_tuple_vertices(self, tmp_path):
        graph = citation_schema().generate(60, seed=3)
        index = CPQxIndex.build(graph, k=1)
        path = tmp_path / "gmark.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.graph == graph

    def test_vertex_data_preserved(self, tmp_path):
        graph = edges_from_strings(["0 1 a"])
        graph.set_vertex_data(0, name="zero", weight=3)
        index = CPQxIndex.build(graph, k=1)
        path = tmp_path / "data.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.graph.vertex_data(0) == {"name": "zero", "weight": 3}


class TestInterestRoundtrip:
    def test_interests_preserved(self, tmp_path):
        graph = random_graph(18, 50, 3, seed=24)
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2), (2, -1)})
        path = tmp_path / "ia.json"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, InterestAwareIndex)
        assert loaded.interests == index.interests
        assert loaded.num_classes == index.num_classes

    def test_deleted_interest_not_resurrected_by_reload(self, tmp_path):
        """Regression: class records may carry interests deleted before
        the save; reload must not rebuild their Il2c postings."""
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2)})
        assert index.lookup((1, 2)).classes
        index.delete_interest((1, 2))
        path = tmp_path / "stale.json"
        save_index(index, path)
        loaded = load_index(path)
        assert (1, 2) not in loaded.interests
        assert loaded.lookup((1, 2)).classes == frozenset()

    def test_interest_maintenance_after_reload(self, tmp_path):
        graph = random_graph(18, 50, 3, seed=25)
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2)})
        path = tmp_path / "ia.json"
        save_index(index, path)
        loaded = load_index(path)
        loaded.delete_interest((1, 2))
        loaded.insert_interest((2, 1))
        from repro.query.ast import sequence_query
        from repro.query.semantics import evaluate as reference

        query = sequence_query((2, 1))
        assert loaded.evaluate(query) == reference(query, graph)


class TestErrorHandling:
    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format": "repro-index", "version": 99}), encoding="utf-8"
        )
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_unknown_type(self, tmp_path):
        graph_doc = {"labels": [], "vertices": [], "edges": [], "vertex_data": []}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro-index", "version": 1, "type": "mystery",
            "k": 2, "graph": graph_doc, "classes": [],
        }), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_cannot_persist_path_index(self, tmp_path):
        from repro.baselines.path_index import PathIndex

        graph = edges_from_strings(["0 1 a"])
        with pytest.raises(PersistenceError):
            save_index(PathIndex.build(graph, 1), tmp_path / "x.json")


def _saved_index(tmp_path, name="index.json"):
    graph = random_graph(16, 40, 3, seed=77)
    index = CPQxIndex.build(graph, k=2)
    path = tmp_path / name
    save_index(index, path)
    return index, path


class TestCorruptionDetection:
    """PR 7: ``open()`` refuses damaged files with a typed error."""

    def test_file_carries_checksummed_header(self, tmp_path):
        _, path = _saved_index(tmp_path)
        first_line = path.read_bytes().split(b"\n", 1)[0].decode("ascii")
        assert first_line.startswith(f"{FILE_MAGIC} v1 sha256=")
        assert "bytes=" in first_line

    def test_truncated_payload_raises(self, tmp_path):
        _, path = _saved_index(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 64])
        with pytest.raises(CorruptIndexError, match="truncated"):
            load_index(path)

    def test_truncated_mid_header_raises(self, tmp_path):
        _, path = _saved_index(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(CorruptIndexError):
            load_index(path)

    def test_bit_flip_raises_checksum_mismatch(self, tmp_path):
        _, path = _saved_index(tmp_path)
        header_len = path.read_bytes().find(b"\n") + 1
        FaultInjector(seed=5).corrupt_file(path, skip=header_len)
        with pytest.raises(CorruptIndexError, match="checksum mismatch"):
            load_index(path)

    def test_bit_flip_is_deterministic(self, tmp_path):
        _, path_a = _saved_index(tmp_path, "a.json")
        _, path_b = _saved_index(tmp_path, "b.json")
        offset_a = FaultInjector(seed=9).corrupt_file(path_a, skip=0)
        offset_b = FaultInjector(seed=9).corrupt_file(path_b, skip=0)
        assert offset_a == offset_b

    def test_trailing_garbage_raises(self, tmp_path):
        _, path = _saved_index(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"extra")
        with pytest.raises(CorruptIndexError, match="trailing data"):
            load_index(path)

    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02 definitely not an index")
        with pytest.raises(CorruptIndexError, match="unrecognized magic"):
            load_index(path)

    def test_unsupported_header_version_raises(self, tmp_path):
        _, path = _saved_index(tmp_path)
        blob = path.read_bytes().replace(b" v1 ", b" v9 ", 1)
        path.write_bytes(blob)
        with pytest.raises(PersistenceError, match="version"):
            load_index(path)

    def test_malformed_header_fields_raise(self, tmp_path):
        _, path = _saved_index(tmp_path)
        blob = path.read_bytes().replace(b"bytes=", b"bites=", 1)
        path.write_bytes(blob)
        with pytest.raises(CorruptIndexError, match="malformed header"):
            load_index(path)

    def test_corrupt_error_carries_path_and_reason(self, tmp_path):
        _, path = _saved_index(tmp_path)
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(CorruptIndexError) as info:
            load_index(path)
        assert info.value.path == path
        assert "truncated" in info.value.reason

    def test_legacy_plain_json_still_loads(self, tmp_path):
        index, path = _saved_index(tmp_path)
        blob = path.read_bytes()
        legacy = tmp_path / "legacy.json"
        legacy.write_bytes(blob[blob.find(b"\n") + 1 :])  # strip the header
        loaded = load_index(legacy)
        assert loaded.num_classes == index.num_classes
        assert loaded.graph == index.graph

    def test_legacy_malformed_json_raises_corrupt(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('{"format": "repro-index", ', encoding="utf-8")
        with pytest.raises(CorruptIndexError, match="malformed JSON"):
            load_index(path)


class TestInterruptedSave:
    """An interrupted save never clobbers the previous index file."""

    @pytest.mark.parametrize("site", ["persist.fsync", "persist.rename"])
    def test_injected_fault_preserves_previous_file(self, tmp_path, site):
        index, path = _saved_index(tmp_path)
        before = path.read_bytes()
        with inject(FaultInjector(seed=1, rates={site: 1.0})):
            with pytest.raises(FaultInjected):
                save_index(index, path)
        assert path.read_bytes() == before  # old file byte-identical
        load_index(path)  # ...and still loadable

    @pytest.mark.parametrize("site", ["persist.fsync", "persist.rename"])
    def test_injected_fault_leaves_no_temp_files(self, tmp_path, site):
        index, path = _saved_index(tmp_path)
        with inject(FaultInjector(seed=1, rates={site: 1.0})):
            with pytest.raises(FaultInjected):
                save_index(index, path)
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_save_retries_clean_after_fault_drains(self, tmp_path):
        index, path = _saved_index(tmp_path)
        injector = FaultInjector(seed=1, rates={"persist.fsync": 1.0}, max_faults=1)
        with inject(injector):
            with pytest.raises(FaultInjected):
                save_index(index, path)
            save_index(index, path)  # budget spent: second save succeeds
        assert injector.total_fired() == 1
        loaded = load_index(path)
        assert loaded.num_classes == index.num_classes
