"""Unit tests for the Tentris-style hypertrie engine."""

from __future__ import annotations

import pytest

from repro.baselines.tentris import HyperTrie, TentrisEngine
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a"])


class TestHyperTrie:
    def test_add_and_contains(self):
        trie = HyperTrie()
        trie.add("s", 1, "o")
        assert trie.contains("s", 1, "o")
        assert not trie.contains("o", 1, "s")
        assert len(trie) == 1

    def test_add_idempotent(self):
        trie = HyperTrie()
        trie.add("s", 1, "o")
        trie.add("s", 1, "o")
        assert len(trie) == 1

    def test_slices(self, g):
        trie = HyperTrie.from_graph(g)
        assert trie.objects_of(0, 1) == {1}
        assert trie.subjects_of(0, 1) == {2, 1}
        assert trie.subjects(1) == {0, 2, 1}
        assert trie.objects(2) == {2, 0}
        assert trie.loops(2) == {0}
        assert trie.loops(1) == set()

    def test_predicate_cardinality(self, g):
        trie = HyperTrie.from_graph(g)
        assert trie.predicate_cardinality(1) == 3
        assert trie.predicate_cardinality(2) == 2
        assert trie.predicate_cardinality(9) == 0

    def test_from_graph_counts(self, g):
        trie = HyperTrie.from_graph(g)
        assert len(trie) == g.num_edges


class TestQueries:
    @pytest.mark.parametrize("text", [
        "a", "a^-", "id", "a . b", "(a . b) & a", "b & id",
        "(a . b . a) & id", "(a . a^-) & (b . b^-)",
        "(a . a^-) & (b . b^-) & id",
    ])
    def test_matches_reference(self, g, text):
        engine = TentrisEngine(g)
        query = parse(text, g.registry)
        assert engine.evaluate(query) == reference(query, g)

    def test_unknown_label_empty(self, g):
        from repro.query.ast import EdgeLabel

        assert TentrisEngine(g).evaluate(EdgeLabel(9)) == frozenset()

    def test_limit(self, g):
        engine = TentrisEngine(g)
        answer = engine.evaluate(parse("a", g.registry), limit=2)
        assert len(answer) == 2

    def test_stats_counts_candidates(self, g):
        from repro.core.executor import ExecutionStats

        stats = ExecutionStats()
        TentrisEngine(g).evaluate(parse("a . b", g.registry), stats=stats)
        assert stats.pairs_touched > 0


class TestRandomAgreement:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_templates(self, seed):
        g = random_graph(15, 35, 3, seed=seed)
        engine = TentrisEngine(g)
        for template in ("C2", "T", "S", "St", "C2i", "Si", "TC"):
            for wq in random_template_queries(g, template, count=2, seed=seed):
                assert engine.evaluate(wq.query) == reference(wq.query, g), (
                    template, wq.labels
                )
