"""Unit tests for the CPQ algebra (AST, diameter, helpers)."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.graph.labels import LabelRegistry
from repro.query.ast import (
    Conjunction,
    EdgeLabel,
    ID,
    Identity,
    Join,
    as_label_sequence,
    conjoin_all,
    count_operations,
    is_resolved,
    join_all,
    label,
    label_sequences_in,
    resolve,
    sequence_query,
)


class TestAtoms:
    def test_identity_diameter_zero(self):
        assert ID.diameter() == 0
        assert Identity() == ID

    def test_label_diameter_one(self):
        assert label("f").diameter() == 1

    def test_label_inverse_involution(self):
        f = label("f")
        assert f.inverse().inverse() == f
        assert f.inverse().inverted

    def test_negative_id_normalized_to_inverted(self):
        atom = EdgeLabel(-3)
        assert atom.label == 3
        assert atom.inverted
        assert atom.label_id() == -3

    def test_double_negation_via_flag(self):
        atom = EdgeLabel(-3, inverted=True)
        assert atom.label_id() == 3

    def test_zero_id_rejected(self):
        with pytest.raises(QuerySyntaxError):
            EdgeLabel(0)

    def test_empty_name_rejected(self):
        with pytest.raises(QuerySyntaxError):
            EdgeLabel("")

    def test_label_id_requires_resolution(self):
        with pytest.raises(QuerySyntaxError):
            label("f").label_id()


class TestOperators:
    def test_rshift_builds_join(self):
        q = label("a") >> label("b")
        assert isinstance(q, Join)
        assert q.diameter() == 2

    def test_and_builds_conjunction(self):
        q = label("a") & label("b")
        assert isinstance(q, Conjunction)
        assert q.diameter() == 1

    def test_diameter_rules(self):
        """dia follows the paper: join adds, conjunction maxes, id is 0."""
        a, b, c = label("a"), label("b"), label("c")
        assert ((a >> b) >> c).diameter() == 3
        assert ((a >> b) & c).diameter() == 2
        assert ((a >> b) & (a >> b >> c)).diameter() == 3
        assert ((a >> b) & ID).diameter() == 2
        assert (ID >> ID).diameter() == 0

    def test_operand_type_checked(self):
        with pytest.raises(TypeError):
            label("a") >> "b"  # type: ignore[operator]

    def test_walk_preorder(self):
        q = (label("a") >> label("b")) & ID
        kinds = [type(node).__name__ for node in q.walk()]
        assert kinds == ["Conjunction", "Join", "EdgeLabel", "EdgeLabel", "Identity"]

    def test_hashable_and_equal(self):
        q1 = (label("a") >> label("b")) & ID
        q2 = (label("a") >> label("b")) & ID
        assert q1 == q2
        assert hash(q1) == hash(q2)


class TestBuilders:
    def test_join_all(self):
        q = join_all([label("a"), label("b"), label("c")])
        assert as_label_sequence(resolve(q, LabelRegistry(["a", "b", "c"]))) == (1, 2, 3)

    def test_join_all_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            join_all([])

    def test_conjoin_all_single(self):
        assert conjoin_all([ID]) is ID

    def test_sequence_query(self):
        q = sequence_query((1, -2))
        assert as_label_sequence(q) == (1, -2)


class TestResolve:
    def test_resolve_names(self):
        registry = LabelRegistry(["f", "v"])
        q = resolve((label("f") >> label("v").inverse()) & ID, registry)
        assert as_label_sequence(q.left) == (1, -2)

    def test_resolve_idempotent(self):
        registry = LabelRegistry(["f"])
        q = resolve(label("f"), registry)
        assert resolve(q, registry) == q

    def test_is_resolved(self):
        registry = LabelRegistry(["f"])
        assert not is_resolved(label("f"))
        assert is_resolved(resolve(label("f"), registry))
        assert is_resolved(ID)


class TestSequenceExtraction:
    def test_pure_chain(self):
        q = sequence_query((1, 2, 3))
        assert as_label_sequence(q) == (1, 2, 3)

    def test_conjunction_is_not_a_sequence(self):
        q = EdgeLabel(1) & EdgeLabel(2)
        assert as_label_sequence(q) is None

    def test_identity_is_not_a_sequence(self):
        assert as_label_sequence(ID) is None
        assert as_label_sequence(EdgeLabel(1) >> ID) is None

    def test_label_sequences_in_collects_maximal_chains(self):
        q = (sequence_query((1, 2)) & sequence_query((3,))) >> sequence_query((-1, 2))
        assert label_sequences_in(q) == {(1, 2), (3,), (-1, 2)}

    def test_label_sequences_in_identity_free(self):
        assert label_sequences_in(ID) == set()


class TestCounts:
    def test_count_operations(self):
        q = (sequence_query((1, 2)) & sequence_query((3, 4))) >> EdgeLabel(5)
        joins, conjunctions = count_operations(q)
        assert joins == 3
        assert conjunctions == 1


class TestRendering:
    def test_to_text_roundtrips_through_parser(self):
        from repro.query.parser import parse

        q = (label("a") >> label("b").inverse()) & ID
        assert parse(q.to_text()) == q

    def test_to_text_with_registry(self):
        registry = LabelRegistry(["f"])
        q = resolve(label("f").inverse(), registry)
        assert q.to_text(registry) == "f^-"
