"""Unit tests for the CPQx index: construction, lookups, properties."""

from __future__ import annotations

import pytest

from repro.errors import IndexBuildError, QueryDiameterError
from repro.core.cpqx import CPQxIndex
from repro.core.paths import enumerate_sequences, reachable_pairs
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


@pytest.fixture()
def index(g):
    return CPQxIndex.build(g, k=2)


class TestBuild:
    def test_k_zero_rejected(self, g):
        with pytest.raises(IndexBuildError):
            CPQxIndex.build(g, 0)

    def test_unknown_method_rejected(self, g):
        with pytest.raises(IndexBuildError):
            CPQxIndex.build(g, 2, il2c_method="nope")

    def test_both_construction_methods_agree(self, g):
        rep = CPQxIndex.build(g, 2, il2c_method="representative")
        per_pair = CPQxIndex.build(g, 2, il2c_method="per-pair")
        assert rep.num_classes == per_pair.num_classes
        assert rep.size_bytes() == per_pair.size_bytes()
        for seq in enumerate_sequences(g, 2):
            assert rep.lookup(seq).classes == per_pair.lookup(seq).classes

    def test_indexes_exactly_pk(self, g, index):
        assert index.num_pairs == len(reachable_pairs(g, 2))

    def test_every_sequence_is_keyed(self, g, index):
        for seq, pairs in enumerate_sequences(g, 2).items():
            classes = index.lookup(seq).classes
            assert classes, seq
            assert index.expand_classes(classes) == frozenset(pairs)


class TestLookup:
    def test_lookup_unknown_sequence_empty(self, index):
        assert index.lookup((99,)).classes == frozenset()

    def test_lookup_too_long_raises(self, index):
        with pytest.raises(QueryDiameterError):
            index.lookup((1, 2, 1))

    def test_lookup_returns_class_result(self, index):
        result = index.lookup((1,))
        assert result.classes is not None
        assert result.pairs is None


class TestClassAccessors:
    def test_class_of_indexed_pair(self, index):
        assert index.class_of((0, 1)) is not None

    def test_class_of_missing_pair(self, index):
        assert index.class_of((99, 98)) is None

    def test_pairs_of_class_copy(self, index):
        class_id = index.class_of((0, 1))
        pairs = index.pairs_of_class(class_id)
        pairs.append(("junk", "junk"))
        assert ("junk", "junk") not in index.pairs_of_class(class_id)

    def test_sequences_of_class_uniform(self, g, index):
        from repro.core.paths import label_sequences_for_pair

        for class_id in index.classes():
            expected = index.sequences_of_class(class_id)
            for pair in index.pairs_of_class(class_id):
                assert label_sequences_for_pair(g, pair[0], pair[1], 2) == expected

    def test_loop_classes(self, index):
        loops = index.loop_classes_of(frozenset(index.classes()))
        for class_id in loops:
            for v, u in index.pairs_of_class(class_id):
                assert v == u


class TestSizeAccounting:
    def test_size_positive_and_decomposable(self, index):
        assert index.size_bytes() > 0

    def test_gamma_at_least_one(self, index):
        assert index.gamma() >= 1.0

    def test_size_smaller_than_path_on_redundant_graph(self):
        """Thm. 4.2's comparison on a graph with high γ."""
        from repro.baselines.path_index import PathIndex

        g = edges_from_strings([
            f"{v} {u} {lab}"
            for v in range(5) for u in range(5) if v != u
            for lab in ("a", "b")
        ])
        cpqx = CPQxIndex.build(g, 2)
        path = PathIndex.build(g, 2)
        assert cpqx.gamma() > 2
        assert cpqx.size_bytes() < path.size_bytes()

    def test_num_sequences_matches_enumeration(self, g, index):
        assert index.num_sequences == len(enumerate_sequences(g, 2))


class TestEvaluation:
    def test_simple_queries(self, g, index):
        registry = g.registry
        assert index.evaluate(parse("a", registry)) == {(0, 1), (2, 0)}
        assert index.evaluate(parse("a . b", registry)) == {(0, 2), (2, 0)}
        assert index.evaluate(parse("b & id", registry)) == {(0, 0)}

    def test_three_hop_query_splits(self, g, index):
        """Diameter-3 query on a k=2 index exercises the Fig. 4 split."""
        assert index.evaluate(parse("(a . b . a) & id", g.registry)) == {(0, 0)}

    def test_name_form_query_resolved_automatically(self, g, index):
        from repro.query.ast import label

        assert index.evaluate(label("a")) == {(0, 1), (2, 0)}

    def test_empty_answer(self, g, index):
        assert index.evaluate(parse("a & b", g.registry)) == frozenset()

    def test_limit_one(self, g, index):
        answer = index.evaluate(parse("a", g.registry), limit=1)
        assert len(answer) == 1
        assert answer <= {(0, 1), (2, 0)}

    def test_stats_collection(self, g, index):
        from repro.core.executor import ExecutionStats

        stats = ExecutionStats()
        index.evaluate(parse("(a . a^-) & (b . b^-)", g.registry), stats=stats)
        assert stats.lookups == 2
        assert stats.class_conjunctions == 1
        assert stats.classes_touched > 0

    def test_repr(self, index):
        assert "CPQxIndex" in repr(index)


class TestAgainstReferenceOnRandomGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_reference(self, seed, k):
        from tests.conftest import assert_engine_matches_reference
        from repro.query.workloads import random_template_queries

        g = random_graph(18, 45, 3, seed=seed)
        index = CPQxIndex.build(g, k=k)
        queries = []
        for template in ("C2", "T", "S", "C2i", "Ti", "C4"):
            queries.extend(
                wq.query
                for wq in random_template_queries(g, template, count=2, seed=seed)
            )
        assert_engine_matches_reference(index, queries, g)
