"""Tests for CPQ normalization and materialization-free counting."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cpqx import CPQxIndex
from repro.core.executor import ExecutionStats
from repro.graph.digraph import LabeledDigraph
from repro.graph.io import edges_from_strings
from repro.graph.labels import LabelRegistry
from repro.query.ast import CPQ, Conjunction, EdgeLabel, ID, Identity, Join
from repro.query.normalize import normalize
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference

_SETTINGS = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def graphs(draw) -> LabeledDigraph:
    graph = LabeledDigraph(LabelRegistry(["a", "b"]))
    for v in range(6):
        graph.add_vertex(v)
    for _ in range(draw(st.integers(1, 14))):
        graph.add_edge(
            draw(st.integers(0, 5)), draw(st.integers(0, 5)), draw(st.integers(1, 2))
        )
    return graph


@st.composite
def queries(draw, max_depth: int = 3) -> CPQ:
    if max_depth == 0:
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return ID
        return EdgeLabel(draw(st.integers(1, 2)) * (1 if choice < 3 else -1))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(queries(max_depth=0))
    left = draw(queries(max_depth=max_depth - 1))
    right = draw(queries(max_depth=max_depth - 1))
    return Join(left, right) if kind == 1 else Conjunction(left, right)


class TestNormalizeRules:
    def test_join_identity_elimination(self):
        q = parse("a . id . b")
        assert normalize(q) == parse("a . b")

    def test_conjunction_idempotence(self):
        q = parse("(a . b) & (a . b)")
        assert normalize(q) == parse("a . b")

    def test_identity_absorption(self):
        q = parse("((a & id) & id)")
        normalized = normalize(q)
        assert normalized == Conjunction(EdgeLabel("a"), ID)

    def test_commutative_canonical_order(self):
        left = normalize(parse("(a . b) & c"))
        right = normalize(parse("c & (a . b)"))
        assert left == right

    def test_pure_identity_conjunction(self):
        assert normalize(parse("id & id")) is ID
        assert normalize(parse("id . id")) is ID

    def test_join_operands_not_reordered(self):
        q = parse("a . b")
        assert normalize(q) == q
        assert normalize(parse("b . a")) == parse("b . a")

    def test_nested_flattening(self):
        q = parse("(a & (b & a)) & b")
        normalized = normalize(q)
        operands = set()

        def collect(node):
            if isinstance(node, Conjunction):
                collect(node.left)
                collect(node.right)
            else:
                operands.add(node)

        collect(normalized)
        assert operands == {EdgeLabel("a"), EdgeLabel("b")}


class TestNormalizePreservesSemantics:
    @_SETTINGS
    @given(graphs(), queries())
    def test_equivalence(self, graph, query):
        assert reference(normalize(query), graph) == reference(query, graph)

    @_SETTINGS
    @given(queries())
    def test_idempotent(self, query):
        once = normalize(query)
        assert normalize(once) == once

    @_SETTINGS
    @given(queries())
    def test_diameter_never_grows(self, query):
        assert normalize(query).diameter() <= query.diameter()


class TestCount:
    def test_count_matches_len_for_conjunctions(self):
        g = edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a"])
        index = CPQxIndex.build(g, k=2)
        for text in ("a", "(a . b) & (a . a)", "(a . a^-) & (b . b^-)", "b & id"):
            query = parse(text, g.registry)
            assert index.count(query) == len(reference(query, g)), text

    def test_conjunction_count_touches_no_pairs(self):
        g = edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])
        index = CPQxIndex.build(g, k=2)
        stats = ExecutionStats()
        count = index.count(parse("(a . b) & (b . a)", g.registry), stats=stats)
        assert count == len(reference(parse("(a . b) & (b . a)", g.registry), g))
        # the class fast path: conjunction on ids, zero pairs materialized
        assert stats.class_conjunctions == 1
        assert stats.pairs_touched == 0

    def test_join_count_falls_back(self):
        g = edges_from_strings(["0 1 a", "1 2 b", "2 0 a"])
        index = CPQxIndex.build(g, k=2)
        query = parse("a . b . a", g.registry)
        assert index.count(query) == len(reference(query, g))

    def test_pair_engine_count(self):
        from repro.baselines.bfs import BFSEngine

        g = edges_from_strings(["0 1 a", "1 2 b"])
        engine = BFSEngine(g)
        query = parse("a . b", g.registry)
        assert engine.count(query) == 1

    @_SETTINGS
    @given(graphs(), queries(max_depth=2))
    def test_count_always_matches_reference(self, graph, query):
        index = CPQxIndex.build(graph, k=2)
        assert index.count(query) == len(reference(query, graph))
