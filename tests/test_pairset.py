"""Property tests for the columnar PairSet against reference set semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import LabeledDigraph
from repro.graph.interner import VertexInterner, pack_pair, unpack_pair
from repro.core.pairset import PairSet

#: Small id universe so random pair sets collide often (the interesting case).
ids = st.integers(min_value=0, max_value=30)
pairs = st.tuples(ids, ids)
pair_sets = st.sets(pairs, max_size=120)


def make_interner(n: int = 31) -> VertexInterner:
    return VertexInterner(range(n))


def encode(pair_set: set, interner: VertexInterner) -> PairSet:
    return PairSet.from_vertex_pairs(pair_set, interner)


def reference(ps: PairSet) -> set:
    return set(ps.to_set())


class TestCodecs:
    def test_pack_unpack_roundtrip(self):
        for v, u in ((0, 0), (1, 2), (2**32 - 1, 5), (7, 2**32 - 1)):
            assert unpack_pair(pack_pair(v, u)) == (v, u)

    def test_interner_assigns_dense_ids(self):
        interner = VertexInterner()
        assert [interner.intern(v) for v in ("a", "b", "a", "c")] == [0, 1, 0, 2]
        assert interner.vertex_of(1) == "b"
        assert len(interner) == 3


class TestConstruction:
    def test_from_codes_sorts_and_dedups(self):
        interner = make_interner()
        ps = PairSet.from_codes([5, 3, 5, 1], interner)
        assert list(ps.iter_codes()) == [1, 3, 5]

    def test_lazy_set_freezes_on_demand(self):
        interner = make_interner()
        ps = PairSet.from_code_set({9, 2, 4}, interner)
        assert not ps.is_frozen()
        assert len(ps) == 3
        assert list(ps.iter_codes()) == [2, 4, 9]
        assert ps.is_frozen()

    def test_vertex_pairs_roundtrip(self):
        interner = VertexInterner()
        graph_pairs = {("a", "b"), ("b", "a"), (("x", 1), "a")}
        for v, u in graph_pairs:
            interner.intern(v)
            interner.intern(u)
        ps = PairSet.from_vertex_pairs(graph_pairs, interner)
        assert ps.to_set() == graph_pairs


class TestSetAlgebraProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_union_matches_set_semantics(self, a, b):
        interner = make_interner()
        assert reference(encode(a, interner) | encode(b, interner)) == a | b

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_intersection_matches_set_semantics(self, a, b):
        interner = make_interner()
        assert reference(encode(a, interner) & encode(b, interner)) == a & b

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_difference_matches_set_semantics(self, a, b):
        interner = make_interner()
        assert reference(encode(a, interner) - encode(b, interner)) == a - b

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_lazy_and_frozen_operands_agree(self, a, b):
        interner = make_interner()
        frozen_a = encode(a, interner)
        lazy_a = PairSet.from_code_set(set(frozen_a.iter_codes()), interner)
        frozen_b = encode(b, interner)
        for op in ("__and__", "__or__", "__sub__"):
            lazy_result = getattr(lazy_a, op)(frozen_b)
            frozen_result = getattr(frozen_a, op)(frozen_b)
            assert lazy_result == frozen_result

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_compose_matches_reference_join(self, a, b):
        interner = make_interner()
        expected = {(v, u) for v, m in a for m2, u in b if m == m2}
        got = reference(encode(a, interner).compose(encode(b, interner)))
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_compose_loops_only_matches_filtered_join(self, a, b):
        interner = make_interner()
        expected = {
            (v, u) for v, m in a for m2, u in b if m == m2 and v == u
        }
        got = reference(
            encode(a, interner).compose(encode(b, interner), loops_only=True)
        )
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets)
    def test_loops_filter(self, a):
        interner = make_interner()
        assert reference(encode(a, interner).loops()) == {
            (v, u) for v, u in a if v == u
        }

    @settings(max_examples=60, deadline=None)
    @given(a=pair_sets, b=pair_sets)
    def test_equality_and_interop_with_plain_sets(self, a, b):
        interner = make_interner()
        ps = encode(a, interner)
        assert ps == a
        assert (ps == b) == (a == b)
        # mixed operator falls back to decoded frozensets
        assert ps & frozenset(b) == a & b


class TestGallopingPaths:
    def test_skewed_intersection_uses_galloping(self):
        interner = make_interner()
        big = PairSet.from_codes(range(0, 2000, 2), interner)
        small = PairSet.from_codes([4, 5, 1000, 1001, 1998], interner)
        assert list((small & big).iter_codes()) == [4, 1000, 1998]

    def test_skewed_union_and_difference(self):
        interner = make_interner()
        big = PairSet.from_codes(range(0, 3000, 3), interner)
        small = PairSet.from_codes([1, 3, 2998], interner)
        assert set((big | small).iter_codes()) == set(range(0, 3000, 3)) | {1, 2998}
        assert set((small - big).iter_codes()) == {1, 2998}

    def test_union_disjoint_merges_classes(self):
        interner = make_interner()
        parts = [
            PairSet.from_codes([1, 10], interner),
            PairSet.from_codes([5], interner),
            PairSet.from_codes([2, 7], interner),
        ]
        merged = PairSet.union_disjoint(parts, interner)
        assert list(merged.iter_codes()) == [1, 2, 5, 7, 10]


class TestPointUpdates:
    def test_with_and_without_code(self):
        interner = make_interner()
        ps = PairSet.from_codes([1, 5], interner)
        grown = ps.with_code(3)
        assert list(grown.iter_codes()) == [1, 3, 5]
        assert list(ps.iter_codes()) == [1, 5]  # persistent
        shrunk = grown.without_code(5)
        assert list(shrunk.iter_codes()) == [1, 3]
        with pytest.raises(KeyError):
            shrunk.without_code(99)

    def test_contains(self):
        interner = make_interner()
        ps = PairSet.from_vertex_pairs({(1, 2)}, interner)
        assert (1, 2) in ps
        assert (2, 1) not in ps
        assert ("nope", 2) not in ps
        assert "not-a-pair" not in ps


class TestInternerRoundTripThroughGraph:
    @pytest.mark.parametrize(
        "vertices",
        [
            ["a", "b", "c"],
            [1, 2, 3],
            ["a", 1, ("t", 2), "b"],
        ],
        ids=["strings", "ints", "mixed"],
    )
    def test_graph_interner_roundtrips_vertices(self, vertices):
        graph = LabeledDigraph()
        for i, v in enumerate(vertices):
            graph.add_edge(v, vertices[(i + 1) % len(vertices)], "l")
        interner = graph.interner
        for v in vertices:
            assert interner.vertex_of(interner.id_of(v)) == v
        ps = PairSet.from_vertex_pairs(
            {(vertices[0], vertices[-1])}, interner
        )
        assert ps.to_set() == {(vertices[0], vertices[-1])}

    def test_removed_vertex_keeps_decodable_id(self):
        graph = LabeledDigraph()
        graph.add_edge("a", "b", "l")
        vid = graph.interner.id_of("b")
        graph.remove_vertex("b")
        assert graph.interner.vertex_of(vid) == "b"

    def test_graph_version_bumps_on_mutation(self):
        graph = LabeledDigraph()
        v0 = graph.version
        graph.add_edge("a", "b", "l")
        v1 = graph.version
        assert v1 > v0
        graph.remove_edge("a", "b", "l")
        assert graph.version > v1
