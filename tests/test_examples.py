"""The example scripts must stay runnable (they are living documentation)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestQuickstart:
    def test_runs_and_finds_triad(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "('sue', 'zoe')" in result.stdout
        assert "CPQx built" in result.stdout


class TestEngineComparison:
    def test_runs_on_small_robots(self):
        result = run_example("engine_comparison.py", "robots", "0.15")
        assert result.returncode == 0, result.stderr
        assert "all engines agreed" in result.stdout


@pytest.mark.parametrize(
    "script", ["social_motifs.py", "knowledge_graph.py", "dynamic_graph.py"]
)
class TestOtherExamplesCompile:
    def test_compiles(self, script):
        """Full runs are exercised manually / in benches; compiling the
        module catches import and syntax rot cheaply."""
        source = (EXAMPLES / script).read_text(encoding="utf-8")
        compile(source, script, "exec")


class TestExamplesHaveMains:
    def test_every_example_is_executable_script(self):
        for script in EXAMPLES.glob("*.py"):
            source = script.read_text(encoding="utf-8")
            assert "__main__" in source, script.name
            assert source.lstrip().startswith('"""'), f"{script.name} missing docstring"
