"""Unit tests for the interest-aware index iaCPQx (Sec. V)."""

from __future__ import annotations

import pytest

from repro.errors import IndexBuildError, MaintenanceError
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex, _pair_matches
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


@pytest.fixture()
def g():
    return edges_from_strings([
        "0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a", "2 3 b", "3 0 a",
    ])


class TestBuild:
    def test_singles_always_included(self, g):
        index = InterestAwareIndex.build(g, k=2, interests=set())
        assert (1,) in index.interests
        assert (-1,) in index.interests
        assert (2,) in index.interests

    def test_k_zero_rejected(self, g):
        with pytest.raises(IndexBuildError):
            InterestAwareIndex.build(g, 0)

    def test_interest_longer_than_k_rejected(self, g):
        with pytest.raises(IndexBuildError):
            InterestAwareIndex.build(g, 2, interests={(1, 2, 1)})

    def test_empty_interest_rejected(self, g):
        with pytest.raises(IndexBuildError):
            InterestAwareIndex.build(g, 2, interests={()})

    def test_classes_uniform_on_interests(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2), (2, -2)})
        for class_id in list(index._ic2p):
            seqs = index.sequences_of_class(class_id)
            for pair in index.pairs_of_class(class_id):
                matched = {
                    seq for seq in index.interests
                    if _pair_matches(g, pair, seq)
                }
                assert matched == seqs

    def test_coarser_than_cpqx(self, g):
        """Interest-aware equivalence merges more pairs (Sec. V-A)."""
        full = CPQxIndex.build(g, k=2)
        ia = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        assert ia.num_classes <= full.num_classes
        assert ia.num_pairs <= full.num_pairs

    def test_size_shrinks_with_fewer_interests(self, g):
        many = InterestAwareIndex.build(
            g, k=2, interests={(1, 1), (1, 2), (2, -2), (-1, 1), (1, -1)}
        )
        few = InterestAwareIndex.build(g, k=2, interests=set())
        assert few.size_bytes() <= many.size_bytes()
        assert few.gamma() <= many.gamma()


class TestQueries:
    def test_interest_query_exact(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        query = parse("a . b", g.registry)
        assert index.evaluate(query) == reference(query, g)

    def test_non_interest_query_still_correct(self, g):
        """Sequences outside Lq split into single-label lookups."""
        index = InterestAwareIndex.build(g, k=2, interests=set())
        for text in ("a . b", "(a . b) & (b . a)", "(a . a . a) & id", "b & id"):
            query = parse(text, g.registry)
            assert index.evaluate(query) == reference(query, g), text

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs_match_reference(self, seed):
        g = random_graph(18, 45, 3, seed=seed)
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2), (2, 1)})
        for template in ("C2", "T", "S", "St", "Ti", "C4"):
            for wq in random_template_queries(g, template, count=2, seed=seed):
                assert index.evaluate(wq.query) == reference(wq.query, g)

    def test_lookup_of_noninterest_sequence_empty(self, g):
        index = InterestAwareIndex.build(g, k=2, interests=set())
        assert index.lookup((1, 2)).classes == frozenset()

    def test_k3_with_three_label_interests(self, g):
        """Interests up to length k=3 answer diameter-3 chains in one hop."""
        index = InterestAwareIndex.build(g, k=3, interests={(1, 2, 1), (1, 1)})
        query = parse("a . b . a", g.registry)
        assert index.evaluate(query) == reference(query, g)
        assert index.lookup((1, 2, 1)).classes  # served as one lookup
        # and the identity-fused variant still works
        cyclic = parse("(a . b . a) & id", g.registry)
        assert index.evaluate(cyclic) == reference(cyclic, g)


class TestGraphMaintenance:
    def test_insert_edge(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        index.insert_edge(3, 1, "a")
        query = parse("a . b", g.registry)
        assert index.evaluate(query) == reference(query, index.graph)

    def test_delete_edge(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        index.delete_edge(0, 1, "a")
        query = parse("a . b", g.registry)
        assert index.evaluate(query) == reference(query, index.graph)

    def test_delete_missing_edge_raises(self, g):
        index = InterestAwareIndex.build(g, k=2)
        with pytest.raises(MaintenanceError):
            index.delete_edge(0, 1, "zz")

    def test_insert_edge_with_new_label_extends_interests(self, g):
        index = InterestAwareIndex.build(g, k=2)
        index.insert_edge(0, 3, "fresh")
        lid = index.graph.registry.id_of("fresh")
        assert (lid,) in index.interests
        assert index.evaluate(parse("fresh", index.graph.registry)) == {(0, 3)}


class TestInterestMaintenance:
    def test_insert_interest_accelerates_and_stays_exact(self, g):
        index = InterestAwareIndex.build(g, k=2)
        query = parse("a . b", g.registry)
        expected = reference(query, g)
        assert index.evaluate(query) == expected
        index.insert_interest((1, 2))
        assert (1, 2) in index.interests
        assert index.evaluate(query) == expected
        # now answered via a single lookup
        assert index.lookup((1, 2)).classes

    def test_insert_interest_idempotent(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        before = index.num_classes
        index.insert_interest((1, 2))
        assert index.num_classes == before

    def test_insert_interest_bad_length(self, g):
        index = InterestAwareIndex.build(g, k=2)
        with pytest.raises(MaintenanceError):
            index.insert_interest((1, 2, 1))
        with pytest.raises(MaintenanceError):
            index.insert_interest(())

    def test_delete_interest(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        query = parse("a . b", g.registry)
        expected = reference(query, g)
        index.delete_interest((1, 2))
        assert (1, 2) not in index.interests
        assert index.lookup((1, 2)).classes == frozenset()
        assert index.evaluate(query) == expected  # still answerable

    def test_delete_single_label_interest_forbidden(self, g):
        index = InterestAwareIndex.build(g, k=2)
        with pytest.raises(MaintenanceError):
            index.delete_interest((1,))

    def test_delete_unknown_interest(self, g):
        index = InterestAwareIndex.build(g, k=2)
        with pytest.raises(MaintenanceError):
            index.delete_interest((1, 9))

    def test_deleted_interest_not_resurrected(self):
        """insert_interest must not re-register sequences deleted earlier.

        Regression test: the old class's sequence record may still carry
        deleted interests; copying it verbatim into the fresh class would
        resurrect their Il2c postings, which can serve stale answers to
        direct lookups after further graph updates.
        """
        from repro.graph.io import edges_from_strings

        graph = edges_from_strings(["0 1 a", "1 2 b", "0 3 a", "3 2 a"])
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2)})
        index.delete_interest((1, 2))
        index.insert_interest((1, 1))  # touches the same (0, 2) pair
        assert (1, 2) not in index._il2c
        assert index.lookup((1, 2)).classes == frozenset()

    def test_interest_roundtrip_preserves_answers(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2), (2, -2)})
        queries = [parse(t, g.registry) for t in ("a . b", "b . b^-", "(a.b)&(b.a)")]
        expected = [index.evaluate(q) for q in queries]
        index.delete_interest((1, 2))
        index.insert_interest((1, 2))
        assert [index.evaluate(q) for q in queries] == expected


class TestIntrospection:
    def test_accessors(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        assert index.num_classes == len(index._ic2p)
        some_class = next(iter(index._ic2p))
        assert index.pairs_of_class(some_class)
        pair = index.pairs_of_class(some_class)[0]
        assert index.class_of(pair) == some_class
        assert index.class_of(("x", "y")) is None
        assert index.num_sequences >= 1
        assert "InterestAwareIndex" in repr(index)

    def test_gamma_zero_on_empty(self):
        from repro.graph.digraph import LabeledDigraph

        g = LabeledDigraph()
        g.add_vertex(0)
        index = InterestAwareIndex.build(g, k=2)
        assert index.gamma() == 0.0
