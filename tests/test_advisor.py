"""Unit tests for the workload-driven interest advisor (Sec. VII)."""

from __future__ import annotations

import pytest

from repro.core.advisor import (
    advise_k,
    estimate_interest_bytes,
    recommend_interests,
    sequence_frequencies,
)
from repro.core.interest import InterestAwareIndex
from repro.graph.generators import random_graph
from repro.query.ast import EdgeLabel, ID, sequence_query
from repro.query.semantics import evaluate as reference


@pytest.fixture()
def g():
    return random_graph(25, 80, 3, seed=13)


def _workload():
    hot = sequence_query((1, 2))          # appears 3×
    cold = sequence_query((2, 3))         # appears once
    return [hot, hot & sequence_query((3,)), (hot & cold) & ID]


class TestSequenceFrequencies:
    def test_counts_weighted_by_usage(self):
        counts = sequence_frequencies(_workload(), k=2)
        assert counts[(1, 2)] == 3
        assert counts[(2, 3)] == 1

    def test_singles_excluded(self):
        counts = sequence_frequencies(_workload(), k=2)
        assert (3,) not in counts

    def test_long_sequences_windowed(self):
        counts = sequence_frequencies([sequence_query((1, 2, 3))], k=2)
        assert counts[(1, 2)] == 1
        assert counts[(2, 3)] == 1

    def test_k3_keeps_whole(self):
        counts = sequence_frequencies([sequence_query((1, 2, 3))], k=3)
        assert counts[(1, 2, 3)] == 1


class TestEstimateBytes:
    def test_matches_relation_size(self, g):
        size = estimate_interest_bytes(g, (1, 2))
        assert size == 4 * 2 + 8 * len(g.sequence_relation((1, 2)))


class TestRecommendation:
    def test_unbudgeted_selects_everything(self, g):
        rec = recommend_interests(g, _workload(), k=2)
        assert rec.interests == {(1, 2), (2, 3)}
        assert rec.coverage() == 1.0
        assert not rec.skipped

    def test_budget_prefers_hot_sequences(self, g):
        hot_cost = estimate_interest_bytes(g, (1, 2))
        rec = recommend_interests(g, _workload(), k=2, budget_bytes=hot_cost)
        assert (1, 2) in rec.interests
        assert (2, 3) in rec.skipped
        assert rec.estimated_bytes <= hot_cost

    def test_zero_budget_selects_nothing(self, g):
        rec = recommend_interests(g, _workload(), k=2, budget_bytes=0)
        assert rec.interests == frozenset()
        assert rec.coverage() == 0.0

    def test_empty_workload(self, g):
        rec = recommend_interests(g, [], k=2)
        assert rec.interests == frozenset()
        assert rec.candidate_count == 0
        assert rec.coverage() == 1.0

    def test_recommended_interests_build_valid_index(self, g):
        rec = recommend_interests(g, _workload(), k=2, budget_bytes=4096)
        index = InterestAwareIndex.build(g, k=2, interests=rec.interests)
        for query in _workload():
            assert index.evaluate(query) == reference(query, g)

    def test_deterministic(self, g):
        a = recommend_interests(g, _workload(), k=2, budget_bytes=256)
        b = recommend_interests(g, _workload(), k=2, budget_bytes=256)
        assert a.interests == b.interests


class TestAdviseK:
    def test_matches_longest_chain(self):
        assert advise_k(_workload()) == 2
        assert advise_k([sequence_query((1, 2, 3))]) == 3

    def test_clamped(self):
        assert advise_k([sequence_query((1,) * 9)], max_k=4) == 4

    def test_identity_workload(self):
        assert advise_k([ID, EdgeLabel(1)]) == 1
