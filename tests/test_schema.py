"""Unit tests for the schema-driven generator (mini-gMark)."""

from __future__ import annotations

import random

import pytest

from repro.errors import DatasetError
from repro.graph.schema import (
    EdgeType,
    GraphSchema,
    VertexType,
    citation_schema,
    constant,
    geometric,
    lubm_schema,
    uniform,
    watdiv_schema,
    yago_like_schema,
    zipfian,
)


class TestDegreeSamplers:
    def test_constant(self):
        assert constant(3)(random.Random(0)) == 3

    def test_uniform_bounds(self):
        rng = random.Random(0)
        values = {uniform(1, 4)(rng) for _ in range(200)}
        assert values == {1, 2, 3, 4}

    def test_zipf_bounded(self):
        rng = random.Random(0)
        values = [zipfian(10)(rng) for _ in range(500)]
        assert max(values) <= 10
        assert min(values) >= 1

    def test_geometric_mean(self):
        rng = random.Random(0)
        values = [geometric(0.5)(rng) for _ in range(3000)]
        mean = sum(values) / len(values)
        assert 0.7 < mean < 1.3  # E[X] = (1-p)/p = 1


class TestSchemaValidation:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(DatasetError):
            GraphSchema("bad", [VertexType("a", 0.5)], [])

    def test_duplicate_vertex_type_rejected(self):
        with pytest.raises(DatasetError):
            GraphSchema(
                "bad",
                [VertexType("a", 0.5), VertexType("a", 0.5)],
                [],
            )

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(DatasetError):
            GraphSchema(
                "bad",
                [VertexType("a", 1.0)],
                [EdgeType("r", "a", "missing", constant(1))],
            )


class TestGeneration:
    def test_typed_vertices_and_edges(self):
        schema = GraphSchema(
            "two-type",
            [VertexType("src", 0.5), VertexType("dst", 0.5)],
            [EdgeType("rel", "src", "dst", constant(2))],
        )
        graph = schema.generate(40, seed=1)
        for v, u, _ in graph.triples():
            assert v[0] == "src"
            assert u[0] == "dst"

    def test_deterministic(self):
        schema = citation_schema()
        assert schema.generate(100, seed=2) == schema.generate(100, seed=2)

    def test_vertex_budget_respected(self):
        graph = citation_schema().generate(200, seed=3)
        assert 180 <= graph.num_vertices <= 220


class TestPredefinedSchemas:
    @pytest.mark.parametrize(
        "factory,expected_labels",
        [
            (citation_schema, {"cites", "supervises", "livesIn", "worksIn",
                               "publishesIn", "heldIn"}),
            (lubm_schema, {"takesCourse", "teacherOf", "advisor", "memberOf",
                           "subOrganizationOf", "worksFor", "publicationAuthor",
                           "undergraduateDegreeFrom"}),
            (watdiv_schema, {"follows", "purchases", "likes", "writesReview",
                             "reviewOf", "sells", "hasGenre"}),
            (yago_like_schema, {"livesIn", "wasBornIn", "worksAt", "graduatedFrom",
                                "isMarriedTo", "influences", "created",
                                "isLocatedIn", "isCitizenOf"}),
        ],
        ids=["citation", "lubm", "watdiv", "yago"],
    )
    def test_labels(self, factory, expected_labels):
        schema = factory()
        assert {et.label for et in schema.edge_types} == expected_labels
        graph = schema.generate(120, seed=4)
        assert graph.num_edges > 0

    def test_citation_edge_typing(self):
        """The paper's schema: cites researcher→researcher, heldIn venue→city."""
        graph = citation_schema().generate(300, seed=5)
        registry = graph.registry
        cites = registry.id_of("cites")
        held_in = registry.id_of("heldIn")
        for v, u, label in graph.triples():
            if label == cites:
                assert v[0] == "researcher" and u[0] == "researcher"
            elif label == held_in:
                assert v[0] == "venue" and u[0] == "city"
