"""Unit tests for the reference CPQ semantics (the executable spec)."""

from __future__ import annotations

import pytest

from repro.graph.io import edges_from_strings
from repro.query.ast import EdgeLabel, sequence_query
from repro.query.parser import parse
from repro.query.semantics import evaluate, is_empty


@pytest.fixture()
def g():
    # 0 -a-> 1 -b-> 2, 2 -a-> 0, plus self loop b at 0
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestAtoms:
    def test_identity(self, g):
        assert evaluate(parse("id"), g) == {(v, v) for v in g.vertices()}

    def test_label(self, g):
        assert evaluate(parse("a", g.registry), g) == {(0, 1), (2, 0)}

    def test_inverse_label(self, g):
        assert evaluate(parse("a^-", g.registry), g) == {(1, 0), (0, 2)}


class TestJoin:
    def test_simple_chain(self, g):
        assert evaluate(parse("a . b", g.registry), g) == {(0, 2), (2, 0)}

    def test_join_with_identity_is_noop(self, g):
        q1 = evaluate(parse("a . id", g.registry), g)
        q2 = evaluate(parse("id . a", g.registry), g)
        q3 = evaluate(parse("a", g.registry), g)
        assert q1 == q2 == q3

    def test_three_chain(self, g):
        # a b a: 0->1->2->0
        assert evaluate(parse("a . b . a", g.registry), g) == {(0, 0), (2, 1)}


class TestConjunction:
    def test_intersection(self, g):
        # pairs with both an a-edge and a b-self-loop path... use a & a
        assert evaluate(parse("a & a", g.registry), g) == {(0, 1), (2, 0)}

    def test_empty_intersection(self, g):
        assert evaluate(parse("a & b", g.registry), g) == set()

    def test_conjunction_with_identity_filters_loops(self, g):
        assert evaluate(parse("b & id", g.registry), g) == {(0, 0)}

    def test_cycle_detection(self, g):
        # the 3-cycle 0-a->1-b->2-a->0
        assert evaluate(parse("(a . b . a) & id", g.registry), g) == {(0, 0)}


class TestSemanticsLaws:
    """Algebraic laws that must hold for the set semantics."""

    def test_join_associative(self, g):
        a, b = EdgeLabel(1), EdgeLabel(2)
        left = evaluate((a >> b) >> a, g)
        right = evaluate(a >> (b >> a), g)
        assert left == right

    def test_conjunction_commutative(self, g):
        a, b = EdgeLabel(1), EdgeLabel(2)
        assert evaluate(a & b, g) == evaluate(b & a, g)

    def test_conjunction_idempotent(self, g):
        a = EdgeLabel(1)
        assert evaluate(a & a, g) == evaluate(a, g)

    def test_join_distributes_over_nothing_weaker(self, g):
        """(q1 ∩ q2) ∘ l ⊆ (q1 ∘ l) ∩ (q2 ∘ l) — inclusion, not equality."""
        a, b = EdgeLabel(1), EdgeLabel(2)
        lhs = evaluate((a & a) >> b, g)
        rhs = evaluate((a >> b) & (a >> b), g)
        assert lhs <= rhs

    def test_inverse_converse(self, g):
        a = EdgeLabel(1)
        forward = evaluate(a, g)
        backward = evaluate(a.inverse(), g)
        assert backward == {(u, v) for v, u in forward}

    def test_sequence_query_matches_relation(self, g):
        for seq in [(1,), (1, 2), (2, -1), (1, 2, 1)]:
            assert evaluate(sequence_query(seq), g) == g.sequence_relation(seq)


class TestMemoization:
    def test_shared_subqueries_consistent(self, g):
        a, b = EdgeLabel(1), EdgeLabel(2)
        shared = a >> b
        q = (shared & shared) >> (shared & shared)
        # evaluating a query with heavy sharing equals step-by-step evaluation
        expected_half = evaluate(shared, g)
        by_hand = {
            (v, u)
            for v, m in expected_half
            for (m2, u) in expected_half
            if m2 == m
        }
        assert evaluate(q, g) == by_hand


class TestIsEmpty:
    def test_is_empty(self, g):
        assert is_empty(parse("a & b", g.registry), g)
        assert not is_empty(parse("a", g.registry), g)
