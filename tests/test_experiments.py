"""Smoke tests for every experiment function (tiny scale).

Each paper table/figure's generator must run end to end and produce
plausibly-shaped rows; the full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments as E


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.12")
    monkeypatch.setenv("REPRO_BENCH_QUERIES", "2")


class TestDatasetTable:
    def test_table2(self):
        result = E.table2_datasets(names=("robots", "yago"))
        assert len(result.rows) == 2
        assert result.headers[0] == "dataset"
        assert "robots" in result.render()


class TestQueryTimeExperiments:
    def test_fig6(self):
        result = E.fig6_query_time(
            datasets=("robots",), templates=("C2", "T"),
            methods=("CPQx", "iaCPQx", "BFS"),
        )
        methods = set(result.column("method"))
        assert methods == {"CPQx", "iaCPQx", "BFS"}
        for time_value in result.column("mean_time_s"):
            assert time_value >= 0

    def test_fig6_skips_full_methods_on_infeasible(self):
        result = E.fig6_query_time(
            datasets=("wikidata",), templates=("C2",),
            methods=("CPQx", "iaCPQx"),
        )
        assert set(result.column("method")) == {"iaCPQx"}

    def test_table3(self):
        result = E.table3_pruning_power(datasets=("robots",))
        assert len(result.rows) == 1
        _, cpqx, ia, iapath = result.rows[0]
        assert ia <= iapath

    def test_fig7(self):
        result = E.fig7_empty_nonempty(
            datasets=("yago",), templates=("C2", "T"),
            methods=("iaCPQx", "Tentris"),
        )
        assert {"non-empty", "first"} <= set(result.column("kind"))

    def test_fig8(self):
        result = E.fig8_interest_size(
            dataset="yago", fractions=(1.0, 0.0), templates=("C2",)
        )
        pcts = set(result.column("interest_pct"))
        assert pcts == {100, 0}

    def test_fig9(self):
        result = E.fig9_yago_benchmark(methods=("iaCPQx", "BFS"))
        assert {row[0] for row in result.rows} == {"Y1", "Y2", "Y3", "Y4"}

    def test_fig10(self):
        result = E.fig10_lubm_watdiv(sizes=(120, 240))
        suites = {row[0] for row in result.rows}
        assert suites == {"LUBM", "WatDiv"}

    def test_fig11(self):
        result = E.fig11_scalability(sizes=(120, 240), templates=("C2",))
        assert len(result.rows) == 2
        assert result.rows[0][0] <= result.rows[1][0]


class TestIndexCostExperiments:
    def test_fig12(self):
        result = E.fig12_label_count(label_counts=(16, 64))
        assert [row[0] for row in result.rows] == [16, 64]
        for _, path, cpqx, iapath, iacpqx in result.rows:
            assert min(path, cpqx, iapath, iacpqx) > 0

    def test_table4_feasibility_dashes(self):
        result = E.table4_index_size(datasets=("robots", "wikidata"))
        by_key = {(row[0], row[1]): row for row in result.rows}
        assert by_key[("wikidata", "CPQx")][2] == "-"
        assert by_key[("robots", "CPQx")][2] != "-"

    def test_fig15(self):
        result = E.fig15_k_index_cost(datasets=("robots",), ks=(1, 2))
        assert [row[1] for row in result.rows] == [1, 2]


class TestMaintenanceExperiments:
    def test_table5(self):
        result = E.table5_cpqx_updates(datasets=("robots",), updates=4)
        assert len(result.rows) == 1
        _, deletion, insertion = result.rows[0]
        assert deletion >= 0 and insertion >= 0

    def test_table6(self):
        result = E.table6_iacpqx_updates(datasets=("robots",), updates=4)
        _, edge_del, edge_ins, seq_del, seq_ins = result.rows[0]
        assert min(edge_del, edge_ins, seq_del, seq_ins) >= 0

    def test_table7(self):
        result = E.table7_size_growth(
            dataset="robots", edge_ratios=(0.05,), seq_counts=(2,)
        )
        kinds = {row[1] for row in result.rows}
        assert kinds == {"edges", "sequences"}
        for row in result.rows:
            assert row[3] > 0.5

    def test_fig13(self):
        result = E.fig13_maintenance_impact(
            dataset="robots", edge_ratios=(0.0, 0.1), templates=("C2",)
        )
        assert {row[1] for row in result.rows} == {0, 10}

    def test_fig14(self):
        result = E.fig14_k_query_time(
            datasets=("robots",), ks=(1, 2), templates=("C2",)
        )
        assert {row[1] for row in result.rows} == {1, 2}
