"""Unit tests for the cardinality-aware split optimizer."""

from __future__ import annotations

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.plan.optimizer import (
    disable_optimizer,
    enable_optimizer,
    greedy_split_cost,
    index_estimator,
    optimal_split,
    optimizing_splitter,
    split_cost,
)
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference


@pytest.fixture()
def skewed_graph():
    """Label 'h' (heavy) is everywhere; 'r' (rare) appears once.

    A sequence like r·h·h should be split as [r·h, h] or [r, h·h] — the
    optimizer must prefer boundaries keeping the rare chunk lookups small.
    """
    lines = []
    for i in range(12):
        lines.append(f"a{i} b{i} h")
        lines.append(f"b{i} c{i} h")
        lines.append(f"c{i} d{i} h")
    lines.append("a0 b0 r")
    return edges_from_strings(lines)


class TestOptimalSplit:
    def test_respects_k(self):
        chunks = optimal_split((1, 2, 3, 4, 5), 2, lambda chunk: 1)
        assert all(1 <= len(c) <= 2 for c in chunks)
        assert tuple(x for c in chunks for x in c) == (1, 2, 3, 4, 5)

    def test_minimizes_simple_cost(self):
        # chunk (1,2) costs 1, everything else costs 100
        def estimate(chunk):
            return 1 if chunk == (1, 2) else 100

        chunks = optimal_split((3, 1, 2), 2, estimate)
        assert chunks == [(3,), (1, 2)]

    def test_allowed_restriction(self):
        chunks = optimal_split(
            (1, 2, 3), 2, lambda chunk: 1, allowed=lambda chunk: chunk == (2, 3)
        )
        assert chunks == [(1,), (2, 3)]

    def test_all_disallowed_falls_back_to_singles(self):
        chunks = optimal_split(
            (1, 2, 3), 2, lambda chunk: 1, allowed=lambda chunk: False
        )
        assert chunks == [(1,), (2,), (3,)]

    def test_never_worse_than_greedy(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        estimate = index_estimator(index)
        registry = skewed_graph.registry
        h, r = registry.id_of("h"), registry.id_of("r")
        for seq in [(h, h, h), (r, h, h), (h, h, r), (h, r, h, h)]:
            optimal = split_cost(optimal_split(seq, 2, estimate), estimate)
            greedy = greedy_split_cost(seq, 2, estimate)
            assert optimal <= greedy

    def test_strictly_better_on_skew(self, skewed_graph):
        """r·h·h greedily splits [rh, h] (paying the full h relation, 36);
        the optimal split [r, hh] pays |r| + |hh| = 1 + 24 instead."""
        index = CPQxIndex.build(skewed_graph, k=2)
        estimate = index_estimator(index)
        registry = skewed_graph.registry
        h, r = registry.id_of("h"), registry.id_of("r")
        seq = (r, h, h)
        chunks = optimal_split(seq, 2, estimate)
        optimal = split_cost(chunks, estimate)
        greedy = greedy_split_cost(seq, 2, estimate)
        assert chunks == [(r,), (h, h)]
        assert optimal < greedy


class TestOptimizingSplitter:
    def test_short_sequences_pass_through(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        splitter = optimizing_splitter(index, 2)
        assert splitter((1, 2)) == [(1, 2)]

    def test_respects_interest_restriction(self, skewed_graph):
        registry = skewed_graph.registry
        h = registry.id_of("h")
        index = InterestAwareIndex.build(skewed_graph, k=2, interests={(h, h)})
        splitter = optimizing_splitter(
            index, 2, allowed=lambda chunk: chunk in index.interests
        )
        r = registry.id_of("r")
        for chunk in splitter((h, r, h)):
            assert len(chunk) == 1 or chunk in index.interests


class TestEnableDisable:
    def test_results_unchanged(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        query = parse("h . h . h", skewed_graph.registry)
        expected = reference(query, skewed_graph)
        assert index.evaluate(query) == expected
        enable_optimizer(index)
        assert index.evaluate(query) == expected
        disable_optimizer(index)
        assert index.evaluate(query) == expected

    def test_disable_restores_class_splitter(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        stock = index.splitter()((1, 2, 3))
        enable_optimizer(index)
        disable_optimizer(index)
        assert index.splitter()((1, 2, 3)) == stock

    def test_disable_without_enable_is_noop(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        disable_optimizer(index)  # must not raise

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_graph_agreement_under_optimizer(self, seed):
        from repro.query.workloads import random_template_queries

        graph = random_graph(18, 50, 3, seed=seed)
        index = CPQxIndex.build(graph, k=2)
        enable_optimizer(index)
        for template in ("C4", "SC", "ST", "Si"):
            for wq in random_template_queries(graph, template, count=2, seed=seed):
                assert index.evaluate(wq.query) == reference(wq.query, graph)

    def test_iacpqx_optimizer_agreement(self, skewed_graph):
        registry = skewed_graph.registry
        h = registry.id_of("h")
        index = InterestAwareIndex.build(skewed_graph, k=2, interests={(h, h)})
        enable_optimizer(index)
        for text in ("h . h . h", "h . r . h", "(h . h . h) & id"):
            query = parse(text, registry)
            assert index.evaluate(query) == reference(query, skewed_graph), text


class TestIndexEstimator:
    def test_estimates_match_lookup_sizes(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        estimate = index_estimator(index)
        registry = skewed_graph.registry
        h, r = registry.id_of("h"), registry.id_of("r")
        assert estimate((h,)) == 36
        assert estimate((r,)) == 1
        assert estimate((99,)) == 0

    def test_overlong_chunk_is_penalized(self, skewed_graph):
        index = CPQxIndex.build(skewed_graph, k=2)
        estimate = index_estimator(index)
        assert estimate((1, 1, 1)) >= 1 << 30

    def test_pair_index_estimator(self, skewed_graph):
        from repro.baselines.path_index import PathIndex

        index = PathIndex.build(skewed_graph, k=2)
        estimate = index_estimator(index)
        registry = skewed_graph.registry
        assert estimate((registry.id_of("h"),)) == 36
