"""Unit tests for the k-path-bisimulation partition (Algorithm 1).

The correctness contract (DESIGN.md §4.2): every class is uniform in its
``L≤k`` label-sequence set and in its loop flag; the partition refines
level by level; and pairs provably distinguishable by a CPQ land in
different classes.
"""

from __future__ import annotations

import pytest

from repro.errors import IndexBuildError
from repro.core.partition import compute_partition, level1_classes, refines
from repro.core.paths import enumerate_sequences, invert_sequences, reachable_pairs
from repro.graph.generators import cycle_graph, random_graph
from repro.graph.io import edges_from_strings


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestLevel1:
    def test_groups_by_edge_labels(self, g):
        classes = level1_classes(g)
        # (0,1) and (2,0) both have exactly {a}
        assert classes[(0, 1)] == classes[(2, 0)]
        assert classes[(0, 1)] != classes[(1, 2)]

    def test_loop_flag_separates(self):
        g = edges_from_strings(["0 0 a", "1 2 a"])
        classes = level1_classes(g)
        assert classes[(0, 0)] != classes[(1, 2)]

    def test_both_directions_in_signature(self):
        # (0,1) has a forward a; (2,3) has forward a AND backward b
        g = edges_from_strings(["0 1 a", "2 3 a", "3 2 b"])
        classes = level1_classes(g)
        assert classes[(0, 1)] != classes[(2, 3)]

    def test_domain_is_p1(self, g):
        classes = level1_classes(g)
        assert set(classes) == reachable_pairs(g, 1)


class TestComputePartition:
    def test_k_zero_rejected(self, g):
        with pytest.raises(IndexBuildError):
            compute_partition(g, 0)

    def test_domain_is_pk(self, g):
        for k in (1, 2, 3):
            partition = compute_partition(g, k)
            assert set(partition.class_of) == reachable_pairs(g, k)

    def test_blocks_partition_the_domain(self, g):
        partition = compute_partition(g, 2)
        seen = set()
        for class_id, members in partition.blocks.items():
            for pair in members:
                assert pair not in seen
                seen.add(pair)
                assert partition.class_of[pair] == class_id
        assert seen == set(partition.class_of)

    def test_label_sequence_uniformity(self, g):
        """Def. 4.2's key invariant: classes are L≤k-uniform."""
        for k in (1, 2, 3):
            partition = compute_partition(g, k)
            per_pair = invert_sequences(enumerate_sequences(g, k))
            for members in partition.blocks.values():
                sequence_sets = {per_pair[pair] for pair in members}
                assert len(sequence_sets) == 1

    def test_loop_uniformity(self, g):
        partition = compute_partition(g, 2)
        for class_id, members in partition.blocks.items():
            flags = {pair[0] == pair[1] for pair in members}
            assert len(flags) == 1
            assert (class_id in partition.loop_classes) == flags.pop()

    def test_refinement_chain(self, g):
        """C_i refines C_{i-1} (Sec. IV-C)."""
        p1 = compute_partition(g, 1)
        p2 = compute_partition(g, 2)
        p3 = compute_partition(g, 3)
        assert refines(p2.class_of, p1.class_of)
        assert refines(p3.class_of, p2.class_of)

    def test_level_counts_recorded(self, g):
        partition = compute_partition(g, 3)
        assert len(partition.level_class_counts) == 3
        assert partition.level_class_counts[-1] == partition.num_classes

    def test_deterministic(self, g):
        a = compute_partition(g, 2)
        b = compute_partition(g, 2)
        assert a.class_of == b.class_of


class TestDistinguishability:
    def test_midpoint_sharing_distinguished(self):
        """Pairs equal in L≤2 but different in decomposition structure.

        (s1,t1) reaches t1 via a-then-c through ONE midpoint that also has
        a b-edge to t1; (s2,t2) has the same label sequences but the b-edge
        is on a different midpoint.  The CPQ a∘(b ∩ c)... is out of CPQ2's
        lookup shapes, but bisimulation still separates them because the
        midpoints' level-1 classes differ.
        """
        g = edges_from_strings([
            # pair 1: shared midpoint m1 with both b and c to t1
            "s1 m1 a", "m1 t1 b", "m1 t1 c",
            # pair 2: two midpoints, each with only one of b/c
            "s2 m2 a", "m2 t2 b", "s2 m3 a", "m3 t2 c",
        ])
        partition = compute_partition(g, 2)
        assert partition.class_of[("s1", "t1")] != partition.class_of[("s2", "t2")]

    def test_cycle_vs_chain(self):
        g = edges_from_strings(["0 1 a", "1 0 a", "2 3 a", "3 4 a"])
        partition = compute_partition(g, 2)
        # (0,0) is a loop via aa; (2,4) is a chain via aa — must differ
        assert partition.class_of[(0, 0)] != partition.class_of[(2, 4)]

    def test_symmetric_vertices_merge(self):
        """A uniform cycle has one class per 'travel distance'."""
        g = cycle_graph(6)
        partition = compute_partition(g, 2)
        # all 1-step pairs equivalent, all 2-step pairs equivalent, etc.
        one_step = {partition.class_of[(v, (v + 1) % 6)] for v in range(6)}
        two_step = {partition.class_of[(v, (v + 2) % 6)] for v in range(6)}
        loops = {partition.class_of[(v, v)] for v in range(6)}
        assert len(one_step) == 1
        assert len(two_step) == 1
        assert len(loops) == 1
        assert len({*one_step, *two_step, *loops}) == 3


class TestRefinesHelper:
    def test_refines_true(self):
        finer = {(0, 1): 0, (1, 2): 1, (2, 3): 2}
        coarser = {(0, 1): 10, (1, 2): 10, (2, 3): 11}
        assert refines(finer, coarser)

    def test_refines_false(self):
        finer = {(0, 1): 0, (1, 2): 0}
        coarser = {(0, 1): 10, (1, 2): 11}
        assert not refines(finer, coarser)

    def test_extra_domain_ignored(self):
        finer = {(0, 1): 0, (5, 5): 3}
        coarser = {(0, 1): 10}
        assert refines(finer, coarser)


class TestScalingSanity:
    def test_random_graph_partition_count_bounds(self):
        g = random_graph(25, 70, 3, seed=4)
        partition = compute_partition(g, 2)
        assert 1 <= partition.num_classes <= partition.num_pairs
        # γ-style sanity: classes compress pairs at least somewhat
        assert partition.num_classes < partition.num_pairs
