"""Tests for conjunctive-query evaluation over CPQ indexes (Sec. VII #3)."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.bfs import BFSEngine
from repro.core.cpqx import CPQxIndex
from repro.core.cq import (
    ConjunctiveQuery,
    TriplePattern,
    collapse_chains,
    evaluate_cq,
    is_variable,
    parse_bgp,
)
from repro.errors import QuerySyntaxError
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings


def brute_force_cq(cq: ConjunctiveQuery, graph) -> frozenset:
    """Specification evaluator: try every variable assignment."""
    variables = sorted(cq.variables())
    vertices = list(graph.vertices())
    results = set()
    for assignment in itertools.product(vertices, repeat=len(variables)):
        binding = dict(zip(variables, assignment))

        def term_value(term):
            return binding[term] if is_variable(term) else term

        if all(
            graph.has_edge(term_value(p.subject), term_value(p.object), p.predicate)
            for p in cq.patterns
        ):
            results.add(tuple(binding[name] for name in cq.projection))
    return frozenset(results)


@pytest.fixture()
def g():
    graph = edges_from_strings([
        "ann bob follows", "bob cat follows", "cat ann follows",
        "ann blog1 visits", "bob blog1 visits", "cat blog2 visits",
        "dan ann follows", "dan blog2 visits",
    ])
    return graph


@pytest.fixture()
def engine(g):
    return CPQxIndex.build(g, k=2)


class TestParseBgp:
    def test_parses_variables_and_predicates(self, g):
        cq = parse_bgp("?x follows ?y . ?y visits ?b", ("?x", "?b"), g.registry)
        assert len(cq.patterns) == 2
        assert cq.patterns[0].subject == "?x"
        assert cq.variables() == {"?x", "?y", "?b"}

    def test_parses_constants(self, g):
        cq = parse_bgp("?x visits blog1", ("?x",), g.registry)
        assert cq.patterns[0].object == "blog1"

    def test_parses_inverse_predicate(self, g):
        cq = parse_bgp("?x follows^- ?y", ("?x", "?y"), g.registry)
        assert cq.patterns[0].predicate < 0

    def test_rejects_malformed(self, g):
        with pytest.raises(QuerySyntaxError):
            parse_bgp("?x follows", ("?x",), g.registry)

    def test_rejects_unknown_projection(self, g):
        with pytest.raises(QuerySyntaxError):
            parse_bgp("?x follows ?y", ("?z",), g.registry)

    def test_rejects_empty(self, g):
        with pytest.raises(QuerySyntaxError):
            parse_bgp("", ("?x",), g.registry)


class TestCollapseChains:
    def test_interior_variable_eliminated(self, g):
        cq = parse_bgp("?x follows ?m . ?m follows ?y", ("?x", "?y"), g.registry)
        relations = collapse_chains(cq)
        assert len(relations) == 1
        assert relations[0].sequence == (1, 1)

    def test_projected_variable_kept(self, g):
        cq = parse_bgp("?x follows ?m . ?m follows ?y", ("?x", "?m", "?y"), g.registry)
        assert len(collapse_chains(cq)) == 2

    def test_branching_variable_kept(self, g):
        cq = parse_bgp(
            "?x follows ?m . ?m follows ?y . ?m visits ?b",
            ("?x", "?y", "?b"),
            g.registry,
        )
        assert len(collapse_chains(cq)) == 3

    def test_direction_normalization(self, g):
        # ?m is entered forward and left backward: x -f-> m <-f- y
        cq = parse_bgp("?x follows ?m . ?y follows ?m", ("?x", "?y"), g.registry)
        relations = collapse_chains(cq)
        assert len(relations) == 1
        assert relations[0].sequence in [(1, -1), (1, -1)]

    def test_long_chain_fully_collapsed(self, g):
        cq = parse_bgp(
            "?a follows ?b . ?b follows ?c . ?c follows ?d . ?d visits ?e",
            ("?a", "?e"),
            g.registry,
        )
        relations = collapse_chains(cq)
        assert len(relations) == 1
        assert relations[0].sequence == (1, 1, 1, 2)


class TestEvaluation:
    @pytest.mark.parametrize("text,projection", [
        ("?x follows ?y", ("?x", "?y")),
        ("?x follows ?m . ?m follows ?y", ("?x", "?y")),
        ("?x follows ?y . ?y follows ?x", ("?x",)),
        ("?x follows ?y . ?x visits ?b . ?y visits ?b", ("?x", "?y", "?b")),
        ("?x visits blog2", ("?x",)),
        ("?x follows ?m . ?m visits ?b", ("?x", "?b")),
        ("?x follows^- ?y . ?y visits ?b", ("?x", "?b")),
    ])
    def test_matches_brute_force(self, g, engine, text, projection):
        cq = parse_bgp(text, projection, g.registry)
        assert evaluate_cq(cq, engine) == brute_force_cq(cq, g)

    def test_triangle_projection(self, g, engine):
        cq = parse_bgp(
            "?x follows ?y . ?y follows ?z . ?z follows ?x",
            ("?x",),
            g.registry,
        )
        assert evaluate_cq(cq, engine) == {("ann",), ("bob",), ("cat",)}

    def test_engine_agnostic(self, g, engine):
        cq = parse_bgp(
            "?x follows ?m . ?m visits ?b", ("?x", "?b"), g.registry
        )
        assert evaluate_cq(cq, engine) == evaluate_cq(cq, BFSEngine(g))

    def test_constants_both_sides(self, g, engine):
        cq = ConjunctiveQuery(
            (TriplePattern("ann", 1, "bob"),), projection=()
        )
        # boolean query: non-empty iff the edge exists
        assert evaluate_cq(cq, engine) == {()}

    def test_false_boolean_query(self, g, engine):
        cq = ConjunctiveQuery(
            (TriplePattern("bob", 1, "ann"),), projection=()
        )
        assert evaluate_cq(cq, engine) == frozenset()


class TestRandomAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_bgps(self, seed):
        import random as random_module

        graph = random_graph(8, 20, 2, seed=seed)
        engine = CPQxIndex.build(graph, k=2)
        rng = random_module.Random(seed)
        variables = ["?a", "?b", "?c", "?d"]
        for _ in range(6):
            num_patterns = rng.randint(1, 3)
            patterns = tuple(
                TriplePattern(
                    rng.choice(variables),
                    rng.choice([1, 2, -1, -2]),
                    rng.choice(variables),
                )
                for _ in range(num_patterns)
            )
            used = sorted({
                t for p in patterns for t in (p.subject, p.object)
            })
            projection = tuple(rng.sample(used, k=min(2, len(used))))
            cq = ConjunctiveQuery(patterns, projection)
            assert evaluate_cq(cq, engine) == brute_force_cq(cq, graph), cq
