"""Unit tests for the label registry and inverse-label encoding."""

from __future__ import annotations

import pytest

from repro.errors import UnknownLabelError
from repro.graph.labels import (
    LabelRegistry,
    base_label,
    inverse,
    inverse_sequence,
    is_inverse,
)


class TestInverseEncoding:
    def test_inverse_negates(self):
        assert inverse(3) == -3
        assert inverse(-3) == 3

    def test_inverse_is_involution(self):
        for label in (1, -1, 7, -42):
            assert inverse(inverse(label)) == label

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(UnknownLabelError):
            inverse(0)

    def test_is_inverse(self):
        assert is_inverse(-1)
        assert not is_inverse(1)

    def test_base_label(self):
        assert base_label(-5) == 5
        assert base_label(5) == 5

    def test_inverse_sequence_reverses_and_negates(self):
        assert inverse_sequence((1, -2, 3)) == (-3, 2, -1)

    def test_inverse_sequence_is_involution(self):
        seq = (1, -2, 3, 3, -1)
        assert inverse_sequence(inverse_sequence(seq)) == seq

    def test_inverse_sequence_empty(self):
        assert inverse_sequence(()) == ()


class TestLabelRegistry:
    def test_registration_order_gives_ids(self):
        registry = LabelRegistry(["f", "v"])
        assert registry.id_of("f") == 1
        assert registry.id_of("v") == 2

    def test_register_is_idempotent(self):
        registry = LabelRegistry()
        first = registry.register("x")
        second = registry.register("x")
        assert first == second == 1
        assert len(registry) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(UnknownLabelError):
            LabelRegistry().register("")

    def test_inverse_suffix_in_id_of(self):
        registry = LabelRegistry(["f"])
        assert registry.id_of("f^-") == -1

    def test_name_of_inverse(self):
        registry = LabelRegistry(["f"])
        assert registry.name_of(-1) == "f^-"
        assert registry.name_of(1) == "f"

    def test_name_of_unknown_raises(self):
        registry = LabelRegistry(["f"])
        with pytest.raises(UnknownLabelError):
            registry.name_of(2)
        with pytest.raises(UnknownLabelError):
            registry.name_of(0)

    def test_id_of_unknown_raises(self):
        with pytest.raises(UnknownLabelError):
            LabelRegistry().id_of("missing")

    def test_contains(self):
        registry = LabelRegistry(["f"])
        assert "f" in registry
        assert "f^-" in registry
        assert "g" not in registry
        assert 1 not in registry  # non-strings are never contained

    def test_iteration_and_len(self):
        registry = LabelRegistry(["a", "b", "c"])
        assert list(registry) == ["a", "b", "c"]
        assert len(registry) == 3

    def test_forward_and_all_ids(self):
        registry = LabelRegistry(["a", "b"])
        assert list(registry.forward_ids()) == [1, 2]
        assert registry.all_ids() == [1, 2, -1, -2]

    def test_sequence_of(self):
        registry = LabelRegistry(["a", "b"])
        assert registry.sequence_of(["a", "b^-", "a"]) == (1, -2, 1)

    def test_format_sequence(self):
        registry = LabelRegistry(["f", "v"])
        assert registry.format_sequence((1, -2)) == "⟨f, v^-⟩"
