"""Unit tests for random workload generation (Sec. VI 'Queries')."""

from __future__ import annotations

import pytest

from repro.graph.generators import random_graph
from repro.query.ast import label_sequences_in
from repro.query.semantics import evaluate
from repro.query.workloads import (
    mixed_emptiness_workload,
    random_template_queries,
    split_by_emptiness,
    subpaths_nonempty,
    workload_interests,
)


@pytest.fixture()
def g():
    return random_graph(num_vertices=40, num_edges=140, num_labels=3, seed=11)


class TestSubpathFilter:
    def test_filter_honoured(self, g):
        queries = random_template_queries(g, "C4", count=5, seed=1)
        for wq in queries:
            assert subpaths_nonempty(wq.query, g)

    def test_filter_rejects_unused_label(self, g):
        from repro.query.ast import EdgeLabel

        # label id 99 never occurs in the graph
        assert not subpaths_nonempty(EdgeLabel(99) >> EdgeLabel(1), g)

    def test_c2_filter_implies_nonempty_answer(self, g):
        """For C2 the whole sequence is a checked sub-path, so the filter
        guarantees a non-empty answer (used by the Fig. 7 bench)."""
        for wq in random_template_queries(g, "C2", count=8, seed=2):
            assert evaluate(wq.query, g)


class TestGeneration:
    def test_deterministic(self, g):
        first = random_template_queries(g, "S", count=5, seed=3)
        second = random_template_queries(g, "S", count=5, seed=3)
        assert [wq.labels for wq in first] == [wq.labels for wq in second]

    def test_distinct_label_choices(self, g):
        queries = random_template_queries(g, "T", count=8, seed=4)
        assert len({wq.labels for wq in queries}) == len(queries)

    def test_template_recorded(self, g):
        for wq in random_template_queries(g, "Ti", count=3, seed=5):
            assert wq.template == "Ti"

    def test_queries_are_resolved(self, g):
        from repro.query.ast import is_resolved

        for wq in random_template_queries(g, "TT", count=3, seed=6):
            assert is_resolved(wq.query)

    def test_empty_graph_yields_nothing(self):
        from repro.graph.digraph import LabeledDigraph

        assert random_template_queries(LabeledDigraph(), "C2", count=3, seed=0) == []

    def test_unfiltered_generation(self, g):
        queries = random_template_queries(
            g, "C4", count=5, seed=7, require_nonempty_subpaths=False
        )
        assert len(queries) == 5


class TestInterests:
    def test_interest_extraction_splits_long_sequences(self, g):
        queries = random_template_queries(g, "C4", count=4, seed=8)
        interests = workload_interests(queries, k=2)
        assert interests
        for seq in interests:
            assert 1 <= len(seq) <= 2

    def test_interests_cover_query_sequences(self, g):
        queries = random_template_queries(g, "S", count=4, seed=9)
        interests = workload_interests(queries, k=2)
        for wq in queries:
            for seq in label_sequences_in(wq.query):
                assert seq in interests  # S sequences have length 2 already

    def test_k3_keeps_triples(self, g):
        queries = random_template_queries(g, "Ti", count=4, seed=10)
        interests = workload_interests(queries, k=3)
        assert any(len(seq) == 3 for seq in interests)


class TestEmptinessSplit:
    def test_partition_is_exact(self, g):
        queries = random_template_queries(g, "S", count=10, seed=11)
        non_empty, empty = split_by_emptiness(queries, g)
        assert len(non_empty) + len(empty) == len(queries)
        for wq in non_empty:
            assert evaluate(wq.query, g)
        for wq in empty:
            assert not evaluate(wq.query, g)

    def test_mixed_workload_targets_fraction(self, g):
        workload = mixed_emptiness_workload(g, "S", count=6, empty_fraction=0.5, seed=12)
        assert len(workload) <= 6
        if len(workload) == 6:
            non_empty, empty = split_by_emptiness(workload, g)
            # achieved mix should be within one query of the target
            assert abs(len(empty) - 3) <= 3
