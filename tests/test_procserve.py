"""The process-based serving subsystem (``repro.serve`` + session wiring).

The guarantees under test (documented in ``docs/concurrency.md``,
"Process-based serving"):

* the **snapshot invariant**: every registered engine pickles after
  build (memo caches dropped by ``EngineBase.__getstate__``) and the
  round-tripped engine serves identical answers;
* :class:`repro.core.parallel.WorkerPool` is safe to construct under
  live reader threads (explicit ``spawn`` context — the PR-5 fix for
  the fork-under-threads hazard noted in ``core/parallel.py``);
* ``serve_batch(..., mode="process")`` returns exactly the serial
  ``execute_batch`` answers for every registered engine, reassembled in
  submission order;
* the version-token handshake: an interleaved ``update()`` (or rebuild)
  retires shipped snapshots, and a worker holding a stale snapshot
  rejects queries so the pool re-ships — no process-served answer can
  come from a pre-update engine;
* worker failures are *contained* (PR 7): evaluation errors are retried
  then surfaced as per-query :class:`~repro.serve.ServeFailure` slots
  with structured context, killed workers are restarted by the
  supervisor and the pool keeps serving — never a hang, never a
  torn-down pool for one query's sake (the deeper fault matrix lives in
  ``tests/test_chaos.py``);
* ``mode="auto"`` routing and the ``EngineSpec.process_servable``
  opt-out.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.core.executor import ExecutionStats
from repro.core.parallel import WorkerPool
from repro.db import EngineSpec, GraphDatabase, register_engine, unregister_engine
from repro.db.registry import available_engines, engine_spec
from repro.db.resultset import ResultSet
from repro.errors import ServingError, SessionError
from repro.graph.generators import random_graph
from repro.serve import ProcessServingPool, session_token, snapshot_bytes

QUERIES = [
    "l1 & l2",
    "(l1 . l2) & id",
    "(l1 . l1) & (l2 . l2)",
    "l1 . l2^-",
    "(l2 . l1) & l3",
]


@pytest.fixture(scope="module")
def serve_graph():
    return random_graph(40, 220, 3, seed=13)


def _build_all_engines(graph):
    """One built engine per registry key (interests cover the workload)."""
    interests = frozenset({(0,), (1,), (2,), (0, 1), (1, 0), (0, 0), (1, 1)})
    return {
        key: engine_spec(key).build(graph.copy(), k=2, interests=interests)
        for key in available_engines()
    }


# ---------------------------------------------------------------------------
# the snapshot invariant (satellite: per-engine pickle round-trip)
# ---------------------------------------------------------------------------


class TestSnapshotInvariant:
    def test_every_registered_engine_round_trips_through_pickle(self, serve_graph):
        """Guards the "picklable minus caches" invariant for all engines.

        The engines evaluate first, so their lock-bearing memo caches are
        attached — exactly the state a serving session snapshots from.
        """
        for key, engine in _build_all_engines(serve_graph).items():
            db = GraphDatabase.from_graph(engine.graph)
            resolved = [db._resolve(query) for query in QUERIES]
            expected = [engine.evaluate(query) for query in resolved]
            clone = pickle.loads(snapshot_bytes(engine))
            served = [clone.evaluate(query) for query in resolved]
            assert served == expected, f"engine {key!r} answers drifted"
            # And the clone re-pickles (caches re-attached by the evals).
            again = pickle.loads(snapshot_bytes(clone))
            assert [again.evaluate(query) for query in resolved] == expected, key

    def test_snapshot_drops_memo_caches(self, serve_graph):
        engine = engine_spec("cpqx").build(serve_graph.copy(), k=2)
        db = GraphDatabase.from_graph(engine.graph)
        engine.evaluate(db._resolve(QUERIES[0]))
        assert getattr(engine, "_memo_results", None) is not None
        clone = pickle.loads(snapshot_bytes(engine))
        assert getattr(clone, "_memo_results", None) is None
        assert getattr(clone, "_memo_subplans", None) is None


# ---------------------------------------------------------------------------
# WorkerPool under live readers (satellite: fork-safety regression)
# ---------------------------------------------------------------------------


def _echo_worker(task, conn) -> None:
    """Top-level so the spawn context can import it by reference."""
    try:
        conn.send(("echo", task, conn.recv()))
    finally:
        conn.close()


class TestWorkerPoolUnderLiveReaders:
    def test_construction_with_reader_threads_alive(self):
        """The PR-5 regression: pool creation must not fork a threaded
        process (racy/deadlock-prone) — WorkerPool spawns explicitly."""
        stop = threading.Event()
        spinners = [
            threading.Thread(target=stop.wait, args=(10,)) for _ in range(3)
        ]
        for thread in spinners:
            thread.start()
        try:
            assert threading.active_count() > 1
            with WorkerPool(_echo_worker, ["a", "b"]) as pool:
                # Explicit spawn context, regardless of platform default.
                assert all(
                    type(process).__name__ == "SpawnProcess"
                    for process in pool._processes
                )
                for index, conn in enumerate(pool.connections):
                    conn.send(index)
                replies = [conn.recv() for conn in pool.connections]
                assert replies == [("echo", "a", 0), ("echo", "b", 1)]
        finally:
            stop.set()
            for thread in spinners:
                thread.join(timeout=5)

    def test_serving_pool_constructs_under_live_serve_batch(self, serve_graph):
        """End-to-end: a process pool comes up while thread-mode readers
        are actively serving on the same session."""
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    db.serve_batch(QUERIES, workers=2)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            serial = db.execute_batch(QUERIES)
            batch = db.serve_batch(QUERIES, workers=2, mode="process")
            for index, result in enumerate(batch):
                assert result.pairs() == serial[index].pairs()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            db.close()
        assert not errors, errors


# ---------------------------------------------------------------------------
# serve_batch(mode="process") correctness
# ---------------------------------------------------------------------------


class TestProcessServing:
    def test_identical_to_serial_for_every_registered_engine(self, serve_graph):
        interests = frozenset({(0,), (1,), (2,), (0, 1), (1, 0), (0, 0), (1, 1)})
        for key in available_engines():
            db = GraphDatabase.from_graph(serve_graph.copy())
            db.build_index(engine=key, k=2, interests=interests)
            try:
                serial = db.execute_batch(QUERIES)
                process = db.serve_batch(QUERIES * 2, workers=2, mode="process")
                assert len(process) == 2 * len(serial)
                for index, result in enumerate(process):
                    assert result.pairs() == serial[index % len(serial)].pairs(), (
                        f"engine {key!r}, query {QUERIES[index % len(serial)]!r}"
                    )
                assert process.total_answers == 2 * serial.total_answers
            finally:
                db.close()

    def test_results_keep_submission_order_and_stats(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            serial = db.execute_batch(QUERIES)
            process = db.serve_batch(QUERIES, workers=3, mode="process")
            for index, result in enumerate(process):
                assert result.query == serial[index].query
                assert result.materialized  # pre-materialized, engine untouched
            # Operator counters made the round trip (merged totals match).
            assert process.stats.lookups == serial.stats.lookups
            assert process.stats.joins == serial.stats.joins
        finally:
            db.close()

    def test_respects_limit(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy())
        try:
            batch = db.serve_batch(["l1 & l2"], workers=2, limit=3, mode="process")
            assert db.is_built  # engine="auto" resolved before dispatch
            assert len(batch[0].pairs()) <= 3
        finally:
            db.close()

    def test_pool_reused_across_batches_and_rebuilt_on_worker_change(
        self, serve_graph
    ):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db.serve_batch(QUERIES, workers=2, mode="process")
            first = db._proc_pool
            db.serve_batch(QUERIES, workers=2, mode="process")
            assert db._proc_pool is first  # reused
            db.serve_batch(QUERIES, workers=3, mode="process")
            assert db._proc_pool is not first
            assert first.closed
        finally:
            db.close()


# ---------------------------------------------------------------------------
# the version-token handshake (update / rebuild invalidation)
# ---------------------------------------------------------------------------


class TestSnapshotInvalidation:
    def test_interleaved_update_never_serves_stale_answers(self, serve_graph):
        base = serve_graph
        v0, v1 = sorted(base.vertices())[:2]
        db = GraphDatabase.from_graph(base.copy()).build_index(engine="cpqx", k=2)
        try:
            before = db.serve_batch(QUERIES, workers=2, mode="process")
            steps = [
                ([("nv0", v0, "l1")], ()),
                ([(v1, "nv0", "l2")], ()),
                ((), [("nv0", v0, "l1")]),
            ]
            changed = False
            for add_edges, remove_edges in steps:
                db.update(add_edges=add_edges, remove_edges=remove_edges)
                serial = db.execute_batch(QUERIES)
                served = db.serve_batch(QUERIES, workers=2, mode="process")
                for index, result in enumerate(served):
                    assert result.pairs() == serial[index].pairs(), (
                        f"stale process-served answer for {QUERIES[index]!r}"
                    )
                changed = changed or any(
                    served[i].pairs() != before[i].pairs()
                    for i in range(len(QUERIES))
                )
            # Some step must have moved some answer, or this test was inert.
            assert changed
        finally:
            db.close()

    def test_rebuild_on_same_graph_moves_the_token(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            token_before = db._serve_token()
            db.serve_batch(QUERIES, workers=2, mode="process")
            db.build_index(engine="path", k=2)  # same graph, new engine
            assert db._serve_token() != token_before
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_worker_side_stale_detection_triggers_reship(self, serve_graph):
        """Force the handshake's worker-side check: lie to the pool that
        workers already hold the current token, and let the ``stale``
        replies drive the re-ship."""
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            db.engine.invalidate_cache()  # moves the epoch → new token
            token = db._serve_token()
            # Corrupt parent bookkeeping: claim every worker is current.
            for conn in pool._pool.connections:
                pool._worker_tokens[conn] = token
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_update_invalidates_shipped_snapshots(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            # Workers hold the current token (shipped as a (path, token)
            # pair on the PR-8 map path, so no pickled blob is cached).
            assert pool._worker_tokens
            assert pool._snapshot_token is None
            v0 = sorted(serve_graph.vertices())[0]
            db.update(add_edges=[("nv9", v0, "l1")])
            assert pool._snapshot_token is None
            assert not pool._worker_tokens
        finally:
            db.close()

    def test_concurrent_updates_and_process_serving(self, serve_graph):
        """Readers on the process path while update() mutates the graph:
        every batch must match one update boundary."""
        base = serve_graph
        v0, v1 = sorted(base.vertices())[:2]
        steps = [
            ([("nv0", v0, "l1")], ()),
            ([(v1, "nv0", "l2")], ()),
            ((), [("nv0", v0, "l1")]),
        ]
        state = base.copy()
        probe = GraphDatabase.from_graph(state)
        resolved = [probe._resolve(query) for query in QUERIES]
        expected = []
        from repro.core.cpqx import CPQxIndex

        for add_edges, remove_edges in [((), ())] + steps:
            for v, u, label in add_edges:
                state.add_edge(v, u, label)
            for v, u, label in remove_edges:
                state.remove_edge(v, u, label)
            engine = CPQxIndex.build(state.copy(), k=2)
            expected.append([engine.evaluate(query) for query in resolved])
        valid_per_query = [
            {step[q] for step in expected} for q in range(len(QUERIES))
        ]

        db = GraphDatabase.from_graph(base.copy()).build_index(engine="cpqx", k=2)
        stop = threading.Event()
        violations: list[str] = []
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    batch = db.serve_batch(QUERIES, workers=2, mode="process")
                    for q, result in enumerate(batch):
                        if result.pairs() not in valid_per_query[q]:
                            violations.append(QUERIES[q])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            import time as _time

            for add_edges, remove_edges in steps:
                _time.sleep(0.05)
                db.update(add_edges=add_edges, remove_edges=remove_edges)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            db.close()
        assert not errors, errors
        assert not violations, (
            f"process readers observed non-boundary states: {set(violations)}"
        )
        final = db.serve_batch(QUERIES, workers=2, mode="process")
        for q, result in enumerate(final):
            assert result.pairs() == expected[-1][q]


# ---------------------------------------------------------------------------
# failure surfacing
# ---------------------------------------------------------------------------


class _ExplodingEngine:
    """Picklable engine whose evaluation always fails (worker-error test)."""

    name = "exploding"

    def __init__(self, graph) -> None:
        self.graph = graph

    def evaluate(self, query, stats=None, limit=None):
        raise RuntimeError("boom: injected evaluation failure")


class _SlowUnpickleEngine:
    """Picklable engine whose snapshot installs slower than the deadline
    (deadline-vs-snapshot test)."""

    name = "slow-unpickle"
    install_seconds = 0.5

    def __init__(self, graph) -> None:
        self.graph = graph

    def __setstate__(self, state):
        time.sleep(self.install_seconds)
        self.__dict__.update(state)

    def evaluate(self, query, stats=None, limit=None):
        return frozenset()


class TestFailureSurfacing:
    def test_deadline_excludes_snapshot_install(self, serve_graph):
        """The per-query deadline restarts once a (re-)shipped snapshot
        is installed (the worker's ``snapshot_ok`` ack): a snapshot
        slower than the timeout — the state every ``update()`` leaves
        behind with a big engine — must not kill-loop the pool."""
        engine = _SlowUnpickleEngine(serve_graph.copy())
        pool = ProcessServingPool(workers=1)
        try:
            outcomes = pool.serve(
                engine, session_token(engine, 1), ["q0", "q1"], timeout=0.2
            )
            assert [answers for answers, _ in outcomes] == [frozenset(), frozenset()]
            assert pool.restarts_used == 0
            assert not pool.degraded
        finally:
            pool.close()

    def test_worker_evaluation_error_becomes_failure_slot(self, serve_graph):
        """PR 7 semantics: an evaluation error costs the query (after its
        retry budget), never the pool."""
        from repro.serve import ServeFailure

        engine = _ExplodingEngine(serve_graph.copy())
        pool = ProcessServingPool(workers=2)
        try:
            outcomes = pool.serve(
                engine, session_token(engine, 1), ["q0", "q1"], retries=1
            )
            assert len(outcomes) == 2
            for index, failure in enumerate(outcomes):
                assert isinstance(failure, ServeFailure)
                assert failure.query_index == index
                assert failure.attempts == 2  # first dispatch + one retry
                assert isinstance(failure.error, ServingError)
                assert "injected evaluation failure" in str(failure.error)
                assert failure.error.query_index == index
                assert failure.error.attempts == 2
            assert not pool.closed  # the pool survived the failed batch
        finally:
            pool.close()

    def test_killed_workers_are_restarted_and_pool_self_heals(self, serve_graph):
        """PR 7 semantics: killing every worker mid-life costs restarts,
        not the batch and not the pool."""
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            for process in pool._pool.processes:
                process.terminate()
                process.join(timeout=5)
            # The next batch detects the dead workers, restarts them
            # under the budget, and still returns the serial answers —
            # on the same pool, without a session rebuild.
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            assert db._proc_pool is pool
            assert not pool.closed
            assert pool.restarts_used >= 1
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_closed_pool_refuses_to_serve(self):
        pool = ProcessServingPool(workers=1)
        pool.close()
        with pytest.raises(ServingError, match="closed"):
            pool.serve(object(), (0, 0, 0), ["q"])
        pool.close()  # idempotent

    def test_unpicklable_engine_surfaces_as_serving_error(self, serve_graph):
        """A mis-registered engine (process_servable left True while
        holding unpicklable state) must fail with guidance, not a raw
        pickling TypeError."""
        import threading as _threading

        class _Unpicklable:
            def __init__(self, graph):
                self.graph = graph
                self.lock = _threading.Lock()

            def evaluate(self, query, stats=None, limit=None):  # pragma: no cover
                return frozenset()

        engine = _Unpicklable(serve_graph.copy())
        pool = ProcessServingPool(workers=1)
        try:
            with pytest.raises(ServingError, match="process_servable"):
                pool.serve(engine, session_token(engine, 1), ["q"])
            assert pool.closed
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# mode plumbing
# ---------------------------------------------------------------------------


class TestModePlumbing:
    def test_invalid_mode_rejected(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy())
        with pytest.raises(SessionError, match="mode must be one of"):
            db.serve_batch(QUERIES, mode="fibers")

    def test_auto_routes_large_batches_to_process(self, serve_graph, monkeypatch):
        import repro.db.session as session_module

        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        chosen: list[str] = []
        original = db._serve_batch_process

        def recording(resolved, workers, limit, timeout, retries, injector):
            chosen.append("process")
            return original(resolved, workers, limit, timeout, retries, injector)

        monkeypatch.setattr(db, "_serve_batch_process", recording)
        monkeypatch.setattr(session_module.os, "cpu_count", lambda: 4)
        try:
            db.serve_batch(QUERIES * 2, workers=2, mode="auto")  # 10 >= 8
            assert chosen == ["process"]
            db.serve_batch(QUERIES, workers=2, mode="auto")  # 5 < 8
            assert chosen == ["process"]  # small batch stayed threaded
            monkeypatch.setattr(session_module.os, "cpu_count", lambda: 1)
            db.serve_batch(QUERIES * 2, workers=2, mode="auto")
            assert chosen == ["process"]  # single CPU stays threaded
        finally:
            db.close()

    def test_non_servable_spec_rejected_and_auto_falls_back(
        self, serve_graph, monkeypatch
    ):
        from repro.baselines.bfs import BFSEngine

        spec = EngineSpec(
            key="_testonly_noproc",
            display_name="NoProc",
            builder=lambda graph: BFSEngine(graph),
            uses_k=False,
            process_servable=False,
        )
        register_engine(spec)
        try:
            db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
                engine="_testonly_noproc"
            )
            with pytest.raises(SessionError, match="not process-servable"):
                db.serve_batch(QUERIES, workers=2, mode="process")
            # mode="auto" silently serves on threads instead.
            import repro.db.session as session_module

            monkeypatch.setattr(session_module.os, "cpu_count", lambda: 4)
            serial = db.execute_batch(QUERIES)
            batch = db.serve_batch(QUERIES * 2, workers=2, mode="auto")
            for index, result in enumerate(batch):
                assert result.pairs() == serial[index % len(QUERIES)].pairs()
            assert db._proc_pool is None  # no process pool was created
        finally:
            unregister_engine("_testonly_noproc")

    def test_every_builtin_engine_is_process_servable(self):
        for key in available_engines():
            assert engine_spec(key).process_servable, key

    def test_session_context_manager_closes_pool(self, serve_graph):
        with GraphDatabase.from_graph(serve_graph.copy()) as db:
            db.build_index(engine="cpqx", k=2)
            db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            assert not pool.closed
        assert pool.closed
        assert db._proc_pool is None
        # The session stays usable after close().
        assert len(db.execute_batch(QUERIES)) == len(QUERIES)


# ---------------------------------------------------------------------------
# bench + CLI plumbing
# ---------------------------------------------------------------------------


class TestServeBenchCli:
    def test_serve_bench_alias_emits_process_serving_section(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "serve-bench", "--vertices", "30", "--edges", "100",
            "--labels", "3", "--k", "2", "--repeats", "1",
            "--build-workers", "1", "--serve-threads", "2",
            "--serve-procs", "2", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        process = document["process_serving"]
        assert process["identical_answers"] is True
        assert process["workers"] == 2
        assert process["snapshot_mb"] > 0
        assert {row["workers"] for row in process["scaling"]} == {1, 2}
        assert "serve (process):" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# ResultSet.from_answers
# ---------------------------------------------------------------------------


class TestFromAnswers:
    def test_pre_materialized_and_engine_untouched(self):
        stats = ExecutionStats(lookups=3, joins=1, pairs_touched=7)
        result = ResultSet.from_answers(
            engine=None,  # consuming must never need it
            query="q",
            limit=None,
            pairs=[("a", "b"), ("b", "c")],
            stats=stats,
        )
        assert result.materialized
        assert result.pairs() == {("a", "b"), ("b", "c")}
        assert result.stats.lookups == 3
        assert result.stats.joins == 1
        assert result.stats.pairs_touched == 7


# ---------------------------------------------------------------------------
# mmap-backed shipping (PR 8): workers open the index by path
# ---------------------------------------------------------------------------


class TestMappedShipping:
    def test_ships_paths_not_pickles(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            assert pool.snapshot_ships == 0
            assert pool.map_ships == 2  # one (path, token) pair per worker
            # Path strings only — nowhere near a pickled engine.
            assert pool.shipped_bytes < 1024
            assert pool.shipped_bytes < len(snapshot_bytes(db.engine)) / 100
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_single_class_update_does_not_reship_snapshot(self, serve_graph):
        """Regression (PR 8): pre-mmap, every update() re-pickled and
        re-shipped the whole engine even when one class changed.  With
        store generations the update writes a small delta file and the
        re-ship is again just the (path, token) pair."""
        import os

        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            full_size = os.path.getsize(db._store_state.path)
            shipped_before = pool.shipped_bytes
            v0 = sorted(serve_graph.vertices())[0]
            db.update(add_edges=[("nv_delta", v0, "l1")])
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            assert pool.snapshot_ships == 0  # never a pickle, even post-update
            assert db._store_state.generation == 2  # a delta, not a rewrite
            assert os.path.getsize(db._store_state.path) < full_size / 2
            assert pool.shipped_bytes - shipped_before < 1024
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_store_serving_opt_out_falls_back_to_pickle(self, serve_graph):
        db = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        )
        try:
            db._store_serving = False
            serial = db.execute_batch(QUERIES)
            served = db.serve_batch(QUERIES, workers=2, mode="process")
            pool = db._proc_pool
            assert pool.map_ships == 0
            assert pool.snapshot_ships == 2
            for index, result in enumerate(served):
                assert result.pairs() == serial[index].pairs()
        finally:
            db.close()

    def test_unopenable_store_path_costs_the_batch_not_the_pool(self, serve_graph):
        from repro.errors import CorruptIndexError
        from repro.query.parser import parse
        from repro.serve import ServeFailure

        engine = GraphDatabase.from_graph(serve_graph.copy()).build_index(
            engine="cpqx", k=2
        ).engine
        queries = [parse(text, engine.graph.registry) for text in QUERIES]
        pool = ProcessServingPool(workers=2)
        try:
            # With no retry budget the failed map surfaces as typed
            # slots: ServingError caused by CorruptIndexError.
            outcomes = pool.serve(
                engine, session_token(engine, 1), queries,
                store_path="/nonexistent/gen.rsx", retries=0,
            )
            failures = [out for out in outcomes if isinstance(out, ServeFailure)]
            assert failures
            assert any("could not open" in str(out.error) for out in failures)
            assert any(
                any(isinstance(err, CorruptIndexError) for err in out.error.cause_chain())
                for out in failures
            )
            assert pool.map_failures >= 1
            assert not pool.closed
            assert not pool.degraded
            # With a retry budget the batch *recovers in place*: the
            # map failure demotes shipping to pickled snapshots and the
            # retried queries succeed on the same pool.
            recovered = pool.serve(
                engine, session_token(engine, 2), queries,
                store_path="/nonexistent/gen.rsx", retries=2,
            )
            assert not any(isinstance(out, ServeFailure) for out in recovered)
            assert pool.snapshot_ships >= 1
        finally:
            pool.close()
