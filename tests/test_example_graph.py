"""The running example graph Gex must satisfy every fact the paper states.

The figure itself is not machine-readable; these tests pin the
reconstruction to the explicit statements in the text (Sec. I,
Examples 3.1, 4.1–4.4) so any future edit that breaks fidelity fails
loudly.
"""

from __future__ import annotations

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.paths import label_sequences_for_pair
from repro.graph.datasets import EXAMPLE_BLOGS, EXAMPLE_USERS, example_graph
from repro.query.parser import parse
from repro.query.semantics import evaluate


@pytest.fixture(scope="module")
def gex():
    return example_graph()


@pytest.fixture(scope="module")
def index(gex):
    return CPQxIndex.build(gex, k=2)


class TestShape:
    def test_twelve_users_two_blogs(self, gex):
        assert gex.num_vertices == 14
        for user in EXAMPLE_USERS:
            assert gex.has_vertex(user)
        for blog in EXAMPLE_BLOGS:
            assert gex.has_vertex(blog)

    def test_fourteen_follows_twelve_visits(self, gex):
        f = gex.registry.id_of("f")
        v = gex.registry.id_of("v")
        by_label = {}
        for _, _, label in gex.triples():
            by_label[label] = by_label.get(label, 0) + 1
        assert by_label[f] == 14
        assert by_label[v] == 12

    def test_visits_point_at_blogs_only(self, gex):
        v = gex.registry.id_of("v")
        for src, dst, label in gex.triples():
            if label == v:
                assert dst in EXAMPLE_BLOGS
                assert src in EXAMPLE_USERS


class TestIntroduction:
    def test_triad_query_answer(self, gex):
        """Sec. I: the conjunction of ff and f⁻¹ finds exactly the triad."""
        query = parse("(f . f) & f^-", gex.registry)
        assert evaluate(query, gex) == {
            ("sue", "zoe"), ("joe", "sue"), ("zoe", "joe"),
        }

    def test_triad_via_index(self, index, gex):
        query = parse("(f . f) & f^-", gex.registry)
        assert index.evaluate(query) == {
            ("sue", "zoe"), ("joe", "sue"), ("zoe", "joe"),
        }


class TestExample31:
    """Example 3.1's membership facts about L≤2."""

    def test_p2_membership(self, gex):
        from repro.core.paths import reachable_pairs

        pairs = reachable_pairs(gex, 2)
        assert ("ada", "ada") in pairs
        assert ("joe", "sue") in pairs

    def test_ada_ada_sequences(self, gex):
        f, v = gex.registry.id_of("f"), gex.registry.id_of("v")
        seqs = label_sequences_for_pair(gex, "ada", "ada", 2)
        assert {(f, -f), (v, -v), (-f, f)} <= seqs

    def test_joe_sue_sequences(self, gex):
        f, v = gex.registry.id_of("f"), gex.registry.id_of("v")
        seqs = label_sequences_for_pair(gex, "joe", "sue", 2)
        assert {(-f,), (f, f), (v, -v)} <= seqs


class TestExample41:
    """Example 4.1: the lookup/conjunction walk-through."""

    def test_conjunction_prunes_to_single_intersection(self, index, gex):
        f = gex.registry.id_of("f")
        classes_ff = set(index.lookup((f, f)).classes)
        classes_finv = set(index.lookup((-f,)).classes)
        both = classes_ff & classes_finv
        # expanding the intersection must yield exactly the triad pairs
        pairs = index.expand_classes(frozenset(both))
        assert pairs == {("sue", "zoe"), ("joe", "sue"), ("zoe", "joe")}


class TestExample42:
    """Example 4.2: (ada,tim) and (ada,tom) are CPQ2-equivalent."""

    def test_same_class(self, index):
        assert index.class_of(("ada", "tim")) == index.class_of(("ada", "tom"))

    def test_class_label_set(self, index, gex):
        f, v = gex.registry.id_of("f"), gex.registry.id_of("v")
        class_id = index.class_of(("ada", "tim"))
        assert index.sequences_of_class(class_id) == frozenset({(f,), (v, -v)})

    def test_unconnected_pairs_not_stored(self, index, gex):
        """Sec. IV-B: pairs without a ≤k path are not in CPQx."""
        assert label_sequences_for_pair(gex, "sue", "jay", 2) == frozenset()
        assert index.class_of(("sue", "jay")) is None

    def test_pair_and_class_counts_near_paper(self, index):
        """Paper: 196 possible pairs, 150 connected, 30 classes.

        Fig. 3's 30 classes include two that CPQx does not store (the
        pure-``{id}`` class and the empty-``{}`` class); our 28 stored
        classes plus those two match the figure exactly.  The stored pair
        count lands within a few pairs of the paper's 150 (the figure's
        exact edge set is not machine-readable).
        """
        assert index.num_classes == 28
        assert index.num_pairs in range(140, 155)

    def test_figure3_triad_edge_class(self, index, gex):
        """Fig. 3's class c=7: the three triad edges share one class with
        label set {f, vv⁻¹, f⁻¹f⁻¹}."""
        f, v = gex.registry.id_of("f"), gex.registry.id_of("v")
        class_id = index.class_of(("sue", "joe"))
        assert set(index.pairs_of_class(class_id)) == {
            ("joe", "zoe"), ("sue", "joe"), ("zoe", "sue"),
        }
        assert index.sequences_of_class(class_id) == frozenset({
            (f,), (v, -v), (-f, -f),
        })

    def test_figure3_empty_class_pair(self, index, gex):
        """Fig. 3's c=9: (ada, aya) has no path of length ≤ 2."""
        assert label_sequences_for_pair(gex, "ada", "aya", 2) == frozenset()
        assert index.class_of(("ada", "aya")) is None

    def test_spec_bisimulation_matches_constructed_class_count(self, gex):
        """The literal Def. 4.1 partition also lands at 28 on Gex."""
        from repro.core.bisimulation import bisimulation_classes

        assert len(bisimulation_classes(gex, 2)) == 28


class TestExample44:
    """Example 4.4: deleting (ada, tim, f) keeps (ada,123) reachable via fv."""

    def test_alternative_path_after_deletion(self, gex):
        graph = gex.copy()
        index = CPQxIndex.build(graph, k=2)
        query = parse("f . v", graph.registry)
        assert ("ada", "123") in index.evaluate(query)
        index.delete_edge("ada", "tim", "f")
        assert ("ada", "123") in index.evaluate(query)
        # and the deleted edge's own relation shrank
        assert ("ada", "tim") not in index.evaluate(parse("f", graph.registry))
