"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphError,
        errors.UnknownVertexError,
        errors.UnknownLabelError,
        errors.QuerySyntaxError,
        errors.QueryDiameterError,
        errors.IndexBuildError,
        errors.MaintenanceError,
        errors.DatasetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_persistence_error_in_hierarchy(self):
        from repro.core.persistence import PersistenceError

        assert issubclass(PersistenceError, errors.ReproError)

    def test_unknown_vertex_payload(self):
        exc = errors.UnknownVertexError(("u", 3))
        assert exc.vertex == ("u", 3)
        assert "('u', 3)" in str(exc)

    def test_unknown_label_payload(self):
        exc = errors.UnknownLabelError("miss")
        assert exc.label == "miss"

    def test_syntax_error_position(self):
        exc = errors.QuerySyntaxError("bad", position=4)
        assert "position 4" in str(exc)
        assert errors.QuerySyntaxError("bad").position is None


class TestStructuredContext:
    """PR 7: serving/build errors carry their failure domain as attributes."""

    def test_serving_error_context_rendered_and_typed(self):
        exc = errors.ServingError(
            "worker exited unexpectedly", worker_id=1, query_index=7, attempts=3
        )
        assert exc.worker_id == 1
        assert exc.query_index == 7
        assert exc.attempts == 3
        assert "[worker=1, query=7, attempts=3]" in str(exc)

    def test_serving_error_context_optional(self):
        exc = errors.ServingError("pool is closed")
        assert exc.worker_id is None
        assert exc.query_index is None
        assert exc.attempts is None
        assert str(exc) == "pool is closed"  # no empty [] suffix

    def test_serving_error_partial_context(self):
        exc = errors.ServingError("boom", query_index=2)
        assert "[query=2]" in str(exc)
        assert "worker" not in str(exc)

    def test_query_timeout_error_is_serving_error(self):
        exc = errors.QueryTimeoutError(
            timeout=1.5, worker_id=0, query_index=3, attempts=2
        )
        assert isinstance(exc, errors.ServingError)
        assert exc.timeout == 1.5
        assert "(1.5s)" in str(exc)
        assert "[worker=0, query=3, attempts=2]" in str(exc)

    def test_index_build_error_shard_context(self):
        exc = errors.IndexBuildError("shard failed", shard=4, attempts=2)
        assert exc.shard == 4
        assert exc.attempts == 2
        assert "[shard=4, attempts=2]" in str(exc)

    def test_index_build_error_plain_message_unchanged(self):
        assert str(errors.IndexBuildError("k must be >= 1")) == "k must be >= 1"

    def test_corrupt_index_error_hierarchy_and_payload(self):
        exc = errors.CorruptIndexError("/tmp/idx.json", "checksum mismatch")
        assert isinstance(exc, errors.PersistenceError)
        assert isinstance(exc, errors.ReproError)
        assert exc.path == "/tmp/idx.json"
        assert exc.reason == "checksum mismatch"
        assert "corrupt index file: checksum mismatch" in str(exc)

    def test_cause_chain_follows_explicit_causes(self):
        root = ValueError("root cause")
        mid = errors.ServingError("evaluation failed", worker_id=2)
        mid.__cause__ = root
        top = errors.ServingError("batch failed")
        top.__cause__ = mid
        assert top.cause_chain() == [top, mid, root]

    def test_cause_chain_falls_back_to_context(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError:
                raise errors.ServingError("outer")  # noqa: B904 - context test
        except errors.ServingError as exc:
            chain = exc.cause_chain()
        assert len(chain) == 2
        assert isinstance(chain[1], KeyError)

    def test_cause_chain_is_cycle_safe(self):
        a = errors.ServingError("a")
        b = errors.ServingError("b")
        a.__cause__ = b
        b.__cause__ = a
        assert a.cause_chain() == [a, b]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name) is not None, name

    def test_query_exports_resolve(self):
        from repro import query

        for name in query.__all__:
            assert getattr(query, name) is not None, name

    def test_plan_exports_resolve(self):
        from repro import plan

        for name in plan.__all__:
            assert getattr(plan, name) is not None, name

    def test_baselines_exports_resolve(self):
        from repro import baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None, name

    def test_graph_exports_resolve(self):
        from repro import graph

        for name in graph.__all__:
            assert getattr(graph, name) is not None, name

    def test_readme_quickstart_api_works(self):
        """The README's four-line quickstart must keep working."""
        g = repro.LabeledDigraph.from_triples([
            ("a", "b", "f"), ("b", "c", "f"), ("c", "a", "f"),
        ])
        index = repro.CPQxIndex.build(g, k=2)
        answers = index.evaluate(repro.parse("(f . f . f) & id", g.registry))
        assert answers == {("a", "a"), ("b", "b"), ("c", "c")}
