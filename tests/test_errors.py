"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphError,
        errors.UnknownVertexError,
        errors.UnknownLabelError,
        errors.QuerySyntaxError,
        errors.QueryDiameterError,
        errors.IndexBuildError,
        errors.MaintenanceError,
        errors.DatasetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_persistence_error_in_hierarchy(self):
        from repro.core.persistence import PersistenceError

        assert issubclass(PersistenceError, errors.ReproError)

    def test_unknown_vertex_payload(self):
        exc = errors.UnknownVertexError(("u", 3))
        assert exc.vertex == ("u", 3)
        assert "('u', 3)" in str(exc)

    def test_unknown_label_payload(self):
        exc = errors.UnknownLabelError("miss")
        assert exc.label == "miss"

    def test_syntax_error_position(self):
        exc = errors.QuerySyntaxError("bad", position=4)
        assert "position 4" in str(exc)
        assert errors.QuerySyntaxError("bad").position is None


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name) is not None, name

    def test_query_exports_resolve(self):
        from repro import query

        for name in query.__all__:
            assert getattr(query, name) is not None, name

    def test_plan_exports_resolve(self):
        from repro import plan

        for name in plan.__all__:
            assert getattr(plan, name) is not None, name

    def test_baselines_exports_resolve(self):
        from repro import baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None, name

    def test_graph_exports_resolve(self):
        from repro import graph

        for name in graph.__all__:
            assert getattr(graph, name) is not None, name

    def test_readme_quickstart_api_works(self):
        """The README's four-line quickstart must keep working."""
        g = repro.LabeledDigraph.from_triples([
            ("a", "b", "f"), ("b", "c", "f"), ("c", "a", "f"),
        ])
        index = repro.CPQxIndex.build(g, k=2)
        answers = index.evaluate(repro.parse("(f . f . f) & id", g.registry))
        assert answers == {("a", "a"), ("b", "b"), ("c", "c")}
