"""Unit tests for the benchmark harness (timing, reporting, runner)."""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentResult, format_cell, format_table, speedup
from repro.bench.runner import (
    ALL_METHODS,
    build_engine,
    prepare_dataset,
)
from repro.bench.timing import Timing, time_call, time_queries
from repro.errors import DatasetError
from repro.graph.generators import random_graph


@pytest.fixture()
def g():
    return random_graph(25, 70, 3, seed=9)


class TestTiming:
    def test_time_call_counts(self):
        calls = []
        timing = time_call(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert timing.repeats == 3
        assert timing.best <= timing.mean
        assert timing.total >= timing.best * 3 * 0.5

    def test_time_call_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_time_queries_averages(self):
        seen = []
        timing = time_queries(seen.append, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert timing.repeats == 3

    def test_time_queries_empty(self):
        timing = time_queries(lambda q: None, [])
        assert timing == Timing(repeats=0, total=0.0, best=0.0, mean=0.0)

    def test_format_mean(self):
        assert "e" in Timing(1, 0.001, 0.001, 0.001).format_mean()


class TestReporting:
    def test_format_cell_floats(self):
        assert format_cell(0.0001) == "1.000e-04"
        assert format_cell(1.5) == "1.5"
        assert format_cell(0.0) == "0"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        table = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_experiment_result_render(self):
        result = ExperimentResult("Fig. X", "demo", ["col"], [[1], [2]])
        text = result.render()
        assert "Fig. X" in text and "demo" in text

    def test_column_and_rows_where(self):
        result = ExperimentResult(
            "T", "t", ["method", "time"], [["A", 1.0], ["B", 2.0], ["A", 3.0]]
        )
        assert result.column("time") == [1.0, 2.0, 3.0]
        assert result.rows_where("method", "A") == [["A", 1.0], ["A", 3.0]]

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")


class TestBuildEngine:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_methods_constructible(self, g, method):
        engine = build_engine(method, g, k=2, interests=frozenset({(1, 2)}))
        from repro.query.ast import EdgeLabel

        answer = engine.evaluate(EdgeLabel(1) >> EdgeLabel(2))
        assert answer == g.sequence_relation((1, 2))

    def test_unknown_method(self, g):
        with pytest.raises(DatasetError):
            build_engine("nope", g)


class TestPrepareDataset:
    def test_workload_and_interests(self, g):
        prepared = prepare_dataset("toy", g, ("C2", "S"), 3, seed=1)
        assert set(prepared.workload) == {"C2", "S"}
        assert prepared.interests
        for seq in prepared.interests:
            assert 1 <= len(seq) <= 2
        assert len(prepared.all_queries()) == len(prepared.workload["C2"]) + len(
            prepared.workload["S"]
        )

    def test_engine_cache(self, g):
        prepared = prepare_dataset("toy", g, ("C2",), 2, seed=1)
        first = prepared.engine("BFS")
        second = prepared.engine("BFS")
        assert first is second
        different_k = prepared.engine("CPQx", k=1)
        assert different_k.k == 1

    def test_deterministic_workload(self, g):
        a = prepare_dataset("toy", g, ("S",), 3, seed=4)
        b = prepare_dataset("toy", g, ("S",), 3, seed=4)
        assert [wq.labels for wq in a.workload["S"]] == [
            wq.labels for wq in b.workload["S"]
        ]


class TestEnvironmentKnobs:
    def test_bench_scale_env(self, monkeypatch):
        from repro.bench.runner import bench_datasets, bench_queries, bench_scale

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "7")
        assert bench_queries() == 7
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "robots, yago")
        assert bench_datasets(("x",)) == ("robots", "yago")
        monkeypatch.delenv("REPRO_BENCH_DATASETS")
        assert bench_datasets(("x",)) == ("x",)
