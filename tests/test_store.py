"""Tests for the zero-copy columnar store (mmap-backed snapshots, PR 8)."""

from __future__ import annotations

import json
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.pairset import PairSet
from repro.core.parallel import index_fingerprint
from repro.core.persistence import load_index, save_index
from repro.db import GraphDatabase
from repro.errors import CorruptIndexError, PersistenceError
from repro.graph.generators import random_graph
from repro.graph.interner import VertexInterner
from repro.graph.io import edges_from_strings
from repro.graph.schema import citation_schema
from repro.query.parser import parse
from repro.query.workloads import random_template_queries
from repro.store import (
    MAX_CHAIN,
    PAGE_SIZE,
    STORE_MAGIC,
    open_store,
    write_generation,
    write_store,
)
from repro.store.format import read_header


def build_index(seed: int = 21) -> CPQxIndex:
    return CPQxIndex.build(random_graph(20, 55, 3, seed=seed), k=2)


class TestRoundTrip:
    def test_fingerprint_and_structure_identical(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        assert isinstance(opened, CPQxIndex)
        assert index_fingerprint(opened) == index_fingerprint(index)
        assert opened.k == index.k
        assert opened.num_classes == index.num_classes
        assert opened.num_pairs == index.num_pairs
        assert opened.graph == index.graph

    def test_columns_come_back_mapped(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        assert opened._ic2p and all(
            column.is_mapped() for column in opened._ic2p.values()
        )

    def test_queries_identical_after_reopen(self, tmp_path):
        graph = random_graph(20, 55, 3, seed=22)
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        for template in ("C2", "S", "Ti"):
            for wq in random_template_queries(graph, template, count=2, seed=23):
                assert opened.evaluate(wq.query) == index.evaluate(wq.query)

    def test_file_is_page_aligned(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        with open(path, "rb") as handle:
            blob = handle.read()
        header = read_header(blob, path)
        assert header.meta_off == PAGE_SIZE
        assert header.cols_off % PAGE_SIZE == 0
        assert blob.startswith(STORE_MAGIC)

    def test_str_and_tuple_vertices(self, tmp_path):
        graph = citation_schema().generate(60, seed=3)
        index = CPQxIndex.build(graph, k=1)
        path = tmp_path / "gmark.rsx"
        write_store(index, path)
        opened = open_store(path)
        assert opened.graph == graph
        assert index_fingerprint(opened) == index_fingerprint(index)

    def test_vertex_data_preserved(self, tmp_path):
        graph = edges_from_strings(["0 1 a"])
        graph.set_vertex_data(0, name="zero", weight=3)
        index = CPQxIndex.build(graph, k=1)
        path = tmp_path / "data.rsx"
        write_store(index, path)
        assert open_store(path).graph.vertex_data(0) == {"name": "zero", "weight": 3}

    def test_interest_aware_interests_preserved(self, tmp_path):
        graph = random_graph(18, 50, 3, seed=24)
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2), (2, -1)})
        path = tmp_path / "ia.rsx"
        write_store(index, path)
        opened = open_store(path)
        assert isinstance(opened, InterestAwareIndex)
        assert opened.interests == index.interests
        assert index_fingerprint(opened) == index_fingerprint(index)

    def test_load_index_dispatches_on_magic(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = load_index(path)
        assert index_fingerprint(opened) == index_fingerprint(index)

    def test_maintenance_works_after_reopen(self, tmp_path):
        graph = edges_from_strings(["0 1 a", "1 2 a"])
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        opened.insert_edge(2, 0, "a")
        query = parse("(a . a . a) & id", opened.graph.registry)
        assert opened.evaluate(query) == {(0, 0), (1, 1), (2, 2)}

    def test_mapped_engine_pickles_to_owned(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        clone = pickle.loads(pickle.dumps(opened))
        assert index_fingerprint(clone) == index_fingerprint(index)
        assert not any(column.is_mapped() for column in clone._ic2p.values())

    def test_open_survives_unlinked_file(self, tmp_path):
        # POSIX: the mapping pins the pages after the name is gone.
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        opened = open_store(path)
        os.unlink(path)
        assert opened.num_pairs == index.num_pairs
        assert index_fingerprint(opened) == index_fingerprint(index)


class TestLegacyFormats:
    # The JSON formats re-intern vertices on load, so packed codes (and
    # fingerprints) legitimately differ; equality is checked at the
    # structure and answer level, as in test_persistence.

    def test_checksummed_json_still_loads(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CPQxIndex)
        assert loaded.num_classes == index.num_classes
        assert loaded.num_pairs == index.num_pairs
        assert loaded.graph == index.graph

    def test_headerless_legacy_json_still_loads(self, tmp_path):
        # Pre-PR 7 files are bare JSON documents with no checksum line.
        graph = random_graph(20, 55, 3, seed=22)
        index = CPQxIndex.build(graph, k=2)
        path = tmp_path / "index.json"
        save_index(index, path)
        with open(path, "rb") as handle:
            blob = handle.read()
        legacy = tmp_path / "legacy.json"
        legacy.write_bytes(blob.split(b"\n", 1)[1])
        assert json.loads(legacy.read_bytes())["format"] == "repro-index"
        loaded = load_index(legacy)
        assert loaded.num_pairs == index.num_pairs
        for wq in random_template_queries(graph, "C2", count=3, seed=23):
            assert loaded.evaluate(wq.query) == index.evaluate(wq.query)


def _corrupt(path, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestCorruption:
    @pytest.fixture()
    def stored(self, tmp_path):
        index = build_index()
        path = tmp_path / "index.rsx"
        write_store(index, path)
        return path

    def test_truncated_header(self, stored):
        with open(stored, "r+b") as handle:
            handle.truncate(40)
        with pytest.raises(CorruptIndexError):
            open_store(stored)

    def test_truncated_columns(self, stored):
        with open(stored, "r+b") as handle:
            handle.truncate(os.path.getsize(stored) - 16)
        with pytest.raises(CorruptIndexError):
            open_store(stored)

    def test_bit_flip_in_meta(self, stored):
        _corrupt(stored, PAGE_SIZE + 10)
        with pytest.raises(CorruptIndexError):
            open_store(stored)

    def test_bit_flip_in_columns(self, stored):
        _corrupt(stored, os.path.getsize(stored) - 5)
        with pytest.raises(CorruptIndexError):
            open_store(stored)
        # verify=False trades that scan for open latency, by contract.
        open_store(stored, verify=False)

    def test_wrong_magic(self, stored):
        _corrupt(stored, 0)
        with pytest.raises(CorruptIndexError):
            open_store(stored)
        with pytest.raises(CorruptIndexError):
            load_index(stored)

    def test_unsupported_version(self, stored):
        with open(stored, "r+b") as handle:
            handle.seek(16)
            handle.write((99).to_bytes(4, "little"))
        with pytest.raises(PersistenceError):
            open_store(stored)

    def test_missing_parent_generation(self, tmp_path):
        db = GraphDatabase.from_graph(random_graph(20, 55, 3, seed=21))
        db.build_index(engine="cpqx", k=2)
        state = write_generation(db.engine, tmp_path)
        db.update(add_edges=[(0, 1, "l1")])
        state = write_generation(db.engine, tmp_path, state)
        assert state.generation == 2
        os.unlink(tmp_path / "gen-000001.rsx")
        with pytest.raises(CorruptIndexError):
            open_store(state.path)


class TestGenerations:
    def test_delta_is_small_and_merges_newest_wins(self, tmp_path):
        db = GraphDatabase.from_graph(random_graph(60, 400, 3, seed=9))
        db.build_index(engine="cpqx", k=2)
        state = write_generation(db.engine, tmp_path)
        full_size = os.path.getsize(state.path)
        db.update(add_edges=[(0, 1, "l1")])
        state = write_generation(db.engine, tmp_path, state)
        assert state.generation == 2
        assert state.chain == 2
        assert os.path.getsize(state.path) < full_size / 2
        opened = open_store(state.path)
        assert index_fingerprint(opened) == index_fingerprint(db.engine)

    def test_unchanged_engine_reuses_state(self, tmp_path):
        db = GraphDatabase.from_graph(random_graph(20, 55, 3, seed=21))
        db.build_index(engine="cpqx", k=2)
        state = write_generation(db.engine, tmp_path)
        files = set(os.listdir(tmp_path))
        again = write_generation(db.engine, tmp_path, state)
        assert again is state
        assert set(os.listdir(tmp_path)) == files

    def test_chain_compacts_after_max_chain(self, tmp_path):
        db = GraphDatabase.from_graph(random_graph(20, 55, 3, seed=21))
        db.build_index(engine="cpqx", k=2)
        state = write_generation(db.engine, tmp_path)
        for step in range(MAX_CHAIN + 1):
            db.update(add_edges=[(step, step + 1, "l1")])
            state = write_generation(db.engine, tmp_path, state)
        assert state.chain < state.generation  # at least one compaction
        opened = open_store(state.path)
        assert index_fingerprint(opened) == index_fingerprint(db.engine)
        assert opened._store_state.generation == state.generation

    def test_opened_state_continues_the_chain(self, tmp_path):
        db = GraphDatabase.from_graph(random_graph(20, 55, 3, seed=21))
        db.build_index(engine="cpqx", k=2)
        state = write_generation(db.engine, tmp_path)
        opened = open_store(state.path)
        resumed = write_generation(opened, tmp_path, opened._store_state)
        assert resumed is opened._store_state  # nothing changed since the write
        opened.insert_edge(0, 1, "l1")
        resumed = write_generation(opened, tmp_path, opened._store_state)
        assert resumed.generation == 2
        reopened = open_store(resumed.path)
        assert index_fingerprint(reopened) == index_fingerprint(opened)


#: Small id universe so random pair sets collide often.
ids = st.integers(min_value=0, max_value=30)
pair_sets = st.sets(st.tuples(ids, ids), max_size=80)


def _mapped_twin(owned: PairSet, interner: VertexInterner) -> PairSet:
    """A mapped PairSet with the same codes, built from plain bytes."""
    view = memoryview(owned.codes.tobytes()).cast("q")
    return PairSet.from_mapped(view, interner)


class TestMappedPairSet:
    @settings(max_examples=60, deadline=None)
    @given(pair_sets, pair_sets)
    def test_mapped_equals_owned_under_algebra(self, left, right):
        interner = VertexInterner(range(31))
        owned_l = PairSet.from_vertex_pairs(left, interner)
        owned_r = PairSet.from_vertex_pairs(right, interner)
        mapped_l = _mapped_twin(owned_l, interner)
        mapped_r = _mapped_twin(owned_r, interner)
        assert mapped_l.is_mapped()
        assert mapped_l == owned_l
        assert mapped_l.to_set() == owned_l.to_set()
        assert len(mapped_l) == len(owned_l)
        for op in ("intersection", "union", "difference"):
            expected = getattr(owned_l, op)(owned_r)
            assert getattr(mapped_l, op)(mapped_r) == expected
            assert getattr(mapped_l, op)(owned_r) == expected
            assert getattr(owned_l, op)(mapped_r) == expected
        assert mapped_l.compose(mapped_r) == owned_l.compose(owned_r)
        assert mapped_l.loops() == owned_l.loops()

    @settings(max_examples=40, deadline=None)
    @given(pair_sets, st.tuples(ids, ids))
    def test_mapped_copy_on_write(self, pairs, probe):
        interner = VertexInterner(range(31))
        owned = PairSet.from_vertex_pairs(pairs, interner)
        mapped = _mapped_twin(owned, interner)
        code = interner.intern(probe[0]) << 32 | interner.intern(probe[1])
        assert mapped.contains_code(code) == owned.contains_code(code)
        assert mapped.with_code(code) == owned.with_code(code)
        if owned.contains_code(code):
            assert mapped.without_code(code) == owned.without_code(code)
        else:
            with pytest.raises(KeyError):
                mapped.without_code(code)
        # The mapped original is untouched by either derivation.
        assert mapped == owned

    def test_from_mapped_rejects_wrong_format(self):
        interner = VertexInterner(range(4))
        with pytest.raises(ValueError):
            PairSet.from_mapped(memoryview(b"\x00" * 8), interner)

    def test_mapped_pickle_round_trip(self):
        interner = VertexInterner(range(8))
        owned = PairSet.from_vertex_pairs({(1, 2), (3, 4)}, interner)
        mapped = _mapped_twin(owned, interner)
        clone = pickle.loads(pickle.dumps(mapped))
        assert clone == owned
        assert not clone.is_mapped()
