"""End-to-end life-cycle integration: the full loop a deployment runs.

build → save → load → maintain (edges, vertices, labels, interests) →
verify → query, with answers checked against the reference semantics at
every stage.  This is the composition surface where subsystem bugs hide.
"""

from __future__ import annotations

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.persistence import load_index, save_index
from repro.core.validate import verify_index
from repro.graph.generators import random_graph
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


def _workload(graph, seed):
    queries = []
    for template in ("C2", "T", "S", "Ti", "C4"):
        queries.extend(
            wq.query
            for wq in random_template_queries(graph, template, count=2, seed=seed)
        )
    return queries


class TestCpqxLifecycle:
    def test_full_cycle(self, tmp_path):
        graph = random_graph(22, 60, 3, seed=61)
        index = CPQxIndex.build(graph.copy(), k=2)

        # stage 1: persist and reload
        path = tmp_path / "stage1.json"
        save_index(index, path)
        index = load_index(path)
        assert verify_index(index).ok

        # stage 2: graph maintenance of all kinds
        triples = sorted(index.graph.triples(), key=repr)
        index.delete_edge(*triples[0])
        index.insert_edge(21, 2, 1)
        index.change_edge_label(*triples[5], triples[5][2] % 3 + 1)
        index.delete_vertex(7)
        index.insert_vertex("fresh", edges=[(0, "fresh", 2), ("fresh", 3, 1)])
        assert verify_index(index).ok

        # stage 3: answers still exact after the whole journey
        for query in _workload(index.graph, seed=61):
            assert index.evaluate(query) == reference(query, index.graph)

        # stage 4: persist the maintained index and reload again
        path2 = tmp_path / "stage2.json"
        save_index(index, path2)
        reloaded = load_index(path2)
        assert verify_index(reloaded).ok
        for query in _workload(reloaded.graph, seed=61):
            assert reloaded.evaluate(query) == reference(query, reloaded.graph)


class TestIaCpqxLifecycle:
    def test_full_cycle(self, tmp_path):
        graph = random_graph(20, 55, 3, seed=62)
        index = InterestAwareIndex.build(
            graph.copy(), k=2, interests={(1, 2), (2, -1)}
        )

        path = tmp_path / "ia.json"
        save_index(index, path)
        index = load_index(path)
        assert verify_index(index).ok

        # interest churn + graph churn interleaved
        index.delete_interest((1, 2))
        index.insert_edge(19, 3, 2)
        index.insert_interest((2, 2))
        triples = sorted(index.graph.triples(), key=repr)
        index.delete_edge(*triples[2])
        index.insert_interest((1, 2))
        assert verify_index(index).ok

        for query in _workload(index.graph, seed=62):
            assert index.evaluate(query) == reference(query, index.graph)

    def test_optimizer_survives_lifecycle(self, tmp_path):
        from repro.plan.optimizer import enable_optimizer

        graph = random_graph(18, 50, 3, seed=63)
        index = InterestAwareIndex.build(graph.copy(), k=2, interests={(1, 2)})
        enable_optimizer(index)
        index.insert_edge(17, 4, 1)
        for query in _workload(index.graph, seed=63):
            assert index.evaluate(query) == reference(query, index.graph)


class TestSeriesRendering:
    def test_render_series(self):
        from repro.bench.reporting import ExperimentResult, render_series

        result = ExperimentResult(
            "Fig. X", "demo", ["k", "template", "time"],
            [[1, "S", 1e-5], [2, "S", 1e-6], [1, "C4", 1e-4], [2, "C4", 2e-4]],
        )
        chart = render_series(result, x="k", y="time", group_by="template")
        assert "S:" in chart and "C4:" in chart
        assert "#" in chart

    def test_render_series_empty(self):
        from repro.bench.reporting import ExperimentResult, render_series

        result = ExperimentResult("Fig. X", "demo", ["k", "t", "time"], [])
        assert render_series(result, "k", "time", "t") == "(no data)"
