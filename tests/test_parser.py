"""Unit tests for the CPQ text parser."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.graph.labels import LabelRegistry
from repro.query.ast import Conjunction, EdgeLabel, ID, Join, label
from repro.query.parser import parse


class TestAtoms:
    def test_plain_label(self):
        assert parse("f") == label("f")

    def test_identity(self):
        assert parse("id") is ID

    def test_inverse_ascii(self):
        assert parse("f^-") == label("f").inverse()

    def test_inverse_unicode(self):
        assert parse("f⁻¹") == label("f").inverse()
        assert parse("f⁻") == label("f").inverse()

    def test_identity_has_no_inverse(self):
        with pytest.raises(QuerySyntaxError):
            parse("id^-")


class TestOperators:
    def test_join_ascii_dot(self):
        q = parse("a . b")
        assert q == label("a") >> label("b")

    def test_join_unicode(self):
        assert parse("a ∘ b") == label("a") >> label("b")

    def test_conjunction_ascii(self):
        assert parse("a & b") == label("a") & label("b")

    def test_conjunction_unicode(self):
        assert parse("a ∩ b") == label("a") & label("b")

    def test_join_binds_tighter_than_conjunction(self):
        q = parse("a . b & c")
        assert isinstance(q, Conjunction)
        assert isinstance(q.left, Join)

    def test_left_associativity(self):
        q = parse("a . b . c")
        assert q == (label("a") >> label("b")) >> label("c")
        q = parse("a & b & c")
        assert q == (label("a") & label("b")) & label("c")

    def test_parentheses_override(self):
        q = parse("a . (b & c)")
        assert isinstance(q, Join)
        assert isinstance(q.right, Conjunction)


class TestPaperQueries:
    def test_triad(self):
        q = parse("(f . f) & f^-")
        assert q == (label("f") >> label("f")) & label("f").inverse()

    def test_figure2_query(self):
        """[(l1∘l2∘l3) ∩ (l4∘l5)] ∩ id from Fig. 2."""
        q = parse("((l1 . l2 . l3) & (l4 . l5)) & id")
        assert isinstance(q, Conjunction)
        assert q.right is ID
        inner = q.left
        assert isinstance(inner, Conjunction)
        assert inner.left.diameter() == 3
        assert inner.right.diameter() == 2


class TestResolution:
    def test_parse_with_registry_resolves(self):
        registry = LabelRegistry(["f"])
        q = parse("f . f^-", registry)
        assert q == EdgeLabel(1) >> EdgeLabel(-1)

    def test_parse_with_registry_unknown_label(self):
        from repro.errors import UnknownLabelError

        with pytest.raises(UnknownLabelError):
            parse("nope", LabelRegistry(["f"]))


class TestErrors:
    @pytest.mark.parametrize("text", [
        "", "(", ")", "a .", ". a", "a &", "(a", "a)", "a b", "a . . b", "&",
    ])
    def test_malformed(self, text):
        with pytest.raises(QuerySyntaxError):
            parse(text)

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            parse("a @ b")

    def test_error_carries_position(self):
        try:
            parse("a . !")
        except QuerySyntaxError as exc:
            assert exc.position is not None
        else:  # pragma: no cover
            pytest.fail("expected QuerySyntaxError")
