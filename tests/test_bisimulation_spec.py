"""Tests of the literal Definition 4.1 spec and Theorem 4.1.

These exercise the paper's *theory*: the recursive k-path-bisimulation
definition, its equivalence-relation structure, and the
indistinguishability theorem that justifies the whole index design.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bisimulation import bisimulation_classes, k_path_bisimilar
from repro.core.paths import label_sequences_for_pair, reachable_pairs
from repro.graph.digraph import LabeledDigraph
from repro.graph.io import edges_from_strings
from repro.graph.labels import LabelRegistry
from repro.query.ast import CPQ, Conjunction, EdgeLabel, ID, Join
from repro.query.semantics import evaluate as reference

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def tiny_graphs(draw) -> LabeledDigraph:
    registry = LabelRegistry(["a", "b"])
    graph = LabeledDigraph(registry)
    for v in range(5):
        graph.add_vertex(v)
    for _ in range(draw(st.integers(1, 10))):
        graph.add_edge(
            draw(st.integers(0, 4)), draw(st.integers(0, 4)), draw(st.integers(1, 2))
        )
    return graph


@st.composite
def bounded_queries(draw, max_depth: int = 2) -> CPQ:
    if max_depth == 0:
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return ID
        return EdgeLabel(draw(st.integers(1, 2)) * (1 if choice < 3 else -1))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(bounded_queries(max_depth=0))
    left = draw(bounded_queries(max_depth=max_depth - 1))
    right = draw(bounded_queries(max_depth=max_depth - 1))
    return Join(left, right) if kind == 1 else Conjunction(left, right)


class TestDefinitionBasics:
    def test_reflexive(self):
        g = edges_from_strings(["0 1 a", "1 2 b"])
        for pair in reachable_pairs(g, 2):
            assert k_path_bisimilar(g, pair, pair, 2)

    def test_loop_condition_separates(self):
        g = edges_from_strings(["0 0 a", "1 2 a"])
        assert not k_path_bisimilar(g, (0, 0), (1, 2), 0)

    def test_k0_only_checks_loops(self):
        g = edges_from_strings(["0 1 a", "2 3 b"])
        assert k_path_bisimilar(g, (0, 1), (2, 3), 0)  # both non-loops

    def test_k1_checks_edge_labels(self):
        g = edges_from_strings(["0 1 a", "2 3 b"])
        assert not k_path_bisimilar(g, (0, 1), (2, 3), 1)
        g2 = edges_from_strings(["0 1 a", "2 3 a"])
        assert k_path_bisimilar(g2, (0, 1), (2, 3), 1)

    def test_k2_midpoint_structure(self):
        """Same L≤2 sets, different midpoint sharing → not bisimilar."""
        g = edges_from_strings([
            "s1 m1 a", "m1 t1 b", "m1 t1 c",
            "s2 m2 a", "m2 t2 b", "s2 m3 a", "m3 t2 c",
        ])
        assert not k_path_bisimilar(g, ("s1", "t1"), ("s2", "t2"), 2)

    def test_symmetric_cycle_pairs_bisimilar(self):
        from repro.graph.generators import cycle_graph

        g = cycle_graph(4)
        assert k_path_bisimilar(g, (0, 1), (2, 3), 2)
        assert k_path_bisimilar(g, (0, 0), (2, 2), 2)
        assert not k_path_bisimilar(g, (0, 1), (0, 2), 2)


class TestEquivalenceRelation:
    @_SETTINGS
    @given(tiny_graphs(), st.integers(1, 2))
    def test_symmetry(self, graph, k):
        pairs = sorted(reachable_pairs(graph, k), key=repr)[:6]
        for a in pairs:
            for b in pairs:
                assert k_path_bisimilar(graph, a, b, k) == k_path_bisimilar(
                    graph, b, a, k
                )

    @_SETTINGS
    @given(tiny_graphs())
    def test_transitivity(self, graph):
        pairs = sorted(reachable_pairs(graph, 2), key=repr)[:6]
        related = {
            (a, b)
            for a in pairs
            for b in pairs
            if k_path_bisimilar(graph, a, b, 2)
        }
        for a, b in related:
            for c in pairs:
                if (b, c) in related:
                    assert (a, c) in related

    @_SETTINGS
    @given(tiny_graphs(), st.integers(2, 3))
    def test_monotone_in_k(self, graph, k):
        """≈k refines ≈(k-1): bisimilar at k implies bisimilar at k-1."""
        pairs = sorted(reachable_pairs(graph, k - 1), key=repr)[:6]
        for a in pairs:
            for b in pairs:
                if k_path_bisimilar(graph, a, b, k):
                    assert k_path_bisimilar(graph, a, b, k - 1)


class TestTheorem41:
    @_SETTINGS
    @given(tiny_graphs(), st.lists(bounded_queries(), min_size=1, max_size=4))
    def test_bisimilar_pairs_indistinguishable(self, graph, queries):
        """Theorem 4.1 for diameter ≤ 2 queries at k = 2."""
        classes = bisimulation_classes(graph, 2)
        interesting = [c for c in classes if len(c) > 1][:3]
        for query in queries:
            if query.diameter() > 2:
                continue
            answer = reference(query, graph)
            for members in interesting:
                membership = {pair in answer for pair in members}
                assert len(membership) == 1, (query, members)

    @_SETTINGS
    @given(tiny_graphs())
    def test_bisimilar_pairs_share_sequences(self, graph):
        """Corollary: label sequences are CPQs, so L≤k is class-uniform."""
        for members in bisimulation_classes(graph, 2):
            sequence_sets = {
                label_sequences_for_pair(graph, v, u, 2) for v, u in members
            }
            assert len(sequence_sets) == 1


class TestSpecVsConstruction:
    @_SETTINGS
    @given(tiny_graphs())
    def test_construction_classes_also_sequence_uniform(self, graph):
        """Both partitions guarantee the invariant the index needs.

        The bottom-up partition (Sec. IV-C) deliberately differs from
        Def. 4.1 ("does not distinguish paths with conjunctions divided at
        different locations"), so we do not assert refinement in either
        direction — only that both deliver the index-correctness contract.
        """
        from repro.core.partition import compute_partition

        partition = compute_partition(graph, 2)
        for members in partition.blocks.values():
            sequence_sets = {
                label_sequences_for_pair(graph, v, u, 2) for v, u in members
            }
            assert len(sequence_sets) == 1

    def test_class_counts_comparable_on_example(self):
        """On the paper's own example both partitions land near 30."""
        from repro.core.partition import compute_partition
        from repro.graph.datasets import example_graph

        graph = example_graph()
        spec_classes = bisimulation_classes(graph, 2)
        constructed = compute_partition(graph, 2)
        assert 25 <= len(spec_classes) <= 40
        assert 25 <= constructed.num_classes <= 40
