"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.datasets import example_graph
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.semantics import evaluate as reference_evaluate


@pytest.fixture()
def gex() -> LabeledDigraph:
    """The paper's running example graph (Fig. 1)."""
    return example_graph()


@pytest.fixture()
def tiny_graph() -> LabeledDigraph:
    """A 5-vertex graph with hand-checkable structure.

    Two labels ``a``/``b``; contains a 2-cycle, a triangle-ish path, and
    one vertex reachable only through a 2-hop path.
    """
    return edges_from_strings([
        "0 1 a",
        "1 2 a",
        "2 0 b",
        "0 2 a",
        "2 3 b",
        "3 3 a",   # self loop
        "1 4 b",
    ])


@pytest.fixture()
def medium_graph() -> LabeledDigraph:
    """A seeded 30-vertex random graph for integration-level tests."""
    return random_graph(num_vertices=30, num_edges=75, num_labels=3, seed=5)


def assert_engine_matches_reference(engine, queries, graph) -> None:
    """Every engine answer must equal the naive reference semantics."""
    for query in queries:
        expected = reference_evaluate(query, graph)
        got = engine.evaluate(query)
        assert got == expected, (
            f"{getattr(engine, 'name', engine)} disagrees on {query}: "
            f"missing={sorted(expected - got)[:5]} extra={sorted(got - expected)[:5]}"
        )
