"""Cross-engine integration tests: all seven methods, one truth.

The paper's protocol runs every method on the same query plans over the
same workloads; here every engine must return byte-identical answer sets
on shared workloads over shared graphs — including after maintenance and
on the benchmark query suites.
"""

from __future__ import annotations

import pytest

from repro.baselines.bfs import BFSEngine
from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.baselines.relational import RelationalEngine
from repro.baselines.tentris import TentrisEngine
from repro.baselines.turbohom import TurboHomEngine
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.graph.datasets import load_dataset
from repro.graph.generators import community_graph, random_graph
from repro.graph.schema import citation_schema, lubm_schema, watdiv_schema, yago_like_schema
from repro.query.ast import resolve
from repro.query.semantics import evaluate as reference
from repro.query.templates import (
    lubm_queries,
    template_names,
    watdiv_queries,
    yago2_queries,
)
from repro.query.workloads import random_template_queries, workload_interests


def all_engines(graph, interests):
    return [
        CPQxIndex.build(graph, k=2),
        InterestAwareIndex.build(graph, k=2, interests=interests),
        PathIndex.build(graph, k=2),
        InterestAwarePathIndex.build(graph, k=2, interests=interests),
        RelationalEngine.build(graph),
        BFSEngine(graph),
        TurboHomEngine(graph),
        TentrisEngine(graph),
    ]


class TestAllTemplatesAllEngines:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_matrix(self, seed):
        graph = random_graph(22, 60, 3, seed=seed)
        workload = []
        for template in template_names():
            workload.extend(
                random_template_queries(graph, template, count=2, seed=seed)
            )
        interests = frozenset(workload_interests(workload, 2))
        engines = all_engines(graph, interests)
        for wq in workload:
            expected = reference(wq.query, graph)
            for engine in engines:
                assert engine.evaluate(wq.query) == expected, (
                    engine.name, wq.template, wq.labels
                )


class TestCommunityGraph:
    def test_dense_clusters(self):
        graph = community_graph(40, 4, 150, 20, 3, seed=2)
        workload = []
        for template in ("S", "TT", "St", "Si"):
            workload.extend(random_template_queries(graph, template, count=2, seed=3))
        interests = frozenset(workload_interests(workload, 2))
        engines = all_engines(graph, interests)
        for wq in workload:
            expected = reference(wq.query, graph)
            for engine in engines:
                assert engine.evaluate(wq.query) == expected


class TestBenchmarkSuites:
    @pytest.mark.parametrize(
        "schema_factory,suite",
        [
            (yago_like_schema, yago2_queries),
            (lubm_schema, lubm_queries),
            (watdiv_schema, watdiv_queries),
        ],
        ids=["yago2", "lubm", "watdiv"],
    )
    def test_suite_agreement(self, schema_factory, suite):
        graph = schema_factory().generate(150, seed=4)
        queries = [resolve(q, graph.registry) for q in suite().values()]
        interests = frozenset(workload_interests(queries, 2))
        engines = [
            InterestAwareIndex.build(graph, k=2, interests=interests),
            InterestAwarePathIndex.build(graph, k=2, interests=interests),
            BFSEngine(graph),
            TentrisEngine(graph),
        ]
        for query in queries:
            expected = reference(query, graph)
            for engine in engines:
                assert engine.evaluate(query) == expected, engine.name


class TestDatasetStandIns:
    @pytest.mark.parametrize("name", ["robots", "g-mark-1m", "yago"])
    def test_engines_agree_on_dataset(self, name):
        graph = load_dataset(name, scale=0.08, seed=5)
        workload = []
        for template in ("C2", "T", "S"):
            workload.extend(random_template_queries(graph, template, count=2, seed=6))
        interests = frozenset(workload_interests(workload, 2))
        engines = [
            InterestAwareIndex.build(graph, k=2, interests=interests),
            BFSEngine(graph),
            TentrisEngine(graph),
        ]
        for wq in workload:
            expected = reference(wq.query, graph)
            for engine in engines:
                assert engine.evaluate(wq.query) == expected


class TestMaintenanceKeepsEnginesAligned:
    def test_cpqx_after_updates_equals_fresh_engines(self):
        graph = random_graph(20, 55, 3, seed=7)
        index = CPQxIndex.build(graph.copy(), k=2)
        # churn
        triples = sorted(index.graph.triples(), key=repr)
        for edge in triples[:5]:
            index.delete_edge(*edge)
        index.insert_edge(0, 1, 1)
        final_graph = index.graph
        fresh = [
            PathIndex.build(final_graph, k=2),
            BFSEngine(final_graph),
            TurboHomEngine(final_graph),
        ]
        for template in ("C2", "T", "S", "Ti"):
            for wq in random_template_queries(final_graph, template, count=2, seed=8):
                expected = reference(wq.query, final_graph)
                assert index.evaluate(wq.query) == expected
                for engine in fresh:
                    assert engine.evaluate(wq.query) == expected


class TestGmarkCitationWorkload:
    def test_paper_interest_queries(self):
        """The five gMark interests evaluate identically across engines."""
        from repro.graph.datasets import gmark_interests
        from repro.query.ast import sequence_query

        graph = citation_schema().generate(200, seed=9)
        interests = frozenset(gmark_interests(graph))
        ia = InterestAwareIndex.build(graph, k=2, interests=interests)
        bfs = BFSEngine(graph)
        for seq in interests:
            query = sequence_query(seq)
            assert ia.evaluate(query) == bfs.evaluate(query)
