"""Hypothesis round-trip and structural properties across subsystems."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cpqx import CPQxIndex
from repro.core.persistence import load_index, save_index
from repro.graph.digraph import LabeledDigraph
from repro.graph.io import graph_from_document, graph_to_document
from repro.graph.labels import LabelRegistry, inverse_sequence
from repro.query.ast import CPQ, Conjunction, EdgeLabel, ID, Join
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def graphs(draw) -> LabeledDigraph:
    registry = LabelRegistry(["aa", "bb", "cc"])
    graph = LabeledDigraph(registry)
    vertex_pool = draw(st.sampled_from(["ints", "strings", "tuples"]))
    if vertex_pool == "ints":
        vertices = list(range(6))
    elif vertex_pool == "strings":
        vertices = [f"v{i}" for i in range(6)]
    else:
        vertices = [("t", i) for i in range(6)]
    for v in vertices:
        graph.add_vertex(v)
    for _ in range(draw(st.integers(1, 14))):
        graph.add_edge(
            vertices[draw(st.integers(0, 5))],
            vertices[draw(st.integers(0, 5))],
            draw(st.integers(1, 3)),
        )
    return graph


@st.composite
def name_queries(draw, max_depth: int = 3) -> CPQ:
    """Name-form CPQs over the aa/bb/cc vocabulary."""
    if max_depth == 0:
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return ID
        name = draw(st.sampled_from(["aa", "bb", "cc"]))
        return EdgeLabel(name, inverted=choice >= 3)
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(name_queries(max_depth=0))
    left = draw(name_queries(max_depth=max_depth - 1))
    right = draw(name_queries(max_depth=max_depth - 1))
    return Join(left, right) if kind == 1 else Conjunction(left, right)


class TestParserRoundtrip:
    @_SETTINGS
    @given(name_queries())
    def test_parse_of_to_text_is_identity(self, query):
        assert parse(query.to_text()) == query

    @_SETTINGS
    @given(graphs(), name_queries(max_depth=2))
    def test_roundtrip_preserves_semantics(self, graph, query):
        from repro.query.ast import resolve

        direct = reference(resolve(query, graph.registry), graph)
        reparsed = reference(
            resolve(parse(query.to_text()), graph.registry), graph
        )
        assert direct == reparsed


class TestGraphDocumentRoundtrip:
    @_SETTINGS
    @given(graphs())
    def test_document_roundtrip(self, graph):
        assert graph_from_document(graph_to_document(graph)) == graph


class TestPersistenceRoundtrip:
    @_SETTINGS
    @given(graphs())
    def test_index_roundtrip_preserves_everything(self, graph):
        import os
        import tempfile

        index = CPQxIndex.build(graph, k=2)
        handle, path = tempfile.mkstemp(suffix=".json")
        os.close(handle)
        try:
            save_index(index, path)
            loaded = load_index(path)
        finally:
            os.unlink(path)
        assert loaded.num_classes == index.num_classes
        assert loaded.num_pairs == index.num_pairs
        assert loaded.graph == index.graph
        # the reloaded index answers lookups identically
        for seq in list(index._il2c)[:10]:
            assert loaded.expand_classes(
                loaded.lookup(seq).classes
            ) == index.expand_classes(index.lookup(seq).classes)


class TestInverseSequenceSemantics:
    @_SETTINGS
    @given(graphs(), st.lists(st.integers(1, 3), min_size=1, max_size=3))
    def test_inverse_sequence_is_converse_relation(self, graph, labels):
        seq = tuple(labels)
        forward = graph.sequence_relation(seq)
        backward = graph.sequence_relation(inverse_sequence(seq))
        assert backward == {(u, v) for v, u in forward}


class TestExtendedAdjacencyConsistency:
    @_SETTINGS
    @given(graphs())
    def test_successor_symmetry(self, graph):
        """u ∈ successors(v, l) ⟺ v ∈ successors(u, -l)."""
        for v, u, lab in graph.extended_triples():
            assert u in graph.successors(v, lab)
            assert v in graph.successors(u, -lab)

    @_SETTINGS
    @given(graphs())
    def test_out_items_matches_successors(self, graph):
        for v in graph.vertices():
            for lab, targets in graph.out_items(v):
                assert frozenset(targets) == graph.successors(v, lab)

    @_SETTINGS
    @given(graphs())
    def test_degree_sum_is_twice_extended_edges(self, graph):
        total = sum(graph.out_degree(v) for v in graph.vertices())
        assert total == graph.num_extended_edges
