"""The kernel backends agree bit-for-bit, everywhere.

The contract of :mod:`repro.core.kernels` is that the numpy backend is
a *pure acceleration*: every algebra primitive, every composition, and
every full index build produces byte-identical columns under either
backend, so flipping ``REPRO_KERNELS`` can never change an answer.
These tests check that contract by property (Hypothesis) over all
three PairSet backings, end-to-end over every parallelizable engine
(fingerprint identity), and for the degraded numpy-absent environment
(subprocess with the import hidden).
"""

from __future__ import annotations

import os
import subprocess
import sys
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.core import kernels
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.pairset import PairSet
from repro.core.parallel import index_fingerprint
from repro.graph.generators import random_graph
from repro.graph.interner import VertexInterner

HAVE_NUMPY = "numpy" in kernels.available_backends()

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Enough ids that packed codes exercise both halves of the word.
NUM_IDS = 12

BACKINGS = ("owned", "lazy", "mapped")


def _interner() -> VertexInterner:
    interner = VertexInterner()
    for i in range(NUM_IDS):
        interner.intern(f"v{i}")
    return interner


def _pairset(codes: set[int], backing: str, interner: VertexInterner) -> PairSet:
    if backing == "owned":
        return PairSet.from_codes(codes, interner)
    if backing == "lazy":
        return PairSet.from_code_set(set(codes), interner)
    column = array("q", sorted(codes))
    return PairSet.from_mapped(memoryview(column), interner)


def _codes(draw) -> set[int]:
    pairs = draw(st.lists(
        st.tuples(st.integers(0, NUM_IDS - 1), st.integers(0, NUM_IDS - 1)),
        max_size=40,
    ))
    return {(v << 32) | u for v, u in pairs}


@st.composite
def operand_pairs(draw):
    """Two code sets plus a backing choice for each."""
    return (
        _codes(draw), _codes(draw),
        draw(st.sampled_from(BACKINGS)), draw(st.sampled_from(BACKINGS)),
    )


def _both_backends(op):
    """Run ``op`` under each backend, returning sorted code lists."""
    results = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            results[backend] = sorted(op().iter_codes())
    return results


@needs_numpy
class TestAlgebraEquivalence:
    """union/intersect/difference identical across backends x backings."""

    @_SETTINGS
    @given(operand_pairs())
    def test_set_algebra(self, drawn):
        codes_a, codes_b, backing_a, backing_b = drawn
        interner = _interner()
        for op in (
            lambda a, b: a & b,
            lambda a, b: a | b,
            lambda a, b: a - b,
        ):
            results = {}
            for backend in ("pure", "numpy"):
                with kernels.use_backend(backend):
                    a = _pairset(codes_a, backing_a, interner)
                    b = _pairset(codes_b, backing_b, interner)
                    results[backend] = sorted(op(a, b).iter_codes())
            assert results["pure"] == results["numpy"]

    @_SETTINGS
    @given(operand_pairs(), st.booleans())
    def test_compose(self, drawn, loops_only):
        codes_a, codes_b, backing_a, backing_b = drawn
        interner = _interner()
        results = {}
        for backend in ("pure", "numpy"):
            with kernels.use_backend(backend):
                a = _pairset(codes_a, backing_a, interner)
                b = _pairset(codes_b, backing_b, interner)
                results[backend] = sorted(
                    a.compose(b, loops_only=loops_only).iter_codes()
                )
        assert results["pure"] == results["numpy"]

    @_SETTINGS
    @given(operand_pairs())
    def test_loops_and_membership(self, drawn):
        codes_a, _, backing_a, _ = drawn
        interner = _interner()
        probe = (3 << 32) | 5
        rows = {}
        for backend in ("pure", "numpy"):
            with kernels.use_backend(backend):
                a = _pairset(codes_a, backing_a, interner)
                rows[backend] = (
                    sorted(a.loops().iter_codes()),
                    a.contains_code(probe),
                    sorted(PairSet.from_codes(codes_a, interner).iter_codes()),
                )
        assert rows["pure"] == rows["numpy"]

    def test_empty_operands(self):
        interner = _interner()
        for backing in BACKINGS:
            results = _both_backends(
                lambda: _pairset(set(), backing, interner)  # noqa: B023
                & _pairset({(1 << 32) | 2}, backing, interner)  # noqa: B023
            )
            assert results["pure"] == results["numpy"] == []


#: (engine key, build callable) for every parallelizable engine.
BUILDERS = [
    ("cpqx", lambda g, w: CPQxIndex.build(g, k=2, workers=w)),
    ("path", lambda g, w: PathIndex.build(g, k=2, workers=w)),
    (
        "iacpqx",
        lambda g, w: InterestAwareIndex.build(
            g, k=2, interests={(1, 2), (2, -1)}, workers=w
        ),
    ),
    (
        "iapath",
        lambda g, w: InterestAwarePathIndex.build(
            g, k=2, interests={(1, 2), (2, -1)}, workers=w
        ),
    ),
]


@needs_numpy
class TestEngineFingerprints:
    """Full builds fingerprint-identical under either backend."""

    @pytest.mark.parametrize("key,build", BUILDERS, ids=[k for k, _ in BUILDERS])
    def test_serial_builds_identical(self, key, build):
        graph = random_graph(50, 260, 3, seed=11)
        with kernels.use_backend("pure"):
            pure_index = build(graph, 1)
        with kernels.use_backend("numpy"):
            numpy_index = build(graph, 1)
        assert index_fingerprint(pure_index) == index_fingerprint(numpy_index)

    def test_sharded_numpy_equals_pure_serial(self):
        # workers spawn with REPRO_KERNELS in their env, so the sharded
        # numpy build must land on the same index as a pure serial one.
        graph = random_graph(40, 200, 3, seed=3)
        with kernels.use_backend("pure"):
            serial = CPQxIndex.build(graph, k=2, workers=1)
        with kernels.use_backend("numpy"):
            sharded = CPQxIndex.build(graph, k=2, workers=2)
        assert index_fingerprint(serial) == index_fingerprint(sharded)

    def test_wide_label_alphabet_falls_back(self):
        # Above MAX_ENUMERATION_LABELS the numpy enumeration declines
        # and the pure loop serves both backends: results still equal.
        from repro.core.kernels.numpy_backend import MAX_ENUMERATION_LABELS
        from repro.core.paths import enumerate_sequences_codes

        labels = MAX_ENUMERATION_LABELS + 6
        graph = random_graph(30, 3 * labels, labels, seed=2)
        rows = {}
        for backend in ("pure", "numpy"):
            with kernels.use_backend(backend):
                rows[backend] = {
                    seq: sorted(pairs.iter_codes())
                    for seq, pairs in enumerate_sequences_codes(graph, 2).items()
                }
        assert rows["pure"] == rows["numpy"]


class TestBackendSelection:
    def test_pure_always_available(self):
        assert "pure" in kernels.available_backends()
        assert kernels.active_backend() in kernels.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("cupy")

    def test_set_backend_round_trips_env(self):
        previous = kernels.set_backend("pure")
        try:
            assert kernels.active_backend() == "pure"
            assert os.environ[kernels._ENV_VAR] == "pure"
            assert kernels.backend_module().__name__.endswith(".pure")
        finally:
            kernels.set_backend(previous)

    def test_use_backend_restores(self):
        before = kernels.active_backend()
        env_before = os.environ.get(kernels._ENV_VAR)
        with kernels.use_backend("pure"):
            assert kernels.active_backend() == "pure"
        assert kernels.active_backend() == before
        assert os.environ.get(kernels._ENV_VAR) == env_before

    def test_stats_report_active_backend(self):
        from repro.bench.reporting import host_metadata
        from repro.core.stats import stats_of

        graph = random_graph(12, 40, 2, seed=0)
        index = CPQxIndex.build(graph, k=1)
        assert stats_of(index).kernels == kernels.active_backend()
        assert host_metadata()["kernels"] == kernels.active_backend()
        assert f"kernels={kernels.active_backend()}" in stats_of(index).describe()


#: Bootstrap for subprocess runs with the numpy import hidden: any
#: ``import numpy`` raises ImportError before repro is ever imported.
_HIDE_NUMPY = (
    "import sys; sys.modules['numpy'] = None; "
)


class TestNumpyAbsent:
    """The pure backend carries the whole system when numpy is missing."""

    def _run(self, code: str, env: dict | None = None) -> str:
        merged = {**os.environ, **(env or {})}
        merged.pop("REPRO_KERNELS", None)
        merged.update(env or {})
        proc = subprocess.run(
            [sys.executable, "-c", _HIDE_NUMPY + code],
            capture_output=True, text=True, env=merged, check=False,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_falls_back_to_pure(self):
        out = self._run(
            "from repro.core import kernels; "
            "print(kernels.available_backends()); print(kernels.active_backend())"
        )
        assert "('pure',)" in out
        assert out.strip().endswith("pure")

    def test_requested_numpy_warns_and_degrades(self):
        out = self._run(
            "import warnings; "
            "warnings.simplefilter('always'); "
            "from repro.core import kernels; "
            "print(kernels.active_backend())",
            env={"REPRO_KERNELS": "numpy"},
        )
        assert out.strip().endswith("pure")

    def test_end_to_end_build_and_query(self):
        out = self._run(
            "from repro.core.cpqx import CPQxIndex; "
            "from repro.graph.generators import random_graph; "
            "g = random_graph(20, 80, 2, seed=1); "
            "index = CPQxIndex.build(g, k=2); "
            "print(index.num_classes > 0)"
        )
        assert out.strip() == "True"
