"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import DatasetError
from repro.graph.generators import (
    bipartite_visit_graph,
    community_graph,
    cycle_graph,
    expected_label_counts,
    exponential_label,
    grid_graph,
    knowledge_graph,
    preferential_attachment_graph,
    random_graph,
    relabel_graph,
    uniform_label,
)


class TestLabelDistributions:
    def test_exponential_label_in_range(self):
        rng = random.Random(0)
        labels = [exponential_label(rng, 8) for _ in range(2000)]
        assert all(1 <= l <= 8 for l in labels)

    def test_exponential_label_is_skewed(self):
        rng = random.Random(0)
        labels = [exponential_label(rng, 8) for _ in range(4000)]
        counts = [labels.count(i) for i in range(1, 9)]
        # label 1 dominates and the tail decays (paper's λ=0.5 skew)
        assert counts[0] > counts[1] > counts[3]

    def test_exponential_label_matches_analytic_masses(self):
        rng = random.Random(1)
        n = 20000
        labels = [exponential_label(rng, 6) for _ in range(n)]
        expected = expected_label_counts(n, 6)
        for i, expect in enumerate(expected, start=1):
            observed = labels.count(i)
            assert abs(observed - expect) < 0.15 * n

    def test_exponential_label_rejects_bad_count(self):
        with pytest.raises(DatasetError):
            exponential_label(random.Random(0), 0)

    def test_uniform_label(self):
        rng = random.Random(0)
        labels = {uniform_label(rng, 4) for _ in range(200)}
        assert labels == {1, 2, 3, 4}


class TestRandomGraph:
    def test_sizes(self):
        graph = random_graph(50, 120, 4, seed=1)
        assert graph.num_vertices == 50
        assert 0 < graph.num_edges <= 120
        assert graph.labels_used() <= {1, 2, 3, 4}

    def test_deterministic_by_seed(self):
        assert random_graph(30, 60, 3, seed=5) == random_graph(30, 60, 3, seed=5)

    def test_different_seeds_differ(self):
        assert random_graph(30, 60, 3, seed=5) != random_graph(30, 60, 3, seed=6)

    def test_accepts_rng_instance(self):
        graph = random_graph(10, 20, 2, seed=random.Random(3))
        assert graph.num_vertices == 10


class TestPreferentialAttachment:
    def test_grows_hubs(self):
        graph = preferential_attachment_graph(200, 3, 4, seed=2)
        degrees = sorted(graph.out_degree(v) for v in graph.vertices())
        # heavy tail: max degree far above the median
        assert degrees[-1] > 4 * degrees[len(degrees) // 2]

    def test_edge_budget(self):
        graph = preferential_attachment_graph(100, 2, 4, seed=2)
        assert graph.num_edges <= 2 * 100


class TestDomainGenerators:
    def test_bipartite_visit_layers(self):
        graph = bipartite_visit_graph(30, 5, 60, 40, seed=3)
        visits = graph.registry.id_of("visits")
        for v, u, label in graph.triples():
            if label == visits:
                assert v[0] == "u" and u[0] == "b"
            else:
                assert v[0] == "u" and u[0] == "u"

    def test_community_graph_builds(self):
        graph = community_graph(60, 6, 150, 30, 4, seed=4)
        assert graph.num_vertices == 60
        assert graph.num_edges > 50

    def test_community_graph_needs_viable_community(self):
        with pytest.raises(DatasetError):
            community_graph(1, 1, 5, 0, 2, seed=0)

    def test_knowledge_graph_hubs_and_labels(self):
        graph = knowledge_graph(200, 800, 50, seed=5)
        assert len(graph.labels_used()) > 10
        in_degrees = sorted(
            sum(len(s) for s in graph._in.get(v, {}).values())
            for v in graph.vertices()
        )
        assert in_degrees[-1] > 5 * max(1, in_degrees[len(in_degrees) // 2])


class TestDeterministicShapes:
    def test_grid(self):
        graph = grid_graph(3, 2)
        assert graph.num_vertices == 6
        assert graph.num_edges == (2 * 2) + 3  # rights per row + downs per col
        assert graph.has_edge((0, 0), (1, 0), 1)
        assert graph.has_edge((0, 0), (0, 1), 2)

    def test_cycle(self):
        graph = cycle_graph(4)
        assert graph.num_edges == 4
        assert graph.sequence_relation((1, 1, 1, 1)) == {(v, v) for v in range(4)}

    def test_cycle_rejects_zero(self):
        with pytest.raises(DatasetError):
            cycle_graph(0)


class TestRelabel:
    def test_preserves_topology(self):
        base = random_graph(20, 50, 3, seed=6)
        relabeled = relabel_graph(base, 16, seed=7)
        base_pairs = {(v, u) for v, u, _ in base.triples()}
        new_pairs = {(v, u) for v, u, _ in relabeled.triples()}
        assert new_pairs == base_pairs

    def test_uses_requested_vocabulary(self):
        base = random_graph(20, 60, 3, seed=6)
        relabeled = relabel_graph(base, 16, seed=7)
        assert max(relabeled.labels_used()) <= 16
        assert len(relabeled.registry) == 16

    def test_deterministic(self):
        base = random_graph(20, 50, 3, seed=6)
        assert relabel_graph(base, 8, seed=1) == relabel_graph(base, 8, seed=1)
