"""Unit tests for the dataset registry."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import (
    dataset_names,
    gen_random,
    get_dataset,
    gmark_interests,
    load_dataset,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        names = set(dataset_names())
        for expected in (
            "robots", "ego-facebook", "advogato", "youtube", "string-hs",
            "string-fc", "biogrid", "epinions", "web-google", "wiki-talk",
            "yago", "cit-patents", "wikidata", "freebase",
            "g-mark-1m", "g-mark-5m", "g-mark-10m", "g-mark-15m", "g-mark-20m",
        ):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            get_dataset("nope")

    def test_paper_stats_recorded(self):
        spec = get_dataset("freebase")
        assert spec.paper_stats.vertices == 14_420_276
        assert spec.paper_stats.labels == 1_556

    def test_oom_datasets_marked_infeasible(self):
        """The Table IV '-' rows must be flagged."""
        for name in ("web-google", "wiki-talk", "yago", "cit-patents",
                     "wikidata", "freebase", "g-mark-1m"):
            assert not get_dataset(name).full_index_feasible, name
        for name in ("robots", "advogato", "youtube"):
            assert get_dataset(name).full_index_feasible, name


class TestBuilding:
    @pytest.mark.parametrize("name", ["robots", "yago", "g-mark-1m", "lubm-bench"])
    def test_builds_at_small_scale(self, name):
        graph = load_dataset(name, scale=0.1, seed=1)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_deterministic(self):
        assert load_dataset("robots", scale=0.2, seed=3) == load_dataset(
            "robots", scale=0.2, seed=3
        )

    def test_scale_changes_size(self):
        small = load_dataset("advogato", scale=0.1, seed=1)
        large = load_dataset("advogato", scale=0.4, seed=1)
        assert large.num_vertices > small.num_vertices

    def test_bad_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("robots", scale=0)

    def test_knowledge_graph_label_vocabularies(self):
        wikidata = load_dataset("wikidata", scale=0.1, seed=1)
        robots = load_dataset("robots", scale=0.1, seed=1)
        assert len(wikidata.registry) > 10 * len(robots.registry)


class TestGmarkInterests:
    def test_five_paper_interests(self):
        graph = load_dataset("g-mark-1m", scale=0.2, seed=1)
        interests = gmark_interests(graph)
        assert len(interests) == 5
        registry = graph.registry
        assert (registry.id_of("cites"), registry.id_of("cites")) in interests
        assert (registry.id_of("worksIn"), -registry.id_of("heldIn")) in interests


class TestGenRandom:
    @pytest.mark.parametrize("kind", ["random", "preferential", "community", "knowledge"])
    def test_kinds(self, kind):
        graph = gen_random(kind, scale=0.1, seed=2)
        assert graph.num_edges > 0

    def test_unknown_kind(self):
        with pytest.raises(DatasetError):
            gen_random("nope")
