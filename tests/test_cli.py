"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestBuildAndQuery:
    def test_cpqx_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "robots.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.15",
            "--out", str(out),
        ]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "CPQx" in captured and "saved" in captured

        assert main(["query", "--index", str(out), "l1 & l1"]) == 0
        captured = capsys.readouterr().out
        assert "answers in" in captured

    def test_iacpqx_auto_interests(self, tmp_path, capsys):
        out = tmp_path / "ia.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.15",
            "--type", "iacpqx", "--out", str(out),
        ]) == 0
        assert main(["info", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "interests:" in captured

    def test_info_verify_clean_index(self, tmp_path, capsys):
        out = tmp_path / "v.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.12",
            "--out", str(out),
        ]) == 0
        assert main(["info", str(out), "--verify"]) == 0
        captured = capsys.readouterr().out
        assert "OK" in captured

    def test_iacpqx_explicit_interests(self, tmp_path, capsys):
        out = tmp_path / "ia2.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.15",
            "--type", "iacpqx", "--interests", "l1.l2, l2.l1^-",
            "--out", str(out),
        ]) == 0
        from repro.core.persistence import load_index

        index = load_index(out)
        assert (1, 2) in index.interests
        assert (2, -1) in index.interests

    def test_query_on_fresh_dataset(self, capsys):
        assert main([
            "query", "--dataset", "robots", "--scale", "0.1",
            "l1 . l1^-", "--show", "2",
        ]) == 0
        assert "answers in" in capsys.readouterr().out

    def test_query_limit(self, capsys):
        assert main([
            "query", "--dataset", "robots", "--scale", "0.1",
            "l1", "--limit", "1",
        ]) == 0
        assert "1 answers" in capsys.readouterr().out


class TestEngineFlag:
    def test_query_engine_choice(self, capsys):
        assert main([
            "query", "--dataset", "robots", "--scale", "0.1",
            "--engine", "bfs", "l1 . l1^-", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[BFS]" in out and "answers in" in out

    def test_query_engine_auto_reports_selection(self, capsys):
        assert main([
            "query", "--dataset", "robots", "--scale", "0.1",
            "--engine", "auto", "l1 & l1",
        ]) == 0
        out = capsys.readouterr().out
        assert "auto-selected engine=" in out and "answers in" in out

    def test_query_stats_flag_prints_counters(self, capsys):
        assert main([
            "query", "--dataset", "robots", "--scale", "0.1",
            "--stats", "l1 & l1",
        ]) == 0
        out = capsys.readouterr().out
        assert "stats: lookups=" in out
        assert "plan:" in out

    def test_query_unknown_engine_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main([
                "query", "--dataset", "robots", "--engine", "nope", "l1",
            ])

    def test_build_engine_flag(self, tmp_path, capsys):
        out = tmp_path / "e.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.15",
            "--engine", "iacpqx", "--out", str(out),
        ]) == 0
        assert "iaCPQx" in capsys.readouterr().out
        assert out.exists()

    def test_build_engine_and_type_conflict(self, capsys):
        assert main([
            "build", "--dataset", "robots", "--scale", "0.1",
            "--engine", "cpqx", "--type", "iacpqx", "--out", "x.idx",
        ]) == 2
        assert "deprecated alias" in capsys.readouterr().err

    def test_build_non_persistable_engine_errors_cleanly(self, tmp_path, capsys):
        code = main([
            "build", "--dataset", "robots", "--scale", "0.1",
            "--engine", "bfs", "--out", str(tmp_path / "b.idx"),
        ])
        assert code == 1
        assert "not persistable" in capsys.readouterr().err


class TestDatasets:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "robots" in out
        assert "freebase" in out
        assert "OOM in paper" in out


class TestExperiment:
    def test_experiment_names_cover_all_figures(self):
        expected = {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15",
        }
        assert set(EXPERIMENTS) == expected

    def test_runs_table3(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "2")
        assert main(["experiment", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out


class TestErrors:
    def test_bad_query_reports_error(self, capsys):
        code = main(["query", "--dataset", "robots", "--scale", "0.1", "(l1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["build", "--dataset", "nope", "--out", "x"])


class TestServeCommand:
    def test_serve_daemon_over_a_saved_index(self, tmp_path, capsys):
        """``repro serve`` end to end: build, boot, query over HTTP,
        shut down via POST /shutdown, exit 0 after a clean drain."""
        import threading

        from repro.serve.daemon import DaemonClient

        index = tmp_path / "served.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.12",
            "--out", str(index),
        ]) == 0
        capsys.readouterr()
        port_file = tmp_path / "port"
        codes: list[int] = []
        thread = threading.Thread(
            target=lambda: codes.append(main([
                "serve", str(index), "--port-file", str(port_file),
                "--mode", "thread", "--batch-window", "0.002",
            ])),
            daemon=True,
        )
        thread.start()
        deadline = __import__("time").monotonic() + 30.0
        while not port_file.exists():
            assert thread.is_alive() and __import__("time").monotonic() < deadline
            __import__("time").sleep(0.02)
        client = DaemonClient("127.0.0.1", int(port_file.read_text().strip()))
        assert client.wait_ready(30.0)
        status, payload = client.query("l1 & l1")
        assert status == 200
        assert payload["count"] == len(payload["answers"])
        client.shutdown()
        thread.join(30.0)
        assert not thread.is_alive()
        assert codes == [0]
        assert "serving" in capsys.readouterr().out

    def test_serve_bench_daemon_flag_routes(self, monkeypatch):
        """``serve-bench --daemon`` dispatches to the daemon bench."""
        calls = []
        import repro.bench.daemon_bench as daemon_bench

        monkeypatch.setattr(
            daemon_bench, "main_bench_daemon", lambda args: calls.append(args) or 0
        )
        assert main(["serve-bench", "--daemon"]) == 0
        assert len(calls) == 1 and calls[0].daemon is True
