"""Unit tests for the TurboHom++-style homomorphic matcher."""

from __future__ import annotations

import pytest

from repro.baselines.turbohom import TurboHomEngine
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a"])


class TestBasicQueries:
    @pytest.mark.parametrize("text", [
        "a", "a^-", "id", "a . b", "(a . b) & a", "b & id",
        "(a . b . a) & id", "(a . a^-) & (b . b^-)",
    ])
    def test_matches_reference(self, g, text):
        engine = TurboHomEngine(g)
        query = parse(text, g.registry)
        assert engine.evaluate(query) == reference(query, g)

    def test_bare_identity(self, g):
        engine = TurboHomEngine(g)
        assert engine.evaluate(parse("id")) == {(v, v) for v in g.vertices()}

    def test_bare_identity_with_limit(self, g):
        engine = TurboHomEngine(g)
        assert len(engine.evaluate(parse("id"), limit=2)) == 2


class TestHomomorphicSemantics:
    def test_non_injective_embeddings_allowed(self):
        """A homomorphism may map two query variables to one vertex.

        Isomorphic matchers would miss (0,0) for a∘a⁻ on a single edge:
        the two path endpoints coincide.
        """
        g = edges_from_strings(["0 1 a"])
        engine = TurboHomEngine(g)
        query = parse("a . a^-", g.registry)
        assert engine.evaluate(query) == {(0, 0)}

    def test_square_template_with_shared_midpoints(self):
        g = edges_from_strings(["0 1 a", "1 2 b"])
        engine = TurboHomEngine(g)
        # S with both branches identical: homomorphism maps both 2-paths
        # onto the same physical path
        query = parse("(a . b) & (a . b)", g.registry)
        assert engine.evaluate(query) == {(0, 2)}


class TestFirstAnswer:
    def test_limit_stops_early(self, g):
        engine = TurboHomEngine(g)
        query = parse("a", g.registry)
        answer = engine.evaluate(query, limit=1)
        assert len(answer) == 1
        assert answer <= reference(query, g)

    def test_limit_exceeding_answers(self, g):
        engine = TurboHomEngine(g)
        query = parse("a . b", g.registry)
        assert engine.evaluate(query, limit=100) == reference(query, g)


class TestStats:
    def test_candidate_counting(self, g):
        from repro.core.executor import ExecutionStats

        engine = TurboHomEngine(g)
        stats = ExecutionStats()
        engine.evaluate(parse("(a . b) & a", g.registry), stats=stats)
        assert stats.pairs_touched > 0


class TestRandomAgreement:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_templates(self, seed):
        g = random_graph(15, 35, 3, seed=seed)
        engine = TurboHomEngine(g)
        for template in ("C2", "T", "S", "St", "C2i", "Ti"):
            for wq in random_template_queries(g, template, count=2, seed=seed):
                assert engine.evaluate(wq.query) == reference(wq.query, g), (
                    template, wq.labels
                )

    def test_empty_graph_label(self, g):
        engine = TurboHomEngine(g)
        from repro.query.ast import EdgeLabel

        assert engine.evaluate(EdgeLabel(99) & EdgeLabel(1)) == frozenset()
