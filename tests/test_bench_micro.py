"""Smoke tests for ``repro bench-micro`` and its legacy reference core."""

from __future__ import annotations

import json

from repro.bench.micro import (
    LegacyCPQx,
    micro_graph,
    micro_queries,
    run_micro,
)
from repro.cli import main
from repro.core.cpqx import CPQxIndex


class TestLegacyReferenceCore:
    def test_legacy_and_columnar_agree_on_every_workload_query(self):
        graph = micro_graph(vertices=40, edges=150, labels=3, seed=3)
        queries = micro_queries(graph, seed=3)
        assert queries
        legacy = LegacyCPQx(graph, 2)
        engine = CPQxIndex.build(graph, k=2)
        for query in queries:
            assert engine.evaluate(query) == legacy.evaluate(query)


class TestRunMicro:
    def test_result_document_shape(self):
        result = run_micro(vertices=35, edges=120, labels=3, repeats=1)
        assert result["benchmark"] == "bench-micro"
        assert result["query_eval"]["identical_results"] is True
        assert result["workload"]["queries"] == result["workload"]["distinct_queries"]
        for section in ("cpqx_build", "query_eval"):
            for value in result[section].values():
                assert value is not None
        assert result["cpqx_build"]["speedup"] > 0
        host = result["host"]
        assert host["cpus"] >= 1
        for key in ("python", "implementation", "platform", "machine"):
            assert isinstance(host[key], str) and host[key]
        json.dumps(result)  # must be JSON-serializable as-is

    def test_cli_writes_json_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench-micro", "--vertices", "30", "--edges", "100",
            "--labels", "3", "--repeats", "1", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "bench-micro"
        assert "build:" in capsys.readouterr().out

    def test_cli_prints_json_without_out(self, capsys):
        code = main([
            "bench-micro", "--vertices", "25", "--edges", "80",
            "--labels", "2", "--repeats", "1",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["workload"]["vertices"] <= 25
