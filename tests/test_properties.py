"""Property-based tests (Hypothesis) for the paper's core invariants.

These are the load-bearing guarantees of DESIGN.md §4.2:

1. partition classes are uniform in ``L≤k`` and in loop-ness (the index
   correctness contract, Def. 4.2 / Thm. 4.1);
2. level-``i`` partitions refine level-``i-1`` (Sec. IV-C);
3. every engine agrees with the reference semantics on arbitrary CPQs
   (Corollary 4.1 end-to-end);
4. maintenance preserves exactness under arbitrary update sequences
   (Prop. 4.2);
5. algebraic laws of the CPQ semantics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.path_index import PathIndex
from repro.baselines.tentris import TentrisEngine
from repro.baselines.turbohom import TurboHomEngine
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.partition import compute_partition, refines
from repro.core.paths import enumerate_sequences, invert_sequences
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelRegistry
from repro.query.ast import CPQ, Conjunction, EdgeLabel, ID, Join
from repro.query.semantics import evaluate as reference

NUM_VERTICES = 8
NUM_LABELS = 3

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw) -> LabeledDigraph:
    """Small random edge-labeled digraphs (≤ 8 vertices, ≤ 20 edges)."""
    edge_count = draw(st.integers(min_value=1, max_value=20))
    registry = LabelRegistry([f"l{i}" for i in range(1, NUM_LABELS + 1)])
    graph = LabeledDigraph(registry)
    for v in range(NUM_VERTICES):
        graph.add_vertex(v)
    for _ in range(edge_count):
        v = draw(st.integers(0, NUM_VERTICES - 1))
        u = draw(st.integers(0, NUM_VERTICES - 1))
        label = draw(st.integers(1, NUM_LABELS))
        graph.add_edge(v, u, label)
    return graph


@st.composite
def queries(draw, max_depth: int = 3) -> CPQ:
    """Random CPQ expressions over the shared label vocabulary."""
    if max_depth == 0:
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return ID
        label = draw(st.integers(1, NUM_LABELS))
        return EdgeLabel(label if choice < 3 else -label)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(queries(max_depth=0))
    left = draw(queries(max_depth=max_depth - 1))
    right = draw(queries(max_depth=max_depth - 1))
    return Join(left, right) if kind in (1, 2) else Conjunction(left, right)


class TestPartitionProperties:
    @_SETTINGS
    @given(graphs(), st.integers(1, 3))
    def test_classes_are_sequence_and_loop_uniform(self, graph, k):
        partition = compute_partition(graph, k)
        per_pair = invert_sequences(enumerate_sequences(graph, k))
        for class_id, members in partition.blocks.items():
            sequence_sets = {per_pair[pair] for pair in members}
            loop_flags = {pair[0] == pair[1] for pair in members}
            assert len(sequence_sets) == 1
            assert len(loop_flags) == 1
            assert (class_id in partition.loop_classes) == loop_flags.pop()

    @_SETTINGS
    @given(graphs())
    def test_refinement_chain(self, graph):
        p1 = compute_partition(graph, 1)
        p2 = compute_partition(graph, 2)
        p3 = compute_partition(graph, 3)
        assert refines(p2.class_of, p1.class_of)
        assert refines(p3.class_of, p2.class_of)

    @_SETTINGS
    @given(graphs(), st.integers(1, 3))
    def test_partition_covers_exactly_reachable_pairs(self, graph, k):
        from repro.core.paths import reachable_pairs

        partition = compute_partition(graph, k)
        assert set(partition.class_of) == reachable_pairs(graph, k)


class TestEngineAgreement:
    @_SETTINGS
    @given(graphs(), st.lists(queries(), min_size=1, max_size=3))
    def test_cpqx_matches_reference(self, graph, query_list):
        index = CPQxIndex.build(graph, k=2)
        for query in query_list:
            assert index.evaluate(query) == reference(query, graph)

    @_SETTINGS
    @given(graphs(), st.lists(queries(), min_size=1, max_size=3))
    def test_iacpqx_matches_reference(self, graph, query_list):
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2), (2, -1)})
        for query in query_list:
            assert index.evaluate(query) == reference(query, graph)

    @_SETTINGS
    @given(graphs(), st.lists(queries(), min_size=1, max_size=3))
    def test_path_matches_reference(self, graph, query_list):
        index = PathIndex.build(graph, k=2)
        for query in query_list:
            assert index.evaluate(query) == reference(query, graph)

    @_SETTINGS
    @given(graphs(), queries(max_depth=2))
    def test_matchers_match_reference(self, graph, query):
        expected = reference(query, graph)
        assert TurboHomEngine(graph).evaluate(query) == expected
        assert TentrisEngine(graph).evaluate(query) == expected

    @_SETTINGS
    @given(graphs(), queries())
    def test_limit_returns_subset(self, graph, query):
        index = CPQxIndex.build(graph, k=2)
        expected = reference(query, graph)
        limited = index.evaluate(query, limit=2)
        assert limited <= expected
        assert len(limited) == min(2, len(expected))


class TestMaintenanceProperties:
    @_SETTINGS
    @given(
        graphs(),
        st.lists(
            st.tuples(
                st.integers(0, NUM_VERTICES - 1),
                st.integers(0, NUM_VERTICES - 1),
                st.integers(1, NUM_LABELS),
            ),
            min_size=1,
            max_size=5,
        ),
        queries(max_depth=2),
    )
    def test_updates_preserve_exactness(self, graph, updates, query):
        index = CPQxIndex.build(graph.copy(), k=2)
        for v, u, label in updates:
            if index.graph.has_edge(v, u, label):
                index.delete_edge(v, u, label)
            else:
                index.insert_edge(v, u, label)
        assert index.evaluate(query) == reference(query, index.graph)

    @_SETTINGS
    @given(graphs(), st.lists(st.tuples(
        st.integers(0, NUM_VERTICES - 1),
        st.integers(0, NUM_VERTICES - 1),
        st.integers(1, NUM_LABELS),
    ), min_size=1, max_size=4), queries(max_depth=2))
    def test_iacpqx_updates_preserve_exactness(self, graph, updates, query):
        index = InterestAwareIndex.build(graph.copy(), k=2, interests={(1, 2)})
        for v, u, label in updates:
            if index.graph.has_edge(v, u, label):
                index.delete_edge(v, u, label)
            else:
                index.insert_edge(v, u, label)
        assert index.evaluate(query) == reference(query, index.graph)


class TestSemanticsLaws:
    @_SETTINGS
    @given(graphs(), queries(max_depth=2), queries(max_depth=2))
    def test_conjunction_commutes(self, graph, q1, q2):
        assert reference(Conjunction(q1, q2), graph) == reference(
            Conjunction(q2, q1), graph
        )

    @_SETTINGS
    @given(graphs(), queries(max_depth=2))
    def test_identity_laws(self, graph, q):
        assert reference(Join(q, ID), graph) == reference(q, graph)
        assert reference(Join(ID, q), graph) == reference(q, graph)
        conj = reference(Conjunction(q, ID), graph)
        assert conj == {(v, u) for v, u in reference(q, graph) if v == u}

    @_SETTINGS
    @given(graphs(), queries(max_depth=2), queries(max_depth=2), queries(max_depth=2))
    def test_join_associates(self, graph, q1, q2, q3):
        assert reference(Join(Join(q1, q2), q3), graph) == reference(
            Join(q1, Join(q2, q3)), graph
        )

    @_SETTINGS
    @given(graphs(), queries())
    def test_answers_are_vertex_pairs(self, graph, q):
        vertices = set(graph.vertices())
        for v, u in reference(q, graph):
            assert v in vertices and u in vertices


class TestSizeTheorems:
    @_SETTINGS
    @given(graphs())
    def test_class_count_at_most_pair_count(self, graph):
        """|C| ≤ |P≤k| — the inequality behind Thm. 4.2."""
        index = CPQxIndex.build(graph, k=2)
        assert index.num_classes <= max(1, index.num_pairs)

    @_SETTINGS
    @given(graphs())
    def test_interest_index_never_larger(self, graph):
        """Thm. 5.1's direction: iaCPQx ≤ CPQx in pairs and classes."""
        full = CPQxIndex.build(graph, k=2)
        ia = InterestAwareIndex.build(graph, k=2, interests={(1, 1)})
        assert ia.num_pairs <= full.num_pairs
        assert ia.num_classes <= full.num_classes
