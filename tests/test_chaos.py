"""Deterministic fault-injection (chaos) suite for the PR 7 robustness layer.

Every test runs a workload under a seeded :class:`repro.serve.FaultInjector`
and asserts the two invariants ``docs/robustness.md`` promises:

* **identical answers** — every query that survives chaos returns exactly
  the serial ``execute_batch`` answers (and a chaotic parallel build is
  fingerprint-identical to the serial build);
* **bounded failure domains** — a fault costs one query a retry / one
  shard a recomputation / one worker a restart, never the batch, the
  build, or the session.

Fault decisions are pure functions of ``(seed, site, consultation
index)`` — see :mod:`repro.serve.faults` — so each scenario is picked by
seed to exercise a specific recovery path and repeats identically in CI
(the ``chaos`` job runs this file plus ``serve-bench --chaos``).
"""

from __future__ import annotations

import pickle
import time

import pytest

import repro.db.session as session_module
from repro.core.cpqx import CPQxIndex
from repro.core.parallel import index_fingerprint
from repro.core.partition import compute_partition_codes
from repro.db import GraphDatabase
from repro.errors import (
    QueryDiameterError,
    QueryTimeoutError,
    ServingError,
    SessionError,
)
from repro.graph.generators import random_graph
from repro.serve import (
    FaultInjector,
    ProcessServingPool,
    current_injector,
    inject,
    session_token,
)

QUERIES = [
    "l1 & l2",
    "(l1 . l2) & id",
    "(l1 . l1) & (l2 . l2)",
    "l1 . l2^-",
    "(l2 . l1) & l3",
    "l1 . l2",
    "(l2 . l2) & id",
    "l3 & (l1 . l1)",
]


@pytest.fixture(scope="module")
def chaos_graph():
    return random_graph(40, 220, 3, seed=13)


@pytest.fixture
def db(chaos_graph):
    database = GraphDatabase.from_graph(chaos_graph.copy()).build_index(
        engine="cpqx", k=2
    )
    yield database
    database.close()


def serial_pairs(database, queries):
    return [result.pairs() for result in database.execute_batch(queries)]


# ---------------------------------------------------------------------------
# the injector itself: deterministic, picklable, bounded
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_decision_sequence(self):
        a = FaultInjector(seed=42, rates={"worker.kill": 0.5})
        b = FaultInjector(seed=42, rates={"worker.kill": 0.5})
        assert [a.fire("worker.kill") for _ in range(32)] == [
            b.fire("worker.kill") for _ in range(32)
        ]

    def test_sites_draw_independent_streams(self):
        # Interleaving consultations of another site does not perturb a
        # site's own decision sequence.
        a = FaultInjector(seed=7, rates={"worker.kill": 0.5, "worker.drop": 0.5})
        interleaved = []
        for _ in range(16):
            a.fire("worker.drop")
            interleaved.append(a.fire("worker.kill"))
        b = FaultInjector(seed=7, rates={"worker.kill": 0.5, "worker.drop": 0.5})
        assert interleaved == [b.fire("worker.kill") for _ in range(16)]

    def test_pickled_copy_rederives_streams_from_start(self):
        parent = FaultInjector(seed=11, rates={"worker.error": 0.5})
        first_three = [parent.fire("worker.error") for _ in range(3)]
        clone = pickle.loads(pickle.dumps(parent))
        assert [clone.fire("worker.error") for _ in range(3)] == first_three

    def test_max_faults_caps_total(self):
        injector = FaultInjector(seed=0, rates={"worker.error": 1.0}, max_faults=2)
        fired = [injector.fire("worker.error") for _ in range(10)]
        assert fired.count(True) == 2
        assert injector.total_fired() == 2

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector(rates={"worker.sabotage": 0.5})

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultInjector(rates={"worker.kill": 1.5})

    def test_inject_installs_and_restores_ambient(self):
        assert current_injector() is None
        outer = FaultInjector(seed=1)
        inner = FaultInjector(seed=2)
        with inject(outer):
            assert current_injector() is outer
            with inject(inner):
                assert current_injector() is inner
            assert current_injector() is outer
        assert current_injector() is None


# ---------------------------------------------------------------------------
# process-mode serving under chaos: self-healing, identical answers
# ---------------------------------------------------------------------------
class TestProcessServingChaos:
    def test_killed_workers_restart_and_answers_match_serial(self, db):
        """seed=5 @ rate 0.4: each worker incarnation serves three queries
        then dies on its fourth — forcing 1-2 supervised restarts."""
        expected = serial_pairs(db, QUERIES)
        injector = FaultInjector(seed=5, rates={"worker.kill": 0.4})
        with inject(injector):
            batch = db.serve_batch(QUERIES, workers=2, mode="process")
        assert [result.pairs() for result in batch] == expected
        pool = db._proc_pool
        assert pool is not None and not pool.closed and not pool.degraded
        assert pool.restarts_used >= 1
        assert injector.notes.get("worker.restarted", 0) == pool.restarts_used

    def test_worker_errors_are_retried_to_success(self, db):
        """rate 1.0 with max_faults=1: each worker fails exactly its first
        query; every query drains to the serial answer within retries."""
        expected = serial_pairs(db, QUERIES[:5])
        injector = FaultInjector(seed=0, rates={"worker.error": 1.0}, max_faults=1)
        with inject(injector):
            batch = db.serve_batch(QUERIES[:5], workers=2, mode="process")
        assert [result.pairs() for result in batch] == expected
        assert injector.notes.get("query.retried", 0) >= 1
        assert db._proc_pool is not None and db._proc_pool.restarts_used == 0

    def test_dropped_replies_hit_deadline_and_redispatch(self, db):
        """seed=23 @ rate 0.6: workers swallow their third query; the
        deadline kills the hung worker and the query is re-dispatched."""
        expected = serial_pairs(db, QUERIES[:5])
        injector = FaultInjector(seed=23, rates={"worker.drop": 0.6})
        with inject(injector):
            batch = db.serve_batch(
                QUERIES[:5], workers=2, mode="process", timeout=1.0
            )
        assert [result.pairs() for result in batch] == expected
        assert db._proc_pool is not None and db._proc_pool.restarts_used >= 1

    def test_delayed_workers_are_tolerated(self, db):
        expected = serial_pairs(db, QUERIES[:5])
        injector = FaultInjector(
            seed=2, rates={"worker.delay": 1.0}, delay_seconds=0.01
        )
        with inject(injector):
            batch = db.serve_batch(QUERIES[:5], workers=2, mode="process")
        assert [result.pairs() for result in batch] == expected
        assert db._proc_pool is not None and db._proc_pool.restarts_used == 0


# ---------------------------------------------------------------------------
# the degradation ladder: budget exhaustion -> in-parent -> sticky thread
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_budget_exhaustion_finishes_in_parent(self, db):
        """restart_budget=0 + always-kill: both slots retire on first
        contact and the batch completes serially in the parent."""
        resolved = [db._resolve(query) for query in QUERIES[:4]]
        expected = [db._engine.evaluate(query) for query in resolved]
        injector = FaultInjector(seed=0, rates={"worker.kill": 1.0})
        pool = ProcessServingPool(workers=2, restart_budget=0)
        try:
            outcomes = pool.serve(
                db._engine, session_token(db._engine, 1), resolved, injector=injector
            )
            assert pool.degraded
            assert pool.restarts_used == 0
            assert injector.notes.get("pool.degraded", 0) == 1
            for outcome, answers in zip(outcomes, expected, strict=True):
                pairs, _stats = outcome
                assert frozenset(pairs) == answers
        finally:
            pool.close()

    def test_session_degradation_is_sticky_for_auto(self, db, monkeypatch):
        original = session_module.ProcessServingPool
        monkeypatch.setattr(
            session_module,
            "ProcessServingPool",
            lambda workers: original(workers, restart_budget=0),
        )
        expected = serial_pairs(db, QUERIES[:4])
        with inject(FaultInjector(seed=0, rates={"worker.kill": 1.0})):
            batch = db.serve_batch(QUERIES[:4], workers=2, mode="process")
        # The degraded batch still returned the serial answers...
        assert [result.pairs() for result in batch] == expected
        # ...the exhausted pool was retired, and auto now routes to threads.
        assert db._process_degraded
        assert db._proc_pool is None
        assert db._resolve_serve_mode("auto", 8, 64) == "thread"
        # An explicit mode="process" still gets a fresh pool/budget.
        healthy = db.serve_batch(QUERIES[:4], workers=2, mode="process")
        assert [result.pairs() for result in healthy] == expected

    def test_degradation_expires_after_cooldown(self, db, monkeypatch):
        """Regression (PR 9): degradation used to be a sticky boolean the
        session never cleared — one bad burst demoted ``mode="auto"`` to
        threads for the rest of the process lifetime."""
        original = session_module.ProcessServingPool
        monkeypatch.setattr(
            session_module,
            "ProcessServingPool",
            lambda workers: original(workers, restart_budget=0),
        )
        monkeypatch.setattr(session_module.os, "cpu_count", lambda: 4)
        db.degraded_cooldown = 0.1
        with inject(FaultInjector(seed=0, rates={"worker.kill": 1.0})):
            db.serve_batch(QUERIES[:4], workers=2, mode="process")
        assert db._process_degraded
        assert db._resolve_serve_mode("auto", 8, 64) == "thread"
        time.sleep(0.12)
        # The window expired on its own: auto may try processes again.
        assert not db._process_degraded
        assert db._resolve_serve_mode("auto", 8, 64) == "process"

    def test_successful_probe_clears_degradation_early(self, db, monkeypatch):
        original = session_module.ProcessServingPool
        monkeypatch.setattr(
            session_module,
            "ProcessServingPool",
            lambda workers: original(workers, restart_budget=0),
        )
        monkeypatch.setattr(session_module.os, "cpu_count", lambda: 4)
        db.degraded_cooldown = 3600.0  # would outlive the test run
        expected = serial_pairs(db, QUERIES[:4])
        with inject(FaultInjector(seed=0, rates={"worker.kill": 1.0})):
            db.serve_batch(QUERIES[:4], workers=2, mode="process")
        assert db._process_degraded
        monkeypatch.setattr(session_module, "ProcessServingPool", original)
        # An explicit healthy process batch (the breaker's half-open
        # probe) resets the window immediately — no hour-long demotion.
        healthy = db.serve_batch(QUERIES[:4], workers=2, mode="process")
        assert [result.pairs() for result in healthy] == expected
        assert not db._process_degraded
        assert db._resolve_serve_mode("auto", 8, 64) == "process"


# ---------------------------------------------------------------------------
# store-fault chaos: zero-copy shipping failures cost queries, not pools
# ---------------------------------------------------------------------------
class TestStoreChaos:
    def test_store_open_faults_recover_via_snapshot_fallback(self, db):
        """store.open @ 1.0, max_faults=2: the first worker maps fail,
        the batch demotes to pickled snapshots, and every answer still
        matches serial — the pool survives and the chain re-spools."""
        expected = serial_pairs(db, QUERIES)
        injector = FaultInjector(seed=5, rates={"store.open": 1.0}, max_faults=2)
        with inject(injector):
            batch = db.serve_batch(QUERIES, workers=2, mode="process", retries=2)
        assert [result.pairs() for result in batch] == expected
        pool = db._proc_pool
        assert pool is not None and not pool.closed and not pool.degraded
        assert pool.map_failures >= 1
        assert injector.notes.get("store.map_failed", 0) >= 1
        assert db._store_respools >= 1
        # The next batch spools a fresh chain at a never-mapped path and
        # serves zero-copy again, identically.
        again = db.serve_batch(QUERIES, workers=2, mode="process")
        assert [result.pairs() for result in again] == expected
        assert db._store_state is not None
        assert f"-r{db._store_respools}" in str(db._store_state.path)

    def test_store_delta_faults_on_chain_follow_recover(self, db):
        """A fault while following ``delta_of`` poisons the whole chain
        open; the batch must still answer identically via fallback."""
        expected = serial_pairs(db, QUERIES)
        # Serve once to spool the full generation, then update so the
        # next spool writes a delta chained onto it.
        first = db.serve_batch(QUERIES, workers=2, mode="process")
        assert [result.pairs() for result in first] == expected
        edge = next(iter(db.graph.triples()))
        db.update(remove_edges=[edge])
        db.update(add_edges=[edge])
        expected_after = serial_pairs(db, QUERIES)
        injector = FaultInjector(seed=5, rates={"store.delta": 1.0}, max_faults=2)
        with inject(injector):
            batch = db.serve_batch(QUERIES, workers=2, mode="process", retries=2)
        assert [result.pairs() for result in batch] == expected_after
        pool = db._proc_pool
        assert pool is not None and not pool.closed and not pool.degraded

    def test_real_delta_chain_corruption_surfaces_typed_and_respools(self, db):
        """Bytes actually flipped on disk: a worker opening the shipped
        delta chain hits the corrupted base file, the failure surfaces
        as ``CorruptIndexError`` slots (retries=0) and the session
        re-spools a fresh full generation the next batch serves from."""
        from repro.errors import CorruptIndexError

        expected = serial_pairs(db, QUERIES)
        first = db.serve_batch(QUERIES, workers=2, mode="process")
        assert [result.pairs() for result in first] == expected
        base_path = str(db._store_state.path)
        edge = next(iter(db.graph.triples()))
        db.update(remove_edges=[edge])
        db.update(add_edges=[edge])
        second = db.serve_batch(QUERIES, workers=2, mode="process")
        delta_path = str(db._store_state.path)
        assert delta_path != base_path  # the chain grew a delta
        assert [result.pairs() for result in second] == expected
        with open(base_path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 8)  # clobber the header
        # A fresh pool must map the chain from scratch and hit the
        # corruption (the live pool's workers already hold the mapping).
        db._proc_pool.close()
        db._proc_pool = None
        broken = db.serve_batch(
            QUERIES, workers=2, mode="process", retries=0, on_error="partial"
        )
        failed = [result for result in broken if result.failed]
        assert failed, "corrupted chain must surface typed failures"
        assert any(
            isinstance(err, CorruptIndexError)
            for result in failed
            for err in result.error.cause_chain()
        )
        assert db._store_respools >= 1
        # The session never serves the poisoned chain again: the next
        # batch spools a fresh full generation and answers identically.
        healed = db.serve_batch(QUERIES, workers=2, mode="process")
        assert [result.pairs() for result in healed] == expected
        assert str(db._store_state.path) != delta_path
        assert f"-r{db._store_respools}" in str(db._store_state.path)


# ---------------------------------------------------------------------------
# sharded builds under chaos: fingerprint-identical recovery
# ---------------------------------------------------------------------------
class TestBuildChaos:
    def test_shard_faults_recover_fingerprint_identical(self, chaos_graph):
        serial = CPQxIndex.build(chaos_graph.copy(), k=2, workers=1)
        injector = FaultInjector(seed=3, rates={"build.shard": 1.0}, max_faults=1)
        with inject(injector):
            chaotic = CPQxIndex.build(chaos_graph.copy(), k=2, workers=2)
        assert index_fingerprint(chaotic) == index_fingerprint(serial)
        assert injector.notes.get("shard.retried", 0) >= 1

    def test_partition_faults_fall_back_to_identical_serial(self, chaos_graph):
        """Faulted refinement workers fail the whole level sweep; the
        retry sees the same injected decisions, so the ladder lands on
        the serial loop — which is value-identical, class ids included.

        ``min_pairs=1`` forces the parallel branch on the test graph
        (it sits under :data:`~repro.core.partition.PARALLEL_MIN_PAIRS`).
        """
        serial = compute_partition_codes(chaos_graph, 2, workers=1)
        injector = FaultInjector(seed=3, rates={"partition.shard": 1.0})
        with inject(injector):
            chaotic = compute_partition_codes(
                chaos_graph, 2, workers=2, min_pairs=1
            )
        assert chaotic.class_of == serial.class_of
        assert chaotic.loop_classes == serial.loop_classes
        assert chaotic.level_class_counts == serial.level_class_counts
        assert injector.notes.get("partition.retried", 0) >= 1
        assert injector.notes.get("partition.serial_fallback", 0) >= 1


# ---------------------------------------------------------------------------
# thread-mode deadlines, retries, and the on_error policies
# ---------------------------------------------------------------------------
class TestThreadModeFaults:
    def test_timeout_raises_structured_query_timeout(self, db):
        real = db._serve_one

        def slow(query, limit):
            time.sleep(0.5)
            return real(query, limit)

        db._serve_one = slow
        with pytest.raises(QueryTimeoutError) as info:
            db.serve_batch(
                QUERIES[:2], workers=2, mode="thread", timeout=0.05, retries=0
            )
        assert info.value.timeout == 0.05
        assert info.value.attempts == 1
        assert info.value.query_index is not None

    def test_partial_policy_isolates_timed_out_slot(self, db):
        real = db._serve_one
        resolved = [db._resolve(query) for query in QUERIES[:4]]
        slow_query = resolved[0]

        def selective(query, limit):
            if query is slow_query:
                time.sleep(0.5)
            return real(query, limit)

        expected = serial_pairs(db, QUERIES[:4])
        db._serve_one = selective
        batch = db.serve_batch(
            resolved,
            workers=2,
            mode="thread",
            timeout=0.1,
            retries=1,
            on_error="partial",
        )
        assert len(batch) == 4
        assert len(batch.failures) == 1
        failed = batch[0]
        assert failed.failed
        assert isinstance(failed.error, QueryTimeoutError)
        assert failed.error.attempts == 2  # first dispatch + one retry
        with pytest.raises(QueryTimeoutError):
            failed.pairs()
        with pytest.raises(QueryTimeoutError):
            failed.count()
        for index in (1, 2, 3):
            assert batch[index].pairs() == expected[index]
        assert batch.total_answers == sum(len(p) for p in expected[1:])
        assert "1 failed" in batch.describe()

    def test_transient_errors_retried_to_success(self, db):
        real = db._serve_one
        seen: set[str] = set()

        def flaky(query, limit):
            key = repr(query)
            if key not in seen:
                seen.add(key)
                raise RuntimeError("transient backend hiccup")
            return real(query, limit)

        expected = serial_pairs(db, QUERIES[:4])
        db._serve_one = flaky
        batch = db.serve_batch(QUERIES[:4], workers=2, mode="thread", retries=2)
        assert [result.pairs() for result in batch] == expected

    def test_exhausted_retries_raise_with_cause_chain(self, db):
        def broken(query, limit):
            raise RuntimeError("backend permanently down")

        db._serve_one = broken
        with pytest.raises(ServingError) as info:
            db.serve_batch(QUERIES[:2], workers=2, mode="thread", retries=1)
        assert info.value.attempts == 2
        chain = info.value.cause_chain()
        assert isinstance(chain[-1], RuntimeError)

    def test_deterministic_library_errors_never_retried(self, db):
        calls = []

        def broken(query, limit):
            calls.append(query)
            raise QueryDiameterError("k too small for this query")

        db._serve_one = broken
        # Propagates as-is (not wrapped into ServingError, not retried).
        with pytest.raises(QueryDiameterError):
            db.serve_batch(QUERIES[:1], workers=1, mode="thread", retries=5)
        assert len(calls) == 1

    def test_parameter_validation(self, db):
        with pytest.raises(SessionError, match="timeout"):
            db.serve_batch(QUERIES[:1], timeout=0)
        with pytest.raises(SessionError, match="retries"):
            db.serve_batch(QUERIES[:1], retries=-1)
        with pytest.raises(SessionError, match="on_error"):
            db.serve_batch(QUERIES[:1], on_error="ignore")
