"""Tests for the explain() diagnostics entry point."""

from __future__ import annotations

import pytest

from repro.baselines.bfs import BFSEngine
from repro.baselines.path_index import PathIndex
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.graph.io import edges_from_strings
from repro.query.parser import parse


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b"])


class TestExplain:
    def test_cpqx_explain_has_all_sections(self, g):
        index = CPQxIndex.build(g, k=2)
        report = index.explain(parse("(a . b) & (b . a)", g.registry))
        assert "engine: CPQx" in report
        assert "Conj(Lookup" in report
        assert "class-conj=1" in report
        assert "thm-4.5 estimate" in report
        assert "α1=0" in report

    def test_join_query_counts_alpha1(self, g):
        index = CPQxIndex.build(g, k=2)
        report = index.explain(parse("a . b . a", g.registry))
        assert "joins=1" in report
        assert "α1=1" in report

    def test_pair_engine_explain_omits_estimate(self, g):
        report = BFSEngine(g).explain(parse("a . b", g.registry))
        assert "engine: BFS" in report
        assert "thm-4.5" not in report

    def test_path_index_explain(self, g):
        report = PathIndex.build(g, k=2).explain(parse("a & a", g.registry))
        assert "engine: Path" in report
        assert "pair-conj=1" in report

    def test_iacpqx_explain(self, g):
        index = InterestAwareIndex.build(g, k=2, interests={(1, 2)})
        report = index.explain(parse("a . b", g.registry))
        assert "engine: iaCPQx" in report
        assert "Lookup([1, 2])" in report

    def test_answer_count_reported(self, g):
        index = CPQxIndex.build(g, k=2)
        report = index.explain(parse("a", g.registry))
        assert "answers: 2" in report
