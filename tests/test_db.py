"""Tests for the ``repro.db`` session facade, registry, and lazy results."""

from __future__ import annotations

import pytest

from repro import GraphDatabase, available_engines, example_graph
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.db import (
    EngineSpec,
    ResultSet,
    engine_spec,
    register_engine,
    select_engine,
    unregister_engine,
)
from repro.db.auto import default_workload
from repro.errors import SessionError, UnknownEngineError
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference_evaluate

TRIPLES = [
    ("a", "b", "f"), ("b", "a", "f"), ("b", "c", "f"),
    ("c", "a", "f"), ("a", "d", "v"), ("c", "d", "v"),
]


@pytest.fixture
def db() -> GraphDatabase:
    return GraphDatabase.from_triples(TRIPLES)


class TestSessionLifecycle:
    def test_full_round_trip(self, tmp_path):
        """from_triples → build auto → query → update → save → open → query."""
        db = GraphDatabase.from_triples(TRIPLES)
        db.build_index(engine="auto")
        assert db.selection is not None
        assert db.engine_name in ("CPQx", "iaCPQx", "BFS")

        before = db.query("(f . f) & f^-")
        assert before.pairs() == reference_evaluate(
            parse("(f . f) & f^-", db.graph.registry), db.graph
        )

        db.update(add_edges=[("d", "a", "f")], remove_edges=[("a", "d", "v")])
        assert db.graph.has_edge("d", "a", db.graph.registry.id_of("f"))
        after = db.query("f . f").pairs()
        assert after == reference_evaluate(
            parse("f . f", db.graph.registry), db.graph
        )

        path = tmp_path / "session.idx"
        db.save(path)
        reopened = GraphDatabase.open(path)
        assert reopened.engine_name == db.engine_name
        assert reopened.query("f . f").pairs() == after

    def test_from_graph_and_dataset(self):
        db = GraphDatabase.from_graph(example_graph(), name="Gex")
        assert db.name == "Gex"
        db2 = GraphDatabase.from_dataset("robots", scale=0.1)
        assert db2.graph.num_vertices > 0

    def test_every_engine_reachable_and_agrees(self, db):
        reference = None
        for key in available_engines():
            session = GraphDatabase.from_graph(db.graph)
            session.build_index(engine=key, k=2)
            answers = session.query("(f . f) & f^-").pairs()
            if reference is None:
                reference = answers
            assert answers == reference, key

    def test_build_returns_self_for_chaining(self, db):
        assert db.build_index(engine="bfs") is db
        assert db.engine_name == "BFS"

    def test_engine_property_autobuilds(self, db):
        assert not db.is_built
        engine = db.engine  # triggers build_index(engine="auto")
        assert db.is_built and engine is db.engine

    def test_save_without_build_raises(self, db, tmp_path):
        with pytest.raises(SessionError, match="no index built"):
            db.save(tmp_path / "x.idx")

    def test_save_non_persistable_engine_raises(self, db, tmp_path):
        db.build_index(engine="bfs")
        with pytest.raises(SessionError, match="not persistable"):
            db.save(tmp_path / "x.idx")

    def test_open_restores_iacpqx(self, db, tmp_path):
        db.build_index(engine="iacpqx", k=2, interests="auto")
        path = tmp_path / "ia.idx"
        db.save(path)
        reopened = GraphDatabase.open(path)
        assert reopened.engine_name == "iaCPQx"
        assert isinstance(reopened.engine, InterestAwareIndex)

    def test_invalid_k_rejected(self, db):
        with pytest.raises(SessionError, match="k must be"):
            db.build_index(engine="cpqx", k=0)
        with pytest.raises(SessionError, match="k must be"):
            db.build_index(engine="cpqx", k="three")

    def test_non_auto_interest_string_rejected(self, db):
        """A stray string must not be silently character-split."""
        with pytest.raises(SessionError, match="interests must be"):
            db.build_index(engine="iacpqx", k=2, interests="f.g")

    def test_info_before_and_after_build(self, db):
        assert "none built" in db.info()
        db.build_index(engine="cpqx", k=2)
        info = db.info()
        assert "CPQx" in info and "graph:" in info


class TestUpdates:
    def test_incremental_engine_patches_in_place(self, db):
        db.build_index(engine="cpqx", k=2)
        index_before = db.engine
        db.update(add_edges=[("d", "b", "f")])
        assert db.engine is index_before  # patched, not rebuilt
        assert db.query("f . f").pairs() == reference_evaluate(
            parse("f . f", db.graph.registry), db.graph
        )

    def test_non_incremental_engine_rebuilds(self, db):
        db.build_index(engine="tentris")
        engine_before = db.engine
        db.update(add_edges=[("d", "b", "f")])
        assert db.engine is not engine_before  # rebuilt over mutated graph
        assert db.query("f . f").pairs() == reference_evaluate(
            parse("f . f", db.graph.registry), db.graph
        )

    def test_vertex_updates(self, db):
        db.build_index(engine="cpqx", k=2)
        db.update(add_vertices=["z"], add_edges=[("z", "a", "f")])
        assert ("z", "b") in db.query("f . f").pairs()
        db.update(remove_vertices=["z"])
        assert not db.graph.has_vertex("z")
        assert ("z", "b") not in db.query("f . f").pairs()

    def test_update_before_build_mutates_graph_only(self, db):
        db.update(add_edges=[("d", "b", "f")])
        assert not db.is_built
        assert db.graph.has_edge("d", "b", db.graph.registry.id_of("f"))


class TestResultSetLaziness:
    def test_no_materialization_before_consumption(self, db):
        db.build_index(engine="cpqx", k=2)
        calls = []
        engine = db.engine
        original = engine.evaluate

        def spying_evaluate(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        engine.evaluate = spying_evaluate
        try:
            result = db.query("(f . f) & f^-")
            assert not result.materialized
            assert calls == []  # constructing the ResultSet ran nothing
            pairs = result.pairs()
            assert len(calls) == 1 and result.materialized
            assert result.pairs() == pairs
            assert len(calls) == 1  # cached, not re-evaluated
        finally:
            engine.evaluate = original

    def test_count_pushdown_skips_materialization(self, db):
        db.build_index(engine="cpqx", k=2)
        result = db.query("(f . f) & f^-")
        count = result.count()
        assert not result.materialized  # class-size counting, no pairs
        assert count == len(result.pairs())

    def test_count_on_pattern_engine_materializes(self, db):
        db.build_index(engine="turbohom")
        result = db.query("(f . f) & f^-")
        count = result.count()
        assert result.materialized  # no COUNT pushdown on matchers
        assert count == len(result.pairs())

    def test_iteration_and_membership(self, db):
        db.build_index(engine="cpqx", k=2)
        result = db.query("f")
        listed = list(result)
        assert listed == sorted(result.pairs(), key=repr)
        assert listed[0] in result
        assert len(result) == len(listed)

    def test_limit_and_filters(self, db):
        db.build_index(engine="cpqx", k=2)
        limited = db.query("f", limit=2)
        assert len(limited) <= 2
        db.graph.set_vertex_data("a", kind="person")
        filtered = db.query(
            "f", source_filter=lambda data: data.get("kind") == "person"
        )
        assert filtered.sources() <= {"a"}

    def test_limit_applies_after_filters(self, db):
        """limit counts surviving answers, not pre-filter ones."""
        db.build_index(engine="cpqx", k=2)
        db.graph.set_vertex_data("c", kind="person")
        # 'c' sorts last among f-edge sources, so a limit-first
        # implementation would truncate it away before filtering.
        result = db.query(
            "f", limit=1,
            source_filter=lambda data: data.get("kind") == "person",
        )
        assert result.to_list() == [("c", "a")]

    def test_stats_reflect_one_evaluation_not_the_sum(self, db):
        """count() then materialization must not double the counters."""
        db.build_index(engine="cpqx", k=2)
        result = db.query("(f . f) & f^-")
        result.count()
        after_count = result.stats.lookups
        result.to_list()
        assert result.stats.lookups == after_count  # overwritten, not merged
        reference = db.query("(f . f) & f^-")
        reference.to_list()
        assert result.stats.lookups == reference.stats.lookups

    def test_explain_and_stats(self, db):
        db.build_index(engine="cpqx", k=2)
        result = db.query("(f . f) & f^-")
        report = result.explain()
        assert "engine: CPQx" in report and "plan:" in report
        result.pairs()
        assert result.stats.lookups > 0

    def test_explain_on_pattern_engine(self, db):
        db.build_index(engine="tentris")
        assert "Tentris" in db.query("f . f").explain()

    def test_resultset_equality(self, db):
        db.build_index(engine="cpqx", k=2)
        a = db.query("f . f")
        b = db.query("f . f")
        assert a == b
        assert a == b.pairs()


class TestExecuteBatch:
    def test_batch_evaluates_and_merges_stats(self, db):
        db.build_index(engine="cpqx", k=2)
        batch = db.execute_batch(["f", "f . f", "(f . f) & id"])
        assert len(batch) == 3
        assert all(result.materialized for result in batch)
        assert batch.total_answers == sum(len(r) for r in batch)
        assert batch.stats.lookups >= 3
        assert "3 queries" in batch.describe()


class TestEngineRegistry:
    def test_builtins_registered(self):
        keys = available_engines()
        for expected in ("cpqx", "iacpqx", "path", "iapath",
                         "turbohom", "tentris", "bfs"):
            assert expected in keys

    def test_lookup_is_case_insensitive(self):
        assert engine_spec("CPQx") is engine_spec("cpqx")
        assert engine_spec("iaCPQx").display_name == "iaCPQx"

    def test_unknown_engine_error_lists_known(self, db):
        with pytest.raises(UnknownEngineError, match="cpqx"):
            engine_spec("no-such-engine")
        with pytest.raises(UnknownEngineError):
            db.build_index(engine="no-such-engine")

    def test_register_unregister_custom_engine(self, db):
        spec = EngineSpec(
            key="custom-null", display_name="Null",
            builder=lambda graph, k=2: CPQxIndex.build(graph, k=k),
        )
        register_engine(spec)
        try:
            db.build_index(engine="custom-null", k=2)
            assert db.engine_name == "Null"
        finally:
            unregister_engine("custom-null")
        with pytest.raises(UnknownEngineError):
            engine_spec("custom-null")

    def test_duplicate_registration_rejected(self):
        spec = EngineSpec(key="cpqx", display_name="X", builder=lambda g: None)
        with pytest.raises(ValueError, match="already registered"):
            register_engine(spec)


class TestAutoSelection:
    def test_small_graph_selects_full_cpqx(self, db):
        selection = select_engine(db.graph)
        assert selection.engine == "cpqx"
        assert selection.k >= 1
        assert "Thm. 4.3" in selection.rationale

    def test_tight_ceiling_falls_back_to_interests(self, db):
        selection = select_engine(db.graph, work_ceiling=0.0)
        assert selection.engine == "iacpqx"
        assert selection.interests
        assert "OOM regime" in selection.rationale

    def test_caller_workload_drives_k(self, db):
        workload = [parse("f . f . f", db.graph.registry)]
        selection = select_engine(db.graph, workload=workload)
        assert selection.k == 3
        assert selection.estimates["workload_synthesized"] is False

    def test_auto_build_uses_selection(self, db):
        db.build_index(engine="auto", workload=[parse("f . f", db.graph.registry)])
        assert db.selection is not None
        assert db.engine_name == "CPQx"
        assert db.selection.describe() in db.info()

    def test_auto_interests_with_named_engine(self, db):
        db.build_index(engine="iacpqx", k=2, interests="auto")
        assert db.selection is None  # explicit engine: no auto routing record
        assert db.engine.interests  # but interests were derived

    def test_default_workload_nonempty(self, db):
        assert default_workload(db.graph)


class TestDeprecationShims:
    def test_old_names_still_importable(self):
        import repro

        for name in ("CPQxIndex", "InterestAwareIndex", "PathIndex",
                     "InterestAwarePathIndex", "BFSEngine", "TurboHomEngine",
                     "TentrisEngine", "parse", "evaluate"):
            assert hasattr(repro, name)

    def test_old_entry_points_still_work(self):
        from repro import CPQxIndex, example_graph, parse

        graph = example_graph()
        index = CPQxIndex.build(graph, k=2)
        answers = index.evaluate(parse("(f . f) & f^-", graph.registry))
        assert answers
