"""Opt-in larger-scale smoke tests (REPRO_RUN_SLOW=1).

The default suite stays laptop-fast on tiny graphs; these runs exercise
the full-size dataset stand-ins (scale 1.0) to catch issues that only
appear at volume — quadratic hot spots, memory churn, degenerate
partitions.  Enable with::

    REPRO_RUN_SLOW=1 pytest tests/test_scale_smoke.py -q
"""

from __future__ import annotations

import os

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.validate import quick_verify
from repro.graph.datasets import load_dataset
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries, workload_interests

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 for full-scale smoke tests",
)


@slow
class TestFullScaleBuilds:
    def test_robots_full_scale_cpqx(self):
        graph = load_dataset("robots", scale=1.0, seed=7)
        index = CPQxIndex.build(graph, k=2)
        assert index.num_classes > 0
        assert quick_verify(index, sample=40).ok
        for wq in random_template_queries(graph, "S", count=3, seed=7):
            assert index.evaluate(wq.query) == reference(wq.query, graph)

    def test_youtube_full_scale_iacpqx(self):
        graph = load_dataset("youtube", scale=1.0, seed=7)
        workload = []
        for template in ("S", "C2", "T"):
            workload.extend(random_template_queries(graph, template, count=3, seed=7))
        interests = frozenset(workload_interests(workload, 2))
        index = InterestAwareIndex.build(graph, k=2, interests=interests)
        assert quick_verify(index, sample=40).ok
        for wq in workload[:5]:
            assert index.evaluate(wq.query) == reference(wq.query, graph)

    def test_wikidata_standin_iacpqx(self):
        graph = load_dataset("wikidata", scale=1.0, seed=7)
        workload = random_template_queries(graph, "C2", count=5, seed=7)
        interests = frozenset(workload_interests(workload, 2))
        index = InterestAwareIndex.build(graph, k=2, interests=interests)
        assert index.num_pairs > 0
        for wq in workload[:3]:
            assert index.evaluate(wq.query) == reference(wq.query, graph)
