"""Tests for the Theorem 4.2-4.6 cost model."""

from __future__ import annotations

import pytest

from repro.core.costmodel import (
    construction_estimate,
    explain_index,
    index_size_estimate,
    query_estimate,
    update_estimate,
)
from repro.core.cpqx import CPQxIndex
from repro.graph.generators import random_graph
from repro.query.parser import parse


@pytest.fixture(scope="module")
def setting():
    graph = random_graph(30, 90, 3, seed=51)
    return graph, CPQxIndex.build(graph, k=2)


class TestSizeModel:
    def test_cpqx_smaller_than_path_when_gamma_high(self):
        estimate = index_size_estimate(gamma=4.0, num_classes=100, num_pairs=1000)
        assert estimate.work < estimate.inputs["path_index_equivalent"]

    def test_equal_when_no_compression(self):
        # |C| == |P| and γ = 1: both models degenerate similarly
        estimate = index_size_estimate(gamma=1.0, num_classes=500, num_pairs=500)
        assert estimate.work == pytest.approx(2 * 500)
        assert estimate.inputs["path_index_equivalent"] == pytest.approx(500)

    def test_monotone_in_pairs(self):
        small = index_size_estimate(2.0, 50, 100)
        large = index_size_estimate(2.0, 50, 1000)
        assert large.work > small.work


class TestConstructionModel:
    def test_monotone_in_k(self):
        k2 = construction_estimate(2, 8, 1000, 2.0, 200)
        k3 = construction_estimate(3, 8, 1000, 2.0, 200)
        assert k3.work > k2.work

    def test_components_reported(self):
        estimate = construction_estimate(2, 8, 1000, 2.0, 200)
        assert estimate.inputs["partition_work"] > 0
        assert estimate.inputs["assembly_work"] > 0


class TestQueryModel:
    def test_conjunction_only_regime(self, setting):
        graph, index = setting
        query = parse("(l1 . l2) & (l2 . l3)", graph.registry)
        estimate = query_estimate(query, index)
        assert estimate.inputs["alpha1"] == 0
        assert estimate.inputs["alpha2"] == 1
        # class-count-scale work, far below pair-level work
        assert estimate.work <= index.num_classes

    def test_join_regime(self, setting):
        graph, index = setting
        query = parse("l1 . l2 . l3", graph.registry)
        estimate = query_estimate(query, index)
        assert estimate.inputs["alpha1"] == 1  # one split-induced join
        assert estimate.work > 0

    def test_conjunction_estimated_cheaper_than_join(self, setting):
        """The Fig. 6 story in the model: S queries ≪ C4 queries."""
        graph, index = setting
        s_query = parse("(l1 . l2) & (l2 . l1)", graph.registry)
        c4_query = parse("l1 . l2 . l2 . l1", graph.registry)
        assert query_estimate(s_query, index).work < query_estimate(
            c4_query, index
        ).work

    def test_deep_joins_cost_more(self, setting):
        graph, index = setting
        shallow = parse("l1 . l2 . l3", graph.registry)
        deep = parse("l1 . l2 . l3 . l1 . l2 . l3", graph.registry)
        assert query_estimate(deep, index).work > query_estimate(
            shallow, index
        ).work

    def test_blowup_capped_by_vertex_square(self, setting):
        graph, index = setting
        query = parse(" . ".join(["l1"] * 12), graph.registry)
        estimate = query_estimate(query, index)
        cap = graph.num_vertices ** 2
        alpha = estimate.inputs["alpha1"] + estimate.inputs["alpha2"]
        from math import log2

        assert estimate.work <= alpha * cap * max(1.0, log2(cap)) * 1.01


class TestUpdateModel:
    def test_monotone_in_affected(self):
        small = update_estimate(8, 10, 1000, 200)
        large = update_estimate(8, 100, 1000, 200)
        assert large.work > small.work

    def test_far_below_reconstruction(self, setting):
        graph, index = setting
        rebuild = construction_estimate(
            index.k, graph.max_degree(), index.num_pairs, index.gamma(),
            index.num_classes,
        )
        update = update_estimate(
            graph.max_degree(), 20, index.num_pairs, index.num_classes
        )
        assert update.work < rebuild.work / 2


class TestExplain:
    def test_explain_index(self, setting):
        _, index = setting
        info = explain_index(index)
        assert info["classes"] == index.num_classes
        assert info["pairs"] == index.num_pairs
        assert info["size_score"] <= info["path_size_score"] + info["pairs"]
        assert info["construction_score"] > 0
