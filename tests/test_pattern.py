"""Unit tests for CPQ → pattern-graph compilation (Fig. 2)."""

from __future__ import annotations

from repro.baselines.pattern import cpq_to_pattern
from repro.query.ast import EdgeLabel, ID, sequence_query


class TestAtoms:
    def test_single_label(self):
        pattern = cpq_to_pattern(EdgeLabel(1))
        assert pattern.num_vars == 2
        assert pattern.edges == ((pattern.source, pattern.target, 1),)

    def test_inverse_label_normalized(self):
        pattern = cpq_to_pattern(EdgeLabel(-1))
        assert pattern.edges == ((pattern.target, pattern.source, 1),)

    def test_bare_identity(self):
        pattern = cpq_to_pattern(ID)
        assert pattern.source == pattern.target
        assert pattern.edges == ()


class TestJoin:
    def test_chain_introduces_midpoints(self):
        pattern = cpq_to_pattern(sequence_query((1, 2, 3)))
        assert pattern.num_vars == 4
        assert len(pattern.edges) == 3
        labels = sorted(label for _, _, label in pattern.edges)
        assert labels == [1, 2, 3]

    def test_chain_is_connected_path(self):
        pattern = cpq_to_pattern(sequence_query((1, 1)))
        adjacency = pattern.adjacency()
        # source and target have degree 1, the midpoint degree 2
        degrees = sorted(len(adjacency[v]) for v in range(pattern.num_vars))
        assert degrees == [1, 1, 2]


class TestConjunction:
    def test_shares_endpoints(self):
        q = sequence_query((1, 2)) & EdgeLabel(3)
        pattern = cpq_to_pattern(q)
        # 2-path plus a parallel edge: 3 variables, 3 edges
        assert pattern.num_vars == 3
        assert len(pattern.edges) == 3
        assert (pattern.source, pattern.target, 3) in pattern.edges

    def test_duplicate_edges_collapse(self):
        q = EdgeLabel(1) & EdgeLabel(1)
        pattern = cpq_to_pattern(q)
        assert len(pattern.edges) == 1


class TestIdentityMerging:
    def test_conjunction_with_id_merges_endpoints(self):
        q = sequence_query((1, 2)) & ID
        pattern = cpq_to_pattern(q)
        assert pattern.source == pattern.target
        assert pattern.num_vars == 2  # merged endpoint + midpoint

    def test_triangle_pattern(self):
        q = sequence_query((1, 1, 1)) & ID
        pattern = cpq_to_pattern(q)
        assert pattern.source == pattern.target
        assert pattern.num_vars == 3
        assert len(pattern.edges) == 3

    def test_self_loop_edge(self):
        q = EdgeLabel(1) & ID
        pattern = cpq_to_pattern(q)
        assert pattern.edges == ((pattern.source, pattern.source, 1),)
        adjacency = pattern.adjacency()
        assert adjacency[pattern.source] == [(pattern.source, 1, True)]

    def test_join_of_identities(self):
        pattern = cpq_to_pattern(ID >> ID)
        assert pattern.source == pattern.target
        assert pattern.num_vars == 1


class TestStarShape:
    def test_star_template_pattern(self):
        """St: three out-and-back spokes share one center = source = target."""
        spokes = [EdgeLabel(i) >> EdgeLabel(-i) for i in (1, 2, 3)]
        q = ((spokes[0] & spokes[1]) & spokes[2]) & ID
        pattern = cpq_to_pattern(q)
        assert pattern.source == pattern.target
        assert pattern.num_vars == 4  # center + 3 spoke tips
        assert len(pattern.edges) == 3
        for a, _, _ in pattern.edges:
            assert a == pattern.source  # all spokes leave the center
