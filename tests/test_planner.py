"""Unit tests for plan construction (Sec. IV-D, Fig. 4)."""

from __future__ import annotations

import pytest

from repro.errors import QueryDiameterError
from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup, plan_lookups
from repro.plan.planner import build_plan, greedy_splitter, interest_splitter
from repro.query.ast import EdgeLabel, ID, sequence_query


def _labels(*ids):
    return [EdgeLabel(i) for i in ids]


class TestGreedySplitter:
    def test_short_sequence_untouched(self):
        assert greedy_splitter(2)((1, 2)) == [(1, 2)]

    def test_figure4_split(self):
        """⟨l1,l2,l3⟩ with k=2 → ⟨l1,l2⟩ then ⟨l3⟩ (Fig. 4)."""
        assert greedy_splitter(2)((1, 2, 3)) == [(1, 2), (3,)]

    def test_k1_splits_fully(self):
        assert greedy_splitter(1)((1, 2, 3)) == [(1,), (2,), (3,)]

    def test_k_zero_rejected(self):
        with pytest.raises(QueryDiameterError):
            greedy_splitter(0)


class TestInterestSplitter:
    def test_prefers_longest_interest_prefix(self):
        split = interest_splitter(frozenset({(1, 2), (3,)}), k=2)
        assert split((1, 2, 3)) == [(1, 2), (3,)]

    def test_falls_back_to_single_labels(self):
        split = interest_splitter(frozenset({(9, 9)}), k=2)
        assert split((1, 2, 3)) == [(1,), (2,), (3,)]

    def test_mixed(self):
        split = interest_splitter(frozenset({(2, 3)}), k=2)
        assert split((1, 2, 3)) == [(1,), (2, 3)]


class TestSequencePlans:
    def test_single_lookup(self):
        plan = build_plan(sequence_query((1, 2)), greedy_splitter(2))
        assert plan == Lookup((1, 2))

    def test_chain_becomes_left_deep_joins(self):
        plan = build_plan(sequence_query((1, 2, 3, 4, 5)), greedy_splitter(2))
        assert isinstance(plan, JoinNode)
        assert [l.seq for l in plan_lookups(plan)] == [(1, 2), (3, 4), (5,)]


class TestIdentityRules:
    def test_join_with_id_removed(self):
        """Optimization 2: q ∘ id = q."""
        q = sequence_query((1, 2)) >> ID
        plan = build_plan(q, greedy_splitter(2))
        assert plan == Lookup((1, 2))

    def test_id_join_id(self):
        plan = build_plan(ID >> ID, greedy_splitter(2))
        assert isinstance(plan, IdentityAll)

    def test_conj_with_id_fuses_into_lookup(self):
        q = sequence_query((1, 2)) & ID
        plan = build_plan(q, greedy_splitter(2))
        assert plan == Lookup((1, 2), with_identity=True)

    def test_conj_with_id_fuses_into_join(self):
        q = sequence_query((1, 2, 3)) & ID
        plan = build_plan(q, greedy_splitter(2))
        assert isinstance(plan, JoinNode)
        assert plan.with_identity

    def test_conj_with_id_fuses_into_conjunction(self):
        q = (EdgeLabel(1) & EdgeLabel(2)) & ID
        plan = build_plan(q, greedy_splitter(2))
        assert isinstance(plan, ConjNode)
        assert plan.with_identity

    def test_id_on_left_also_fuses(self):
        q = ID & sequence_query((1, 2))
        plan = build_plan(q, greedy_splitter(2))
        assert plan == Lookup((1, 2), with_identity=True)

    def test_id_conj_id(self):
        plan = build_plan(ID & ID, greedy_splitter(2))
        assert isinstance(plan, IdentityAll)

    def test_bare_id(self):
        plan = build_plan(ID, greedy_splitter(2))
        assert isinstance(plan, IdentityAll)

    def test_nested_identity_fusion(self):
        """(q1 & (q2 & id)) fuses only the inner conjunction."""
        q = EdgeLabel(1) & (sequence_query((2, 3)) & ID)
        plan = build_plan(q, greedy_splitter(2))
        assert isinstance(plan, ConjNode)
        assert not plan.with_identity
        assert plan.right == Lookup((2, 3), with_identity=True)


class TestGeneralShapes:
    def test_conjunction_of_sequences(self):
        q = sequence_query((1, 2)) & sequence_query((3, 4))
        plan = build_plan(q, greedy_splitter(2))
        assert plan == ConjNode(Lookup((1, 2)), Lookup((3, 4)))

    def test_join_of_conjunctions(self):
        q = (EdgeLabel(1) & EdgeLabel(2)) >> (EdgeLabel(3) & EdgeLabel(4))
        plan = build_plan(q, greedy_splitter(2))
        assert isinstance(plan, JoinNode)
        assert isinstance(plan.left, ConjNode)
        assert isinstance(plan.right, ConjNode)

    def test_join_of_sequence_chunks_not_merged_across_conjunction(self):
        """A conjunction interrupts chain recognition."""
        q = (EdgeLabel(1) >> (EdgeLabel(2) & EdgeLabel(3))) >> EdgeLabel(4)
        plan = build_plan(q, greedy_splitter(2))
        lookups = [l.seq for l in plan_lookups(plan)]
        assert (2,) in lookups and (3,) in lookups

    def test_describe_renders(self):
        q = (sequence_query((1, 2)) & ID) >> EdgeLabel(3)
        plan = build_plan(q, greedy_splitter(2))
        text = plan.describe()
        assert "Join" in text and "Lookup" in text and "∩id" in text
