"""Unit tests for lazy CPQx maintenance (Sec. IV-E)."""

from __future__ import annotations

import random

import pytest

from repro.errors import MaintenanceError
from repro.core.cpqx import CPQxIndex
from repro.core.maintenance import affected_pairs, reclassify
from repro.core.paths import enumerate_sequences, invert_sequences
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


def build(lines, k=2):
    graph = edges_from_strings(lines)
    return CPQxIndex.build(graph, k=k)


def assert_index_consistent(index):
    """Structural invariants that must survive any update sequence."""
    per_pair = invert_sequences(enumerate_sequences(index.graph, index.k))
    decode = index.graph.interner.decode_pair
    # 1. the index covers exactly the reachable pairs
    assert {decode(code) for code in index._class_of} == set(per_pair)
    # 2. classes are L≤k-uniform and loop-uniform, and Il2c is exact
    for class_id, members in index._ic2p.items():
        assert members, f"empty class {class_id} not collected"
        seqs = index._class_sequences[class_id]
        for code, pair in zip(members.iter_codes(), members):
            assert per_pair[pair] == seqs
            assert index._class_of[code] == class_id
        flags = {p[0] == p[1] for p in members}
        assert len(flags) == 1
        assert (class_id in index._loop_classes) == flags.pop()
        for seq in seqs:
            assert class_id in index._il2c[seq]
    # 3. no dangling postings
    for seq, classes in index._il2c.items():
        for class_id in classes:
            assert seq in index._class_sequences[class_id]


class TestAffectedPairs:
    def test_covers_paths_through_edge(self):
        graph = edges_from_strings(["0 1 a", "1 2 a", "2 3 a"])
        affected = affected_pairs(graph, 1, 2, 2)
        # the 2-paths through (1,2): (0,2), (1,3) and the edge pair itself
        assert {(1, 2), (0, 2), (1, 3), (2, 1), (2, 0), (3, 1)} <= affected

    def test_radius_bounded(self):
        graph = edges_from_strings([f"{i} {i+1} a" for i in range(8)])
        affected = affected_pairs(graph, 3, 4, 2)
        # (2,4) rides the 2-path 2→3→4 through the edge; (2,5) would need
        # a 3-path, out of reach at k=2; (0,8) is far away entirely
        assert (2, 4) in affected
        assert (2, 5) not in affected
        assert (0, 8) not in affected
        affected3 = affected_pairs(graph, 3, 4, 3)
        assert (2, 5) in affected3


class TestEdgeDeletion:
    def test_delete_removes_answers(self):
        index = build(["0 1 a", "1 2 a"])
        assert (0, 2) in index.evaluate(parse("a . a", index.graph.registry))
        index.delete_edge(1, 2, "a")
        assert index.evaluate(parse("a . a", index.graph.registry)) == frozenset()
        assert_index_consistent(index)

    def test_delete_keeps_alternative_paths(self):
        index = build(["0 1 a", "1 2 b", "0 3 a", "3 2 b"])
        query = parse("a . b", index.graph.registry)
        index.delete_edge(0, 1, "a")
        assert (0, 2) in index.evaluate(query)
        assert_index_consistent(index)

    def test_delete_missing_edge_raises(self):
        index = build(["0 1 a"])
        with pytest.raises(MaintenanceError):
            index.delete_edge(0, 1, "b")

    def test_pairs_dropped_when_disconnected(self):
        index = build(["0 1 a"])
        index.delete_edge(0, 1, "a")
        assert index.num_pairs == 0
        assert index.num_classes == 0
        assert_index_consistent(index)


class TestEdgeInsertion:
    def test_insert_adds_answers(self):
        index = build(["0 1 a"])
        index.insert_edge(1, 2, "a")
        assert (0, 2) in index.evaluate(parse("a . a", index.graph.registry))
        assert_index_consistent(index)

    def test_insert_new_label(self):
        index = build(["0 1 a"])
        index.insert_edge(0, 1, "brand_new")
        lid = index.graph.registry.id_of("brand_new")
        assert index.evaluate(parse("brand_new", index.graph.registry)) == {(0, 1)}
        assert index.lookup((lid,)).classes
        assert_index_consistent(index)

    def test_insert_refines_not_merges(self):
        """Lazy maintenance never merges into existing classes."""
        index = build(["0 1 a", "5 6 a"])
        before_classes = set(index.classes())
        index.insert_edge(2, 3, "a")
        # (2,3) is bisimilar to (0,1)/(5,6) but must land in a NEW class
        new_class = index.class_of((2, 3))
        assert new_class not in before_classes
        assert_index_consistent(index)

    def test_roundtrip_delete_insert_preserves_answers(self):
        lines = ["0 1 a", "1 2 b", "2 0 a", "0 0 b", "2 3 b"]
        index = build(lines)
        fresh = build(lines)
        queries = [
            parse(text, index.graph.registry)
            for text in ("a", "a . b", "(a . b) & id", "(a . a^-) & (b . b^-)")
        ]
        index.delete_edge(1, 2, "b")
        index.insert_edge(1, 2, "b")
        for query in queries:
            assert index.evaluate(query) == fresh.evaluate(query)
        assert_index_consistent(index)


class TestChurn:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_churn_stays_correct(self, seed):
        graph = random_graph(20, 50, 3, seed=seed)
        index = CPQxIndex.build(graph.copy(), k=2)
        rng = random.Random(seed)
        for _ in range(12):
            triples = sorted(index.graph.triples(), key=repr)
            if triples and rng.random() < 0.5:
                index.delete_edge(*rng.choice(triples))
            else:
                v, u = rng.randrange(20), rng.randrange(20)
                lab = rng.randint(1, 3)
                if not index.graph.has_edge(v, u, lab):
                    index.insert_edge(v, u, lab)
        assert_index_consistent(index)
        for template in ("C2", "T", "S", "Ti"):
            for wq in random_template_queries(index.graph, template, count=2, seed=seed):
                assert index.evaluate(wq.query) == reference(wq.query, index.graph)

    def test_churned_index_may_be_finer_but_never_coarser(self):
        """After churn, class count ≥ fresh build's (Table VII's cause)."""
        graph = random_graph(18, 45, 3, seed=3)
        index = CPQxIndex.build(graph.copy(), k=2)
        rng = random.Random(3)
        triples = sorted(index.graph.triples(), key=repr)
        for edge in rng.sample(triples, 6):
            index.delete_edge(*edge)
        for edge in rng.sample(triples, 6):
            if not index.graph.has_edge(*edge):
                index.insert_edge(*edge)
        fresh = CPQxIndex.build(index.graph.copy(), k=2)
        assert index.num_pairs == fresh.num_pairs
        assert index.num_classes >= fresh.num_classes


class TestReclassifyDirect:
    def test_noop_on_unchanged_pairs(self):
        index = build(["0 1 a", "1 2 b"])
        before = dict(index._class_of)
        reclassify(index, {(0, 1), (1, 2)})
        assert index._class_of == before
