"""Per-rule golden tests for the ``repro lint`` static analyzer.

Each rule gets a violating fixture and a clean fixture, written as
miniature trees under ``tmp_path`` whose *relative* layout mirrors the
real package (``repro/core/...``, ``repro/db/...``): rules scope by
posix path suffix, so the fixtures scope exactly like the real tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.baseline import load_baseline, subtract_baseline, write_baseline
from repro.errors import ReproError


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "proj"
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def rules_hit(tmp_path: Path, files: dict[str, str]) -> list[str]:
    return [f.rule for f in run_lint([make_tree(tmp_path, files)])]


# ----------------------------------------------------------------------
# RPR001 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_memo_attr_outside_executor_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/other.py": """
                def steal(engine):
                    return engine._memo_results
            """,
        })
        assert hits == ["RPR001"]

    def test_token_cache_call_outside_executor_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/other.py": """
                def steal(engine):
                    return engine._token_cache("_memo_results", 8)
            """,
        })
        assert hits == ["RPR001"]

    def test_executor_itself_exempt(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/executor.py": """
                class EngineBase:
                    def _result_cache(self):
                        return self._token_cache("_memo_results", 8)
            """,
        })
        assert hits == []

    def test_session_state_write_outside_writers_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/db/session.py": """
                class GraphDatabase:
                    def __init__(self):
                        self._engine = None

                    def _adopt(self, other):
                        self._spec = other
                        self._engine_gen += 1

                    def hot_swap(self, engine):
                        self._engine = engine
            """,
        })
        assert hits == ["RPR001"]

    def test_session_writers_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/db/session.py": """
                class GraphDatabase:
                    def __init__(self):
                        self._engine = None
                        self._build_args = ()

                    def _adopt(self, other):
                        self._engine = other
                        self._engine_gen += 1
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# RPR002 — spawn safety
# ----------------------------------------------------------------------
class TestSpawnSafety:
    def test_os_fork_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/forky.py": """
                import os

                def daemonize():
                    return os.fork()
            """,
        })
        assert hits == ["RPR002"]

    def test_imported_fork_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/forky.py": """
                from os import fork

                def daemonize():
                    return fork()
            """,
        })
        assert hits == ["RPR002"]

    def test_default_context_pool_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/pooly.py": """
                import multiprocessing

                def build_pool():
                    return multiprocessing.Pool(4)
            """,
        })
        assert hits == ["RPR002"]

    def test_imported_process_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/pooly.py": """
                from multiprocessing import Process

                def spawn_worker(target):
                    return Process(target=target)
            """,
        })
        assert hits == ["RPR002"]

    def test_explicit_context_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/pooly.py": """
                import multiprocessing

                def build_pool():
                    context = multiprocessing.get_context("spawn")
                    return context.Pool(2), context.Process(target=print)
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# RPR003 — snapshot/pickle safety
# ----------------------------------------------------------------------
class TestSnapshotSafety:
    def test_engine_lock_without_getstate_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/myengine.py": """
                import threading

                class MyEngine(EngineBase):
                    def __init__(self):
                        self._lock = threading.Lock()
            """,
        })
        assert hits == ["RPR003"]

    def test_transitive_engine_subclass_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/base.py": """
                class Middle(EngineBase):
                    pass
            """,
            "repro/core/myengine.py": """
                import threading

                class Leaf(Middle):
                    def __init__(self):
                        self._cache = LRUCache(8, None)
            """,
        })
        assert hits == ["RPR003"]

    def test_getstate_dropping_lock_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/myengine.py": """
                import threading

                class MyEngine(EngineBase):
                    def __init__(self):
                        self._lock = threading.Lock()

                    def __getstate__(self):
                        state = self.__dict__.copy()
                        state.pop("_lock", None)
                        return state
            """,
        })
        assert hits == []

    def test_getstate_missing_drop_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/myengine.py": """
                import threading

                class MyEngine(EngineBase):
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cache = LRUCache(8, None)

                    def __getstate__(self):
                        state = self.__dict__.copy()
                        state.pop("_cache", None)
                        return state
            """,
        })
        assert hits == ["RPR003"]

    def test_never_pickled_class_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/pool.py": """
                import threading

                class ServingPool:
                    def __init__(self):
                        self._lock = threading.Lock()
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# RPR004 — deterministic iteration
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_set_loop_with_append_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/partition.py": """
                def collect(pairs: set) -> list:
                    out = []
                    for pair in pairs:
                        out.append(pair)
                    return out
            """,
        })
        assert hits == ["RPR004"]

    def test_sorted_loop_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/partition.py": """
                def collect(pairs: set) -> list:
                    out = []
                    for pair in sorted(pairs, key=repr):
                        out.append(pair)
                    return out
            """,
        })
        assert hits == []

    def test_list_comprehension_over_set_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/paths.py": """
                def collect(codes: frozenset) -> list:
                    return [code for code in codes]
            """,
        })
        assert hits == ["RPR004"]

    def test_list_call_on_set_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/cpqx.py": """
                def collect():
                    members = {1, 2, 3}
                    return list(members)
            """,
        })
        assert hits == ["RPR004"]

    def test_first_seen_id_assignment_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/interest.py": """
                def number(seqs: set) -> dict:
                    ids = {}
                    for seq in seqs:
                        ids.setdefault(seq, len(ids))
                    return ids
            """,
        })
        assert hits == ["RPR004"]

    def test_cross_module_return_type_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/paths.py": """
                def targets_by_seq(source) -> dict[str, set[int]]:
                    return {}
            """,
            "repro/core/parallel.py": """
                def shard(column, source):
                    for seq, targets in targets_by_seq(source).items():
                        column.extend(2 * t for t in targets)
            """,
        })
        assert hits == ["RPR004"]

    def test_order_insensitive_sink_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/partition.py": """
                def group(pairs: set) -> dict:
                    buckets = {}
                    for pair in pairs:
                        buckets.setdefault(pair[0], set()).add(pair)
                    return buckets
            """,
        })
        assert hits == []

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/query/planner.py": """
                def collect(pairs: set) -> list:
                    return [pair for pair in pairs]
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# RPR005 — sorted-column integrity
# ----------------------------------------------------------------------
class TestPairSetIntegrity:
    def test_private_attr_access_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/validate.py": """
                def peek(pairset):
                    return pairset._codes
            """,
        })
        assert hits == ["RPR005"]

    def test_direct_construction_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/validate.py": """
                def build(codes, interner):
                    return PairSet(codes, interner)
            """,
        })
        assert hits == ["RPR005"]

    def test_raw_array_outside_sanctioned_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/baselines/rogue.py": """
                from array import array

                def build():
                    return array("q", [1, 2, 3])
            """,
        })
        assert hits == ["RPR005"]

    def test_raw_array_in_sanctioned_module_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/paths.py": """
                from array import array

                def build(codes):
                    return array("q", sorted(codes))
            """,
        })
        assert hits == []

    def test_column_mutation_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/maintenance.py": """
                def patch(index):
                    index.codes.append(42)
            """,
        })
        assert hits == ["RPR005"]

    def test_pairset_home_exempt(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/pairset.py": """
                from array import array

                class PairSet:
                    def __init__(self, codes, interner):
                        self._codes = array("q", codes)
            """,
        })
        assert hits == []

    def test_memoryview_outside_store_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/validate.py": """
                def peek(column):
                    return memoryview(column).cast("q")
            """,
        })
        assert hits == ["RPR005"]

    def test_raw_frombuffer_outside_kernels_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/query/rogue.py": """
                import numpy as np

                def view(column):
                    return np.frombuffer(column, dtype=np.int64)
            """,
        })
        assert hits == ["RPR005"]

    def test_raw_ndarray_outside_kernels_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/rogue.py": """
                import numpy

                def widen(nd: numpy.ndarray) -> numpy.ndarray:
                    return nd
            """,
        })
        assert hits == ["RPR005", "RPR005"]

    def test_numpy_in_kernels_package_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/kernels/numpy_backend.py": """
                from array import array

                import numpy as np

                def as_ndarray(column) -> np.ndarray:
                    return np.frombuffer(column, dtype=np.int64)

                def to_column(nd: np.ndarray) -> array:
                    out = array("q")
                    out.frombytes(memoryview(np.ascontiguousarray(nd)).cast("B"))
                    return out
            """,
        })
        assert hits == []

    def test_mmap_outside_store_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/rogue.py": """
                import mmap

                def map_file(handle):
                    return mmap.mmap(handle.fileno(), 0)
            """,
        })
        assert hits == ["RPR005"]

    def test_buffers_in_store_package_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/store/reader.py": """
                import mmap
                from array import array

                def load(handle):
                    mapped = mmap.mmap(handle.fileno(), 0)
                    column = memoryview(mapped).cast("q")
                    owned = array("q")
                    return column, owned
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# RPR006 — fault-path hygiene
# ----------------------------------------------------------------------
class TestFaultPathHygiene:
    def test_swallowed_exception_in_serve_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop(conn):
                    try:
                        work()
                    except Exception:
                        pass
            """,
        })
        assert hits == ["RPR006"]

    def test_bare_except_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/parallel.py": """
                def run(task):
                    try:
                        return task()
                    except:
                        log("oops")
            """,
        })
        assert hits == ["RPR006"]

    def test_tuple_with_broad_member_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop():
                    try:
                        work()
                    except (ValueError, Exception):
                        log("oops")
            """,
        })
        assert hits == ["RPR006"]

    def test_reraise_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop(pool):
                    try:
                        work()
                    except BaseException:
                        pool.close()
                        raise
            """,
        })
        assert hits == []

    def test_tagged_return_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/parallel.py": """
                def run_shard(task):
                    try:
                        return ("ok", task())
                    except Exception:
                        return ("err", format_exc())
            """,
        })
        assert hits == []

    def test_pipe_send_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop(conn):
                    try:
                        work()
                    except Exception:
                        conn.send(("error", "boom"))
            """,
        })
        assert hits == []

    def test_bound_name_use_clean(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop(out):
                    try:
                        work()
                    except Exception as exc:
                        out.append(wrap(exc))
            """,
        })
        assert hits == []

    def test_narrow_handler_out_of_scope(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop():
                    try:
                        work()
                    except OSError:
                        pass
            """,
        })
        assert hits == []

    def test_swallow_outside_scope_not_flagged(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/db/session.py": """
                def close_quietly(pool):
                    try:
                        pool.close()
                    except Exception:
                        pass
            """,
        })
        assert hits == []

    def test_inline_suppression_honored(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/serve/worker.py": """
                def loop():
                    try:
                        work()
                    except Exception:  # repro-lint: disable=RPR006
                        pass
            """,
        })
        assert hits == []


# ----------------------------------------------------------------------
# suppressions and baselines
# ----------------------------------------------------------------------
class TestSuppression:
    def test_inline_disable_suppresses(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/cpqx.py": """
                def collect():
                    members = {1, 2, 3}
                    return list(members)  # repro-lint: disable=RPR004
            """,
        })
        assert hits == []

    def test_disable_all_suppresses(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/cpqx.py": """
                def collect():
                    members = {1, 2, 3}
                    return list(members)  # repro-lint: disable=all
            """,
        })
        assert hits == []

    def test_disable_other_rule_does_not_suppress(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/cpqx.py": """
                def collect():
                    members = {1, 2, 3}
                    return list(members)  # repro-lint: disable=RPR001
            """,
        })
        assert hits == ["RPR004"]

    def test_comma_list_suppresses(self, tmp_path):
        hits = rules_hit(tmp_path, {
            "repro/core/cpqx.py": """
                def collect():
                    members = {1, 2, 3}
                    return list(members)  # repro-lint: disable=RPR001,RPR004
            """,
        })
        assert hits == []


class TestBaseline:
    FILES = {
        "repro/core/cpqx.py": """
            def collect():
                members = {1, 2, 3}
                return list(members)
        """,
    }

    def test_round_trip_covers_findings(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        findings = run_lint([root])
        assert [f.rule for f in findings] == ["RPR004"]
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        remaining = subtract_baseline(findings, load_baseline(baseline))
        assert remaining == []

    def test_baseline_is_line_insensitive(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run_lint([root]))
        # Shift the violation down two lines; the allowance still covers it.
        shifted = {
            "repro/core/cpqx.py": "\n\n" + textwrap.dedent(self.FILES["repro/core/cpqx.py"]),
        }
        target = root / "repro/core/cpqx.py"
        target.write_text(shifted["repro/core/cpqx.py"], encoding="utf-8")
        remaining = subtract_baseline(run_lint([root]), load_baseline(baseline))
        assert remaining == []

    def test_new_finding_not_covered(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run_lint([root]))
        (root / "repro/core/partition.py").write_text(
            textwrap.dedent(
                """
                def collect(pairs: set) -> list:
                    return [p for p in pairs]
                """
            ),
            encoding="utf-8",
        )
        remaining = subtract_baseline(run_lint([root]), load_baseline(baseline))
        assert [f.rule for f in remaining] == ["RPR004"]
        assert remaining[0].path.endswith("repro/core/partition.py")

    def test_bad_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 999}', encoding="utf-8")
        with pytest.raises(ReproError):
            load_baseline(bad)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_baseline(tmp_path / "missing.json")


def test_missing_lint_path_raises(tmp_path):
    with pytest.raises(ReproError):
        run_lint([tmp_path / "nowhere"])
