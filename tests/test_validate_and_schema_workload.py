"""Tests for index verification and schema-aware workload generation."""

from __future__ import annotations

import pytest

from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.validate import quick_verify, verify_index
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.graph.schema import citation_schema, schema_workload, type_check
from repro.query.ast import label
from repro.query.semantics import evaluate as reference


class TestVerifyIndex:
    def test_fresh_cpqx_passes(self):
        graph = random_graph(20, 55, 3, seed=41)
        report = verify_index(CPQxIndex.build(graph, k=2))
        assert report.ok, report.describe()
        assert report.pairs_checked > 0
        assert "OK" in report.describe()

    def test_fresh_iacpqx_passes(self):
        graph = random_graph(20, 55, 3, seed=42)
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2)})
        report = verify_index(index)
        assert report.ok, report.describe()

    def test_maintained_index_passes(self):
        graph = random_graph(18, 45, 3, seed=43)
        index = CPQxIndex.build(graph.copy(), k=2)
        triples = sorted(index.graph.triples(), key=repr)
        for edge in triples[:4]:
            index.delete_edge(*edge)
        index.insert_edge(0, 1, 2)
        report = verify_index(index)
        assert report.ok, report.describe()

    def test_detects_corrupted_class_map(self):
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = CPQxIndex.build(graph, k=2)
        # corrupt: point a pair at the wrong class
        pair = next(iter(index._class_of))
        index._class_of[pair] = 10_000
        report = verify_index(index)
        assert not report.ok

    def test_detects_label_drift(self):
        """Mutating the graph behind the index's back must be caught."""
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = CPQxIndex.build(graph, k=2)
        graph.add_edge(2, 0, "a")  # bypasses maintenance
        report = verify_index(index)
        assert not report.ok
        assert any("sequences differ" in p or "missing pair" in p
                   for p in report.problems)

    def test_detects_dangling_posting(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        index._il2c[(1,)].add(999)
        report = verify_index(index)
        assert any("dead class" in p for p in report.problems)

    def test_report_truncates_long_problem_lists(self):
        graph = random_graph(15, 45, 2, seed=44)
        index = CPQxIndex.build(graph, k=2)
        index._class_of = {pair: 77777 for pair in index._class_of}
        report = verify_index(index)
        assert not report.ok
        assert len(report.describe().splitlines()) <= 23


class TestQuickVerify:
    def test_sampled_pass(self):
        graph = random_graph(25, 70, 3, seed=45)
        index = CPQxIndex.build(graph, k=2)
        report = quick_verify(index, sample=20)
        assert report.ok
        assert report.pairs_checked <= 60

    def test_sampled_catches_wrong_sequences(self):
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = CPQxIndex.build(graph, k=2)
        some_class = next(iter(index._class_sequences))
        index._class_sequences[some_class] = frozenset({(9, 9)})
        report = quick_verify(index, sample=50)
        assert not report.ok


class TestTypeCheck:
    @pytest.fixture()
    def setting(self):
        schema = citation_schema()
        graph = schema.generate(150, seed=5)
        return schema, graph

    def test_valid_chain(self, setting):
        schema, graph = setting
        query = label("cites") >> label("livesIn")
        assert type_check(schema, query, graph.registry)

    def test_invalid_chain(self, setting):
        schema, graph = setting
        query = label("livesIn") >> label("cites")  # cities don't cite
        assert not type_check(schema, query, graph.registry)

    def test_inverse_traversal_types(self, setting):
        schema, graph = setting
        # worksIn ∘ heldIn⁻¹: researcher→city then city→venue (inverse)
        query = label("worksIn") >> label("heldIn").inverse()
        assert type_check(schema, query, graph.registry)

    def test_conjunction_conflict(self, setting):
        schema, graph = setting
        # target must be both a city (livesIn) and a venue (publishesIn)
        query = label("livesIn") & label("publishesIn")
        assert not type_check(schema, query, graph.registry)

    def test_conjunction_compatible(self, setting):
        schema, graph = setting
        query = label("livesIn") & label("worksIn")
        assert type_check(schema, query, graph.registry)

    def test_identity_constrains_endpoints(self, setting):
        schema, graph = setting
        # a cites-cycle is fine; a livesIn-cycle is type-impossible
        cites_cycle = (label("cites") >> label("cites")) & label("cites").inverse()
        assert type_check(schema, cites_cycle, graph.registry)
        lives_cycle = (label("livesIn") >> label("livesIn")) & label("cites")
        assert not type_check(schema, lives_cycle, graph.registry)


class TestSchemaWorkload:
    def test_all_generated_queries_type_check(self):
        schema = citation_schema()
        graph = schema.generate(200, seed=6)
        for template in ("C2", "T", "S"):
            for wq in schema_workload(schema, graph, template, count=4, seed=6):
                assert type_check(schema, wq.query, graph.registry)

    def test_queries_evaluate(self):
        schema = citation_schema()
        graph = schema.generate(200, seed=7)
        index = CPQxIndex.build(graph, k=2)
        for wq in schema_workload(schema, graph, "C2", count=4, seed=7):
            assert index.evaluate(wq.query) == reference(wq.query, graph)

    def test_deterministic(self):
        schema = citation_schema()
        graph = schema.generate(150, seed=8)
        a = schema_workload(schema, graph, "S", count=3, seed=8)
        b = schema_workload(schema, graph, "S", count=3, seed=8)
        assert [wq.labels for wq in a] == [wq.labels for wq in b]
