"""Unit tests for the language-unaware Path / iaPath baselines [14]."""

from __future__ import annotations

import pytest

from repro.errors import IndexBuildError, QueryDiameterError
from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.core.paths import enumerate_sequences
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a", "0 0 b", "1 0 a"])


class TestBuild:
    def test_k_zero_rejected(self, g):
        with pytest.raises(IndexBuildError):
            PathIndex.build(g, 0)

    def test_entries_match_enumeration(self, g):
        index = PathIndex.build(g, 2)
        sequences = enumerate_sequences(g, 2)
        assert index.num_sequences == len(sequences)
        for seq, pairs in sequences.items():
            assert set(index.pairs_of_sequence(seq)) == pairs

    def test_entries_sorted(self, g):
        index = PathIndex.build(g, 2)
        for seq in enumerate_sequences(g, 2):
            stored = index.pairs_of_sequence(seq)
            assert stored == sorted(stored, key=repr)


class TestLookup:
    def test_returns_pairs_result(self, g):
        index = PathIndex.build(g, 2)
        result = index.lookup((1,))
        assert result.pairs is not None
        assert result.classes is None

    def test_too_long_raises(self, g):
        index = PathIndex.build(g, 2)
        with pytest.raises(QueryDiameterError):
            index.lookup((1, 1, 1))

    def test_missing_sequence_empty(self, g):
        index = PathIndex.build(g, 2)
        assert index.lookup((99,)).pairs == frozenset()


class TestSizeModel:
    def test_postings_count_gamma_times_pairs(self, g):
        index = PathIndex.build(g, 2)
        assert index.num_postings >= index.num_pairs
        assert index.size_bytes() > 0

    def test_size_grows_with_k(self, g):
        assert PathIndex.build(g, 3).size_bytes() >= PathIndex.build(g, 2).size_bytes()

    def test_repr(self, g):
        assert "PathIndex" in repr(PathIndex.build(g, 2))


class TestQueries:
    @pytest.mark.parametrize("text", [
        "a", "a . b", "(a . b) & a", "(a . b . a) & id", "b & id",
        "(a . a^-) & (b . b^-) & id",
    ])
    def test_matches_reference(self, g, text):
        index = PathIndex.build(g, 2)
        query = parse(text, g.registry)
        assert index.evaluate(query) == reference(query, g)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_workloads(self, seed):
        g = random_graph(18, 45, 3, seed=seed)
        index = PathIndex.build(g, 2)
        for template in ("C2", "T", "S", "TT", "Ti", "C4", "ST"):
            for wq in random_template_queries(g, template, count=2, seed=seed):
                assert index.evaluate(wq.query) == reference(wq.query, g)


class TestInterestAwarePath:
    def test_only_interests_and_singles_indexed(self, g):
        index = InterestAwarePathIndex.build(g, 2, interests={(1, 2)})
        assert set(index.pairs_of_sequence((1, 2))) == g.sequence_relation((1, 2))
        assert index.pairs_of_sequence((2, 2)) == []
        assert index.lookup((1,)).pairs  # single labels always present

    def test_smaller_than_full_path(self, g):
        full = PathIndex.build(g, 2)
        ia = InterestAwarePathIndex.build(g, 2, interests={(1, 2)})
        assert ia.size_bytes() < full.size_bytes()

    def test_bad_interest_rejected(self, g):
        with pytest.raises(IndexBuildError):
            InterestAwarePathIndex.build(g, 2, interests={(1, 2, 3)})

    def test_queries_match_reference(self, g):
        index = InterestAwarePathIndex.build(g, 2, interests={(1, 2)})
        for text in ("a . b", "(b . a) & (a . b)", "(a . a . a) & id"):
            query = parse(text, g.registry)
            assert index.evaluate(query) == reference(query, g), text

    def test_same_lookup_contents_as_path(self, g):
        """iaPath stores the same pair lists per indexed sequence as Path
        (the paper: iaPath is not faster, only smaller)."""
        full = PathIndex.build(g, 2)
        ia = InterestAwarePathIndex.build(g, 2, interests={(1, 2)})
        assert ia.pairs_of_sequence((1, 2)) == full.pairs_of_sequence((1, 2))
        assert ia.pairs_of_sequence((1,)) == full.pairs_of_sequence((1,))
