"""Sharded parallel construction equals serial construction, everywhere.

The contract of :mod:`repro.core.parallel` is absolute: a build sharded
over N worker processes is **pair-for-pair identical** to the serial
build — same postings, same uniform sequence sets, same loop flags —
for every engine that opts in.  These tests check the contract on
random graphs across every parallel engine, the pure sharding/merging
helpers by property (Hypothesis), and the plumbing through the engine
registry, the session facade, and the CLI.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.core.parallel import (
    index_fingerprint,
    merge_code_columns,
    resolve_workers,
    shard_round_robin,
)
from repro.db import GraphDatabase, engine_spec
from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph

#: (engine key, build callable) for every parallelizable engine.
BUILDERS = [
    ("cpqx", lambda g, w: CPQxIndex.build(g, k=2, workers=w)),
    ("path", lambda g, w: PathIndex.build(g, k=2, workers=w)),
    (
        "iacpqx",
        lambda g, w: InterestAwareIndex.build(
            g, k=2, interests={(1, 2), (2, -1)}, workers=w
        ),
    ),
    (
        "iapath",
        lambda g, w: InterestAwarePathIndex.build(
            g, k=2, interests={(1, 2), (2, -1)}, workers=w
        ),
    ),
]


class TestShardedEqualsSerial:
    """The property the subsystem stands on, over random graphs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("key,build", BUILDERS, ids=[k for k, _ in BUILDERS])
    def test_random_graph_fingerprints_match(self, key, build, seed):
        graph = random_graph(50, 260, 3, seed=seed)
        serial = build(graph, 1)
        sharded = build(graph, 2)
        assert index_fingerprint(serial) == index_fingerprint(sharded)

    def test_three_workers_and_skewed_graph(self):
        # A star-ish graph concentrates work on few sources: the
        # round-robin sharding must still cover every class anchor.
        graph = LabeledDigraph.from_triples(
            [("hub", f"spoke{i}", "a") for i in range(30)]
            + [(f"spoke{i}", f"spoke{i+1}", "b") for i in range(29)]
        )
        serial = CPQxIndex.build(graph, k=2, workers=1)
        sharded = CPQxIndex.build(graph, k=2, workers=3)
        assert index_fingerprint(serial) == index_fingerprint(sharded)

    def test_answers_match_on_query_stream(self):
        from repro.bench.micro import micro_queries

        graph = random_graph(60, 360, 3, seed=5)
        queries = micro_queries(graph, seed=5)[:25]
        serial = CPQxIndex.build(graph, k=2)
        sharded = CPQxIndex.build(graph, k=2, workers=2)
        for query in queries:
            assert sharded.evaluate(query) == serial.evaluate(query)

    def test_empty_and_tiny_graphs(self):
        empty = LabeledDigraph()
        assert index_fingerprint(
            PathIndex.build(empty, k=2, workers=2)
        ) == index_fingerprint(PathIndex.build(empty, k=2))
        tiny = LabeledDigraph.from_triples([("a", "b", "f")])
        assert index_fingerprint(
            CPQxIndex.build(tiny, k=2, workers=4)
        ) == index_fingerprint(CPQxIndex.build(tiny, k=2))


class TestShardingHelpers:
    """Pure-function properties of the shard/merge layer."""

    @given(
        items=st.lists(st.integers(), max_size=60),
        num_shards=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_robin_partitions(self, items, num_shards):
        shards = shard_round_robin(items, num_shards)
        assert all(shard for shard in shards)
        assert len(shards) <= num_shards
        flattened = sorted(code for shard in shards for code in shard)
        assert flattened == sorted(items)
        # Balanced to within one item.
        if shards:
            sizes = [len(shard) for shard in shards]
            assert max(sizes) - min(sizes) <= 1

    @given(
        parts=st.lists(
            st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=20),
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_code_columns_sorts_disjoint_runs(self, parts):
        columns = [array("q", sorted(set(part))) for part in parts]
        merged = merge_code_columns(columns)
        assert list(merged) == sorted(
            code for column in columns for code in column
        )

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers("auto") >= 1
        for bad in (0, -2, "four", 2.5, True):
            with pytest.raises(IndexBuildError):
                resolve_workers(bad)


class TestPlumbing:
    """workers reaches the builders through every public entry point."""

    def test_registry_spec_forwards_workers(self):
        graph = random_graph(40, 200, 3, seed=3)
        spec = engine_spec("cpqx")
        serial = spec.build(graph, k=2)
        sharded = spec.build(graph, k=2, workers=2)
        assert index_fingerprint(serial) == index_fingerprint(sharded)

    def test_registry_ignores_workers_on_serial_engines(self):
        graph = random_graph(20, 80, 2, seed=3)
        engine = engine_spec("bfs").build(graph, workers=4)
        assert engine.graph is graph  # built despite no workers support

    def test_session_build_index_workers_auto(self):
        graph = random_graph(40, 200, 3, seed=4)
        serial = GraphDatabase.from_graph(graph.copy()).build_index(
            engine="path", k=2
        )
        sharded = GraphDatabase.from_graph(graph.copy()).build_index(
            engine="path", k=2, workers="auto"
        )
        assert index_fingerprint(serial.engine) == index_fingerprint(
            sharded.engine
        )
        assert serial.query("l1 & l2").pairs() == sharded.query("l1 & l2").pairs()

    def test_session_rejects_bad_workers(self):
        db = GraphDatabase.from_triples([("a", "b", "f")])
        with pytest.raises(IndexBuildError):
            db.build_index(engine="cpqx", k=2, workers=0)

    def test_update_rebuild_stays_parallel(self):
        # Path is non-incremental: update() rebuilds with the stored
        # build args, including the worker count.
        graph = random_graph(30, 120, 3, seed=6)
        db = GraphDatabase.from_graph(graph).build_index(
            engine="path", k=2, workers=2
        )
        assert db._build_args["workers"] == 2
        db.update(add_edges=[("n1", "n2", "l1")])
        reference = PathIndex.build(db.graph, k=2)
        assert index_fingerprint(db.engine) == index_fingerprint(reference)

    def test_cli_build_workers_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "par.idx"
        assert main([
            "build", "--dataset", "robots", "--scale", "0.12",
            "--workers", "2", "--out", str(out),
        ]) == 0
        assert out.exists()
        reopened = GraphDatabase.open(out)
        reference = CPQxIndex.build(
            reopened.graph, k=reopened.engine.k
        )
        assert index_fingerprint(reopened.engine) == index_fingerprint(reference)
