"""Tests for vertex-local data and filtered CPQ evaluation (Sec. VII)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownVertexError
from repro.core.cpqx import CPQxIndex
from repro.baselines.bfs import BFSEngine
from repro.graph.io import edges_from_strings
from repro.query.parser import parse


@pytest.fixture()
def g():
    graph = edges_from_strings([
        "alice bob follows", "bob carol follows", "carol alice follows",
        "dave alice follows",
    ])
    graph.set_vertex_data("alice", age=34, city="osaka")
    graph.set_vertex_data("bob", age=28, city="eindhoven")
    graph.set_vertex_data("carol", age=41, city="osaka")
    return graph


class TestVertexData:
    def test_set_and_get(self, g):
        assert g.vertex_data("alice") == {"age": 34, "city": "osaka"}

    def test_merge_semantics(self, g):
        g.set_vertex_data("alice", age=35)
        assert g.vertex_data("alice") == {"age": 35, "city": "osaka"}

    def test_unset_vertex_empty(self, g):
        assert g.vertex_data("dave") == {}

    def test_unknown_vertex_raises(self, g):
        with pytest.raises(UnknownVertexError):
            g.vertex_data("nobody")
        with pytest.raises(UnknownVertexError):
            g.set_vertex_data("nobody", x=1)

    def test_returned_dict_is_copy(self, g):
        g.vertex_data("alice")["age"] = 1
        assert g.vertex_data("alice")["age"] == 34

    def test_vertices_where(self, g):
        osaka = set(g.vertices_where(lambda d: d.get("city") == "osaka"))
        assert osaka == {"alice", "carol"}

    def test_copy_preserves_data(self, g):
        clone = g.copy()
        assert clone.vertex_data("alice") == g.vertex_data("alice")
        clone.set_vertex_data("alice", age=1)
        assert g.vertex_data("alice")["age"] == 34

    def test_remove_vertex_drops_data(self, g):
        g.remove_vertex("alice")
        g.add_vertex("alice")
        assert g.vertex_data("alice") == {}


class TestFilteredEvaluation:
    def test_target_filter(self, g):
        index = CPQxIndex.build(g, k=2)
        query = parse("follows", g.registry)
        answers = index.evaluate(
            query, target_filter=lambda d: d.get("city") == "osaka"
        )
        assert answers == {("dave", "alice"), ("carol", "alice"), ("bob", "carol")}

    def test_source_filter(self, g):
        index = CPQxIndex.build(g, k=2)
        query = parse("follows . follows", g.registry)
        answers = index.evaluate(
            query, source_filter=lambda d: d.get("age", 0) > 30
        )
        for source, _ in answers:
            assert g.vertex_data(source).get("age", 0) > 30

    def test_both_filters(self, g):
        index = CPQxIndex.build(g, k=2)
        query = parse("follows", g.registry)
        answers = index.evaluate(
            query,
            source_filter=lambda d: d.get("city") == "osaka",
            target_filter=lambda d: d.get("city") == "eindhoven",
        )
        assert answers == {("alice", "bob")}

    def test_filters_work_on_every_engine(self, g):
        query = parse("follows", g.registry)
        predicate = lambda d: d.get("city") == "osaka"  # noqa: E731
        index_answers = CPQxIndex.build(g, k=2).evaluate(
            query, source_filter=predicate
        )
        bfs_answers = BFSEngine(g).evaluate(query, source_filter=predicate)
        assert index_answers == bfs_answers

    def test_no_filters_no_change(self, g):
        index = CPQxIndex.build(g, k=2)
        query = parse("follows", g.registry)
        assert index.evaluate(query) == index.evaluate(
            query, source_filter=None, target_filter=None
        )
