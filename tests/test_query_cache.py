"""Cache correctness: memoized results must never survive a mutation.

The executor memoizes at three levels — per-evaluation subplan memo,
cross-query subplan LRU, and the evaluate/count result LRU — all guarded
by a ``(graph version, engine epoch)`` token.  These tests drive every
mutation path that changes query answers and assert the memo layers are
retired: ``GraphDatabase.update()`` on incremental engines (lazy
maintenance) and rebuild engines (transparent rebuild), direct engine
maintenance, and iaCPQx interest insertion/deletion.
"""

from __future__ import annotations

import pytest

from repro import GraphDatabase
from repro.core.cache import LRUCache
from repro.core.executor import ExecutionStats
from repro.query.semantics import evaluate as reference_evaluate
from repro.query.parser import parse


TRIANGLE = [("a", "b", "f"), ("b", "c", "f"), ("c", "a", "f")]


def fresh_db(engine: str) -> GraphDatabase:
    db = GraphDatabase.from_triples(TRIANGLE)
    db.build_index(engine=engine, k=2)
    return db


def assert_matches_reference(db: GraphDatabase, text: str) -> None:
    query = parse(text, db.graph.registry)
    assert db.query(text).pairs() == reference_evaluate(query, db.graph)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)           # evicts 'b'
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_token_is_opaque(self):
        cache = LRUCache(4, token=(3, 1))
        assert cache.token == (3, 1)


@pytest.mark.parametrize("engine", ["cpqx", "iacpqx"])
class TestIncrementalEngineInvalidation:
    """update() routes through lazy maintenance; caches must refresh."""

    def test_insert_changes_cached_answer(self, engine):
        db = fresh_db(engine)
        before = db.query("f . f").pairs()
        assert db.query("f . f").pairs() == before  # second read: cache hit
        db.update(add_edges=[("a", "d", "f"), ("d", "a", "f")])
        after = db.query("f . f").pairs()
        assert after != before
        assert_matches_reference(db, "f . f")

    def test_delete_changes_cached_answer(self, engine):
        db = fresh_db(engine)
        before = db.query("f . f").pairs()
        db.update(remove_edges=[("b", "c", "f")])
        after = db.query("f . f").pairs()
        assert after != before
        assert_matches_reference(db, "f . f")

    def test_count_cache_invalidated(self, engine):
        db = fresh_db(engine)
        before = db.query("f & f").count()
        assert db.query("f & f").count() == before
        db.update(add_edges=[("a", "c", "f")])
        assert db.query("f & f").count() == before + 1

    def test_conjunctive_query_after_update(self, engine):
        db = fresh_db(engine)
        db.query("(f . f) & f^-").pairs()
        db.update(add_edges=[("c", "b", "f")])
        assert_matches_reference(db, "(f . f) & f^-")


@pytest.mark.parametrize("engine", ["path", "bfs"])
class TestRebuildEngineInvalidation:
    """Non-incremental engines are rebuilt by update(); the fresh engine
    must not inherit (or re-serve) stale memoized answers."""

    def test_insert_and_delete_refresh_answers(self, engine):
        db = fresh_db(engine)
        before = db.query("f . f").pairs()
        assert db.query("f . f").pairs() == before
        db.update(add_edges=[("c", "b", "f")])
        assert_matches_reference(db, "f . f")
        db.update(remove_edges=[("c", "b", "f")])
        assert db.query("f . f").pairs() == before


class TestDirectMaintenanceInvalidation:
    """Engine-level maintenance (not via the session) must also retire
    memoized answers through the graph-version token."""

    def test_cpqx_insert_edge(self):
        db = fresh_db("cpqx")
        engine = db.engine
        query = parse("f . f", db.graph.registry)
        before = engine.evaluate(query)
        engine.insert_edge("a", "c", "f")
        after = engine.evaluate(query)
        assert after == reference_evaluate(query, db.graph)
        assert after != before

    def test_iacpqx_interest_mutations(self):
        db = GraphDatabase.from_triples(TRIANGLE)
        db.build_index(engine="iacpqx", k=2, interests={(1, 1)})
        engine = db.engine
        query = parse("f . f", db.graph.registry)
        before = engine.evaluate(query)
        engine.delete_interest((1, 1))
        engine.insert_interest((1, 1))
        assert engine.evaluate(query) == before == reference_evaluate(
            query, db.graph
        )

    def test_vertex_data_changes_invalidate(self):
        db = fresh_db("cpqx")
        db.query("f").pairs()
        db.graph.set_vertex_data("a", kind="person")
        kept = db.query("f", source_filter=lambda d: d.get("kind") == "person")
        assert kept.sources() == {"a"}


class TestStatsReplayOnHits:
    """Memo hits replay the recorded operator counters, so profiling a
    cached evaluation reads the same Table III numbers as the original."""

    def test_result_cache_replays_stats(self):
        db = fresh_db("cpqx")
        engine = db.engine
        query = parse("(f . f) & f^-", db.graph.registry)
        first = ExecutionStats()
        engine.evaluate(query, stats=first)
        second = ExecutionStats()
        engine.evaluate(query, stats=second)
        assert (second.lookups, second.joins, second.class_conjunctions) == (
            first.lookups, first.joins, first.class_conjunctions,
        )

    def test_subplan_sharing_across_distinct_queries(self):
        db = fresh_db("cpqx")
        engine = db.engine
        registry = db.graph.registry
        engine.evaluate(parse("(f . f . f) & f", registry))
        stats = ExecutionStats()
        # distinct query, shared (f.f.f) subplan — counters still replay
        engine.evaluate(parse("(f . f . f) & f^-", registry), stats=stats)
        assert stats.lookups >= 2

    def test_caching_disabled_still_memoizes_within_one_query(self):
        db = fresh_db("cpqx")
        engine = db.engine
        engine.set_result_caching(False)
        query = parse("(f . f . f) & (f . f . f)", db.graph.registry)
        stats = ExecutionStats()
        answers = engine.evaluate(query, stats=stats)
        assert answers == reference_evaluate(query, db.graph)
        # the duplicated join subtree ran once; its counters replayed once
        assert stats.joins >= 1
