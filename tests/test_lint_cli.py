"""CLI surface and self-check tests for ``repro lint``.

The self-check is the PR's quality gate: the real tree must report
zero findings with no baseline — the repository's own policy (see
``docs/static-analysis.md``).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro import cli

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

VIOLATING = {
    "repro/core/cpqx.py": """
        def collect():
            members = {1, 2, 3}
            return list(members)
    """,
}


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "proj"
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def test_self_check_real_tree_is_clean():
    """`repro lint src/repro` reports zero findings — the CI invariant."""
    assert cli.main(["lint", str(REPO_SRC), "--fail-on-findings"]) == 0


def test_violations_exit_nonzero(tmp_path, capsys):
    root = make_tree(tmp_path, VIOLATING)
    assert cli.main(["lint", str(root)]) == 1
    out = capsys.readouterr()
    assert "RPR004" in out.out
    assert "1 finding(s)" in out.err


def test_fail_on_findings_flag(tmp_path):
    root = make_tree(tmp_path, VIOLATING)
    assert cli.main(["lint", str(root), "--fail-on-findings"]) == 1


def test_clean_tree_exits_zero(tmp_path):
    root = make_tree(tmp_path, {
        "repro/core/cpqx.py": """
            def collect():
                members = {1, 2, 3}
                return sorted(members)
        """,
    })
    assert cli.main(["lint", str(root)]) == 0


def test_json_format(tmp_path, capsys):
    root = make_tree(tmp_path, VIOLATING)
    assert cli.main(["lint", str(root), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["rule"] == "RPR004"
    assert payload[0]["path"].endswith("repro/core/cpqx.py")
    assert payload[0]["line"] >= 1


def test_list_rules(capsys):
    assert cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rule_id in out


def test_write_baseline_then_enforce(tmp_path, capsys):
    root = make_tree(tmp_path, VIOLATING)
    baseline = tmp_path / "baseline.json"
    assert cli.main([
        "lint", str(root), "--baseline", str(baseline), "--write-baseline",
    ]) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out
    # Baselined findings are tolerated ...
    assert cli.main(["lint", str(root), "--baseline", str(baseline)]) == 0
    # ... but a new violation still fails.
    (root / "repro/core/partition.py").write_text(
        textwrap.dedent(
            """
            def collect(pairs: set) -> list:
                return [p for p in pairs]
            """
        ),
        encoding="utf-8",
    )
    assert cli.main(["lint", str(root), "--baseline", str(baseline)]) == 1


def test_write_baseline_requires_baseline_path(tmp_path, capsys):
    root = make_tree(tmp_path, VIOLATING)
    assert cli.main(["lint", str(root), "--write-baseline"]) == 2
    assert "--write-baseline requires --baseline" in capsys.readouterr().err


def test_missing_path_is_repro_error(tmp_path, capsys):
    assert cli.main(["lint", str(tmp_path / "nowhere")]) == 1
    assert "error:" in capsys.readouterr().err


def test_syntax_error_is_repro_error(tmp_path, capsys):
    root = make_tree(tmp_path, {"repro/core/broken.py": "def broken(:\n"})
    assert cli.main(["lint", str(root)]) == 1
    assert "cannot parse" in capsys.readouterr().err
