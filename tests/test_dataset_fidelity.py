"""Statistical fidelity of the dataset stand-ins (DESIGN.md §2's claim).

Each stand-in promises to preserve specific shape characteristics of the
real dataset it replaces; these tests measure them with
:mod:`repro.graph.metrics` so a generator regression is caught.
"""

from __future__ import annotations

import pytest

from repro.baselines.relational import RelationalEngine
from repro.graph.datasets import load_dataset
from repro.graph.metrics import (
    degree_summary,
    density,
    label_histogram,
    label_skew,
    reciprocity,
    summarize,
)
from repro.graph.io import edges_from_strings


class TestMetricsUnit:
    @pytest.fixture()
    def g(self):
        return edges_from_strings(["0 1 a", "1 0 a", "1 2 b", "2 3 a", "3 3 a"])

    def test_density(self, g):
        assert density(g) == pytest.approx(5 / 4)

    def test_degree_summary(self, g):
        summary = degree_summary(g)
        assert summary.maximum >= summary.p90 >= summary.median
        assert 0 <= summary.gini <= 1

    def test_label_histogram(self, g):
        assert label_histogram(g) == {1: 4, 2: 1}

    def test_label_skew_bounds(self, g):
        assert 0 < label_skew(g) < 1

    def test_label_skew_uniform_is_one(self):
        g = edges_from_strings(["0 1 a", "2 3 b"])
        assert label_skew(g) == pytest.approx(1.0)

    def test_label_skew_single_label_zero(self):
        g = edges_from_strings(["0 1 a", "1 2 a"])
        assert label_skew(g) == 0.0

    def test_reciprocity(self, g):
        # 0->1/1->0 reciprocated (2 edges), self loop 3->3 counts too
        assert reciprocity(g) == pytest.approx(3 / 5)

    def test_summarize_keys(self, g):
        info = summarize(g)
        assert {"vertices", "edges", "density", "label_skew",
                "heavy_tailed"} <= set(info)

    def test_empty_graph(self):
        from repro.graph.digraph import LabeledDigraph

        g = LabeledDigraph()
        assert density(g) == 0.0
        assert reciprocity(g) == 0.0
        assert degree_summary(g).maximum == 0


class TestStandInFidelity:
    """Shape characteristics of the Table II stand-ins."""

    def test_exponential_skew_on_snap_standins(self):
        """λ=0.5 label assignment → strongly non-uniform distribution."""
        for name in ("ego-facebook", "epinions", "cit-patents"):
            graph = load_dataset(name, scale=0.5, seed=1)
            assert label_skew(graph) < 0.85, name
            histogram = label_histogram(graph)
            top = max(histogram.values())
            assert top > 2 * (sum(histogram.values()) / len(histogram)), name

    def test_social_graphs_are_heavy_tailed(self):
        for name in ("ego-facebook", "epinions", "wiki-talk"):
            graph = load_dataset(name, scale=0.5, seed=1)
            assert degree_summary(graph).heavy_tailed, name

    def test_knowledge_graphs_have_large_vocabularies(self):
        yago = load_dataset("yago", scale=0.4, seed=1)
        wikidata = load_dataset("wikidata", scale=0.4, seed=1)
        assert len(wikidata.registry) > 2 * len(yago.registry)

    def test_density_ordering_tracks_paper(self):
        """youtube is the densest of the small stand-ins, as in Table II."""
        densities = {
            name: density(load_dataset(name, scale=0.4, seed=1))
            for name in ("robots", "advogato", "youtube")
        }
        assert densities["youtube"] > densities["advogato"] > densities["robots"]

    def test_gmark_sizes_scale(self):
        small = load_dataset("g-mark-1m", scale=0.4, seed=1)
        large = load_dataset("g-mark-5m", scale=0.4, seed=1)
        assert large.num_vertices > 3 * small.num_vertices
        # same schema → same label vocabulary
        assert set(small.registry) == set(large.registry)


class TestRelationalBaseline:
    """The paper's dismissal claim, measured."""

    def test_relational_is_path_k1(self):
        graph = load_dataset("robots", scale=0.3, seed=2)
        engine = RelationalEngine.build(graph)
        assert engine.k == 1
        from repro.baselines.path_index import PathIndex

        path1 = PathIndex.build(graph, k=1)
        assert engine.size_bytes() == path1.size_bytes()

    def test_relational_correct_but_joins_more(self):
        from repro.baselines.path_index import PathIndex
        from repro.core.executor import ExecutionStats
        from repro.query.parser import parse

        graph = load_dataset("advogato", scale=0.3, seed=2)
        relational = RelationalEngine.build(graph)
        path2 = PathIndex.build(graph, k=2)
        query = parse("l1 . l2", graph.registry)
        assert relational.evaluate(query) == path2.evaluate(query)
        rel_stats, path_stats = ExecutionStats(), ExecutionStats()
        relational.evaluate(query, stats=rel_stats)
        path2.evaluate(query, stats=path_stats)
        # the relational plan joins where Path(k=2) answers with one lookup
        assert rel_stats.joins == 1
        assert path_stats.joins == 0
