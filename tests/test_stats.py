"""Unit tests for index/dataset statistics accounting."""

from __future__ import annotations

import pytest

from repro.baselines.path_index import PathIndex
from repro.core.cpqx import CPQxIndex
from repro.core.stats import (
    build_with_stats,
    dataset_stats,
    format_bytes,
    stats_of,
)
from repro.graph.io import edges_from_strings


@pytest.fixture()
def g():
    return edges_from_strings(["0 1 a", "1 2 b", "2 0 a"])


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.00KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024 * 1024) == "3.00MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.00GB"


class TestStatsOf:
    def test_cpqx_stats(self, g):
        index = CPQxIndex.build(g, 2)
        stats = stats_of(index)
        assert stats.name == "CPQx"
        assert stats.k == 2
        assert stats.num_classes == index.num_classes
        assert stats.num_pairs == index.num_pairs
        assert stats.size_bytes == index.size_bytes()

    def test_path_stats_have_no_classes(self, g):
        index = PathIndex.build(g, 2)
        stats = stats_of(index)
        assert stats.num_classes is None
        assert "|C|=-" in stats.describe()

    def test_describe_contains_essentials(self, g):
        stats = stats_of(CPQxIndex.build(g, 2), build_seconds=1.5)
        text = stats.describe()
        assert "CPQx" in text and "build=1.500s" in text

    def test_name_override(self, g):
        stats = stats_of(CPQxIndex.build(g, 2), name="custom")
        assert stats.name == "custom"


class TestBuildWithStats:
    def test_times_builder(self, g):
        index, stats = build_with_stats(lambda: CPQxIndex.build(g, 2))
        assert isinstance(index, CPQxIndex)
        assert stats.build_seconds >= 0
        assert stats.size_bytes == index.size_bytes()


class TestDatasetStats:
    def test_table2_conventions(self, g):
        stats = dataset_stats("toy", g)
        # |E| and |L| double-count for inverses, as Table II does
        assert stats.edges_extended == 2 * g.num_edges
        assert stats.labels_extended == 2 * len(g.labels_used())
        assert stats.vertices == g.num_vertices
        assert stats.max_degree == g.max_degree()
        assert "toy" in stats.describe()
