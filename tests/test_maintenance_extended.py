"""Tests for the remaining Sec. IV-E update kinds: vertex ops and relabeling.

"We can handle the following additional updates by combinations of edge
deletion and insertion" — label change, vertex deletion, vertex insertion.
"""

from __future__ import annotations

import pytest

from repro.errors import MaintenanceError
from repro.core.cpqx import CPQxIndex
from repro.core.interest import InterestAwareIndex
from repro.graph.generators import random_graph
from repro.graph.io import edges_from_strings
from repro.query.parser import parse
from repro.query.semantics import evaluate as reference
from repro.query.workloads import random_template_queries
from tests.test_maintenance import assert_index_consistent


def _queries(graph, seed=0):
    queries = []
    for template in ("C2", "T", "S", "Ti"):
        queries.extend(
            wq.query
            for wq in random_template_queries(graph, template, count=2, seed=seed)
        )
    return queries


class TestChangeEdgeLabel:
    def test_relabel_moves_answers(self):
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = CPQxIndex.build(graph, k=2)
        index.change_edge_label(0, 1, "a", "b")
        registry = index.graph.registry
        assert index.evaluate(parse("a", registry)) == frozenset()
        assert index.evaluate(parse("b . b", registry)) == {(0, 2)}
        assert_index_consistent(index)

    def test_relabel_missing_edge_raises(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        with pytest.raises(MaintenanceError):
            index.change_edge_label(0, 1, "b", "a")

    def test_relabel_on_random_graph_stays_exact(self):
        graph = random_graph(15, 40, 3, seed=31)
        index = CPQxIndex.build(graph.copy(), k=2)
        edge = sorted(index.graph.triples(), key=repr)[0]
        index.change_edge_label(edge[0], edge[1], edge[2], edge[2] % 3 + 1)
        for query in _queries(index.graph, seed=31):
            assert index.evaluate(query) == reference(query, index.graph)
        assert_index_consistent(index)

    def test_iacpqx_relabel(self):
        graph = edges_from_strings(["0 1 a", "1 2 b"])
        index = InterestAwareIndex.build(graph, k=2, interests={(1, 2)})
        index.change_edge_label(1, 2, "b", "a")
        registry = index.graph.registry
        assert index.evaluate(parse("a . a", registry)) == {(0, 2)}


class TestDeleteVertex:
    def test_delete_center_of_paths(self):
        graph = edges_from_strings(["0 1 a", "1 2 a", "3 1 b"])
        index = CPQxIndex.build(graph, k=2)
        index.delete_vertex(1)
        assert not index.graph.has_vertex(1)
        registry = index.graph.registry
        assert index.evaluate(parse("a", registry)) == frozenset()
        assert index.evaluate(parse("a . a", registry)) == frozenset()
        assert index.num_pairs == 0
        assert_index_consistent(index)

    def test_delete_leaf_keeps_rest(self):
        graph = edges_from_strings(["0 1 a", "1 2 a", "2 3 b"])
        index = CPQxIndex.build(graph, k=2)
        index.delete_vertex(3)
        registry = index.graph.registry
        assert index.evaluate(parse("a . a", registry)) == {(0, 2)}
        assert_index_consistent(index)

    def test_delete_unknown_vertex_raises(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        with pytest.raises(MaintenanceError):
            index.delete_vertex(99)

    def test_random_graph_vertex_deletion_exact(self):
        graph = random_graph(14, 35, 3, seed=33)
        index = CPQxIndex.build(graph.copy(), k=2)
        index.delete_vertex(0)
        index.delete_vertex(7)
        for query in _queries(index.graph, seed=33):
            assert index.evaluate(query) == reference(query, index.graph)
        assert_index_consistent(index)

    def test_iacpqx_vertex_deletion(self):
        graph = random_graph(12, 30, 2, seed=34)
        index = InterestAwareIndex.build(graph.copy(), k=2, interests={(1, 2)})
        index.delete_vertex(3)
        for query in _queries(index.graph, seed=34):
            assert index.evaluate(query) == reference(query, index.graph)


class TestInsertVertex:
    def test_insert_with_edges(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        index.insert_vertex(2, edges=[(1, 2, 1), (2, 0, 1)])
        registry = index.graph.registry
        assert index.evaluate(parse("(a . a . a) & id", registry)) == {
            (0, 0), (1, 1), (2, 2),
        }
        assert_index_consistent(index)

    def test_insert_isolated(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        index.insert_vertex("new")
        assert index.graph.has_vertex("new")
        assert index.num_pairs == 4  # unchanged: (0,1),(1,0),(0,0),(1,1)
        assert_index_consistent(index)

    def test_edges_must_touch_vertex(self):
        graph = edges_from_strings(["0 1 a"])
        index = CPQxIndex.build(graph, k=2)
        with pytest.raises(MaintenanceError):
            index.insert_vertex(2, edges=[(0, 1, 1)])

    def test_delete_then_reinsert_roundtrip(self):
        lines = ["0 1 a", "1 2 a", "2 0 b"]
        index = CPQxIndex.build(edges_from_strings(lines), k=2)
        fresh = CPQxIndex.build(edges_from_strings(lines), k=2)
        index.delete_vertex(2)
        index.insert_vertex(2, edges=[(1, 2, 1), (2, 0, 2)])
        for query in _queries(index.graph, seed=35):
            assert index.evaluate(query) == fresh.evaluate(query)
        assert_index_consistent(index)


class TestDescribeClasses:
    def test_figure3_shape_on_example(self):
        """The triad-edge class of Fig. 3 appears with its label set."""
        from repro.graph.datasets import example_graph

        index = CPQxIndex.build(example_graph(), k=2)
        rendered = index.describe_classes()
        # the Fig. 3 class c=7: {(joe,zoe),(sue,joe),(zoe,sue)} with
        # label set {f, vv⁻¹, f⁻¹f⁻¹}
        triad_class = index.class_of(("sue", "joe"))
        assert index.class_of(("joe", "zoe")) == triad_class
        assert index.class_of(("zoe", "sue")) == triad_class
        f, v = 1, 2
        assert index.sequences_of_class(triad_class) == frozenset({
            (f,), (v, -v), (-f, -f),
        })
        assert f"c={triad_class}:" in rendered
        assert "(sue,joe)" in rendered

    def test_truncation(self):
        graph = random_graph(15, 45, 2, seed=36)
        index = CPQxIndex.build(graph, k=2)
        rendered = index.describe_classes(max_pairs=1)
        assert "..." in rendered
