"""Unit tests for the Fig. 5 templates and benchmark query shapes."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.graph.schema import lubm_schema, watdiv_schema, yago_like_schema
from repro.query.ast import label, label_sequences_in, resolve
from repro.query.semantics import evaluate
from repro.query.templates import (
    CONJUNCTIVE_TEMPLATES,
    TEMPLATES,
    get_template,
    lubm_queries,
    template_names,
    watdiv_queries,
    yago2_queries,
)


class TestTemplateRegistry:
    def test_twelve_templates(self):
        assert len(TEMPLATES) == 12
        assert set(template_names()) == {
            "C2", "C4", "T", "S", "TT", "TC", "SC", "ST", "C2i", "Ti", "Si", "St",
        }

    def test_get_template_unknown(self):
        with pytest.raises(QuerySyntaxError):
            get_template("nope")

    def test_arity_checked(self):
        with pytest.raises(QuerySyntaxError):
            get_template("C2").instantiate([label("a")])

    @pytest.mark.parametrize("name,arity", [
        ("C2", 2), ("C4", 4), ("T", 3), ("S", 4), ("TT", 5), ("TC", 4),
        ("SC", 5), ("ST", 7), ("C2i", 2), ("Ti", 3), ("Si", 4), ("St", 3),
    ])
    def test_arities(self, name, arity):
        assert get_template(name).arity == arity

    @pytest.mark.parametrize("name,diameter", [
        ("C2", 2), ("C4", 4), ("T", 2), ("S", 2), ("TT", 2), ("TC", 3),
        ("SC", 3), ("ST", 4), ("C2i", 2), ("Ti", 3), ("Si", 4), ("St", 2),
    ])
    def test_diameters(self, name, diameter):
        template = get_template(name)
        labels = [label(f"l{i}") for i in range(template.arity)]
        assert template.instantiate(labels).diameter() == diameter

    def test_identity_flags(self):
        for name in ("C2i", "Ti", "Si", "St"):
            assert get_template(name).has_identity
        for name in ("C2", "T", "S", "ST"):
            assert not get_template(name).has_identity

    def test_conjunctive_subset(self):
        for name in CONJUNCTIVE_TEMPLATES:
            assert name in TEMPLATES


class TestTemplateSemantics:
    """Template instances must evaluate to their intended patterns."""

    @pytest.fixture()
    def triangle_graph(self):
        from repro.graph.io import edges_from_strings

        # 3-cycle of a-edges plus a chord b from 0 to 2
        return edges_from_strings(["0 1 a", "1 2 a", "2 0 a", "0 2 b"])

    def test_t_finds_open_triangle(self, triangle_graph):
        g = triangle_graph
        q = resolve(get_template("T").instantiate(
            [label("a"), label("a"), label("b")]), g.registry)
        assert evaluate(q, g) == {(0, 2)}

    def test_ti_finds_cycle_members(self, triangle_graph):
        g = triangle_graph
        q = resolve(get_template("Ti").instantiate(
            [label("a")] * 3), g.registry)
        assert evaluate(q, g) == {(0, 0), (1, 1), (2, 2)}

    def test_c2i_empty_without_2cycle(self, triangle_graph):
        g = triangle_graph
        q = resolve(get_template("C2i").instantiate([label("a")] * 2), g.registry)
        assert evaluate(q, g) == set()

    def test_star_centers(self):
        from repro.graph.io import edges_from_strings

        g = edges_from_strings([
            "hub s1 a", "hub s2 b", "hub s3 c", "solo s4 a",
        ])
        q = resolve(get_template("St").instantiate(
            [label("a"), label("b"), label("c")]), g.registry)
        assert evaluate(q, g) == {("hub", "hub")}

    def test_si_four_cycle(self):
        from repro.graph.generators import cycle_graph

        g = cycle_graph(4, label="n")
        q = resolve(get_template("Si").instantiate([label("n")] * 4), g.registry)
        assert evaluate(q, g) == {(v, v) for v in range(4)}


class TestBenchmarkQueries:
    def test_yago2_queries_resolve_on_schema(self):
        graph = yago_like_schema().generate(150, seed=1)
        for name, query in yago2_queries().items():
            resolved = resolve(query, graph.registry)
            evaluate(resolved, graph)  # must not raise

    def test_lubm_queries_resolve_on_schema(self):
        graph = lubm_schema().generate(150, seed=1)
        assert len(lubm_queries()) == 7
        for query in lubm_queries().values():
            evaluate(resolve(query, graph.registry), graph)

    def test_watdiv_queries_resolve_on_schema(self):
        graph = watdiv_schema().generate(150, seed=1)
        queries = watdiv_queries()
        assert len([n for n in queries if n.startswith("L")]) == 5
        assert len([n for n in queries if n.startswith("S")]) == 7
        for query in queries.values():
            evaluate(resolve(query, graph.registry), graph)

    def test_benchmark_queries_have_bounded_sequences(self):
        """All lookup chains must fit k=2 indexes after splitting."""
        suites = (
            (yago2_queries(), yago_like_schema()),
            (lubm_queries(), lubm_schema()),
            (watdiv_queries(), watdiv_schema()),
        )
        for queries, schema in suites:
            graph = schema.generate(60, seed=0)
            for query in queries.values():
                resolved = resolve(query, graph.registry)
                for seq in label_sequences_in(resolved):
                    assert 1 <= len(seq) <= 3
