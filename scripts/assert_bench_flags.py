#!/usr/bin/env python
"""Assert the correctness flags of a benchmark JSON artifact.

CI policy: timings are *recorded*, never asserted — runners are too
noisy for ratio gates — but every identity flag the harnesses emit is
a hard assertion, and the PR-8 storage section additionally gates the
process-serving handshake size: with mmap-backed stores the workers
open the index by path, so per-worker bytes shipped over the pipe must
stay below 1% of the pickled-snapshot baseline recorded in
``BENCH_PR5.json`` (14.3 MB on the pinned graph).

The PR-9 daemon section gates the serving-daemon contract the same way:
``identical_answers`` (every HTTP answer equals the serial
``execute_batch`` encoding), ``shed_bounded`` (over-capacity requests
are structured rejects and the admission queue never overran its
bound), and ``drained_clean`` (shutdown answered everything admitted
within the drain deadline).

The PR-10 kernels section is the one sanctioned exception to the
no-ratio-gates policy: backend-vs-backend speedups divide out runner
noise (both sides run on the same box in the same process), so at the
pinned workload the numpy backend must beat pure by >= 2x on the
intersect and compose primitives — and every cross-backend identity
flag (primitives, index fingerprint, served answers) is hard-asserted.

The script is section-driven, so one entry point serves the perf-smoke,
perf-regression, chaos, storage, and daemon jobs: pass any
``bench-*.json`` and only the sections present in it are checked.

Usage: ``python scripts/assert_bench_flags.py bench-concurrent.json``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Pickled-snapshot baseline (bytes/worker) when BENCH_PR5.json is absent.
FALLBACK_SNAPSHOT_BYTES = 14.3e6

#: The storage gate: mapped shipping must be under this fraction of the
#: pickled-snapshot baseline.
MAX_SHIPPED_FRACTION = 0.01


def _require(condition: bool, context: object, message: str) -> None:
    if not condition:
        raise AssertionError(f"{message}: {json.dumps(context, indent=2)[:2000]}")


def _snapshot_baseline() -> float:
    reference = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
    if reference.exists():
        with open(reference, encoding="utf-8") as handle:
            recorded = json.load(handle)
        snapshot_mb = recorded.get("process_serving", {}).get("snapshot_mb")
        if snapshot_mb:
            return snapshot_mb * 1e6
    return FALLBACK_SNAPSHOT_BYTES


def check_micro(result: dict) -> list[str]:
    _require(
        result["query_eval"]["identical_results"] is True,
        result["query_eval"], "bench-micro query results differ between cores",
    )
    return ["query_eval: identical results verified"]


#: The kernels gate: at the pinned workload the numpy backend must be at
#: least this much faster than pure on the two join-heavy primitives.
MIN_KERNEL_SPEEDUP = 2.0

#: Primitives the speedup gate binds on (the other rows are recorded
#: only — union at bench sizes is allocation-bound on both backends).
GATED_PRIMITIVES = ("intersect", "compose")


def check_kernels(section: dict) -> list[str]:
    _require(
        section["identical_results"] is True,
        section, "kernel backends disagree (pure vs numpy)",
    )
    if not section["numpy_available"]:
        return ["kernels: numpy absent, pure backend self-consistent"]
    for name, row in section["primitives"].items():
        _require(
            row["identical"] is True,
            row, f"kernel primitive {name} differs between backends",
        )
    _require(
        section["build"]["fingerprint_identical"] is True,
        section["build"], "kernel backends build different indexes",
    )
    _require(
        section["serve"]["identical"] is True,
        section["serve"], "kernel backends serve different answers",
    )
    lines = []
    if section["gate_eligible"]:
        for name in GATED_PRIMITIVES:
            row = section["primitives"][name]
            _require(
                row["speedup"] >= MIN_KERNEL_SPEEDUP,
                row,
                f"numpy {name} only {row['speedup']:.2f}x over pure, "
                f"under the {MIN_KERNEL_SPEEDUP:.0f}x pinned-size gate",
            )
    for name, row in section["primitives"].items():
        gated = " (gated)" if section["gate_eligible"] and name in GATED_PRIMITIVES else ""
        lines.append(f"kernel {name}: {row['speedup']:.2f}x numpy{gated}")
    lines.append(
        f"kernel end-to-end: build {section['build']['speedup']:.2f}x, "
        f"serve {section['serve']['speedup']:.2f}x, fingerprint identical"
    )
    return lines


def check_concurrent(result: dict) -> list[str]:
    lines = []
    build = result["parallel_build"]
    for engine in ("cpqx", "path"):
        _require(
            build[engine]["identical_index"] is True,
            build, f"sharded {engine} build not identical",
        )
        lines.append(
            f"{engine} build speedup: {build[engine]['speedup']:.2f}x "
            f"({build['workers']} workers)"
        )
    partition = result["partition_phase"]
    _require(
        partition["identical_partition"] is True,
        partition, "sharded partition not identical",
    )
    lines.append(
        f"partition speedup: {partition['speedup']:.2f}x "
        f"({100 * partition['fraction_of_serial_build']:.0f}% of the serial "
        f"cpqx build)"
    )
    serving = result["concurrent_serving"]
    _require(
        serving["identical_answers"] is True,
        serving, "threaded serving answers differ",
    )
    lines.append(
        f"serving throughput: {serving['queries_per_second_threaded']:.0f} q/s "
        f"({serving['threads']} threads)"
    )
    process = result["process_serving"]
    _require(
        process["identical_answers"] is True,
        process, "process serving answers differ",
    )
    lines.append(
        f"process serving: {process['queries_per_second_process']:.0f} q/s "
        f"({process['workers']} worker processes, GIL-free)"
    )
    return lines


def check_storage(storage: dict) -> list[str]:
    _require(
        storage["fingerprint_identical"] is True,
        storage, "mmap-opened store differs from the in-memory build",
    )
    _require(
        storage["identical_answers"] is True,
        storage, "storage serving answers differ",
    )
    for mode in ("pickle_serving", "map_serving"):
        _require(
            storage[mode]["identical_answers"] is True,
            storage[mode], f"{mode} answers differ",
        )
    mapped = storage["map_serving"]
    _require(
        mapped["snapshot_ships"] == 0,
        mapped, "mapped serving still shipped pickled snapshots",
    )
    _require(
        mapped["update"]["snapshot_ships"] == 0,
        mapped, "update re-shipped a pickled snapshot despite mapped store",
    )
    baseline = _snapshot_baseline()
    limit = MAX_SHIPPED_FRACTION * baseline
    shipped = mapped["shipped_bytes_per_worker"]
    _require(
        shipped <= limit,
        mapped,
        f"mapped serving shipped {shipped:.0f} B/worker, over the "
        f"{limit:.0f} B gate ({100 * MAX_SHIPPED_FRACTION:.0f}% of the "
        f"{baseline / 1e6:.1f} MB pickled baseline)",
    )
    return [
        f"store file: {storage['store_file_mb']:.2f} MB "
        f"(save {storage['save_s'] * 1000:.1f} ms, cold mmap open "
        f"{storage['cold_open_s'] * 1000:.1f} ms, fingerprint identical)",
        f"shipped/worker: {shipped:.0f} B mapped vs "
        f"{storage['pickle_serving']['shipped_bytes_per_worker'] / 1e6:.2f} MB "
        f"pickled — under the {limit / 1e6:.2f} MB gate",
        f"delta after update: "
        f"{mapped['update']['delta_file_bytes'] / 1e3:.1f} kB generation "
        f"{mapped['update']['delta_generation']}, "
        f"{mapped['update']['reshipped_bytes_per_worker']:.0f} B/worker re-shipped",
    ]


def check_chaos(result: dict) -> list[str]:
    lines = []
    chaos = result["chaos_serving"]
    _require(chaos["identical_answers"] is True, chaos, "chaos answers differ")
    for row in chaos["scenarios"]:
        _require(
            row["identical_answers"] is True, row,
            f"chaos scenario {row['scenario']} answers differ",
        )
        lines.append(
            f"{row['scenario']}: +{row['recovery_overhead_s'] * 1000:.1f} ms "
            f"recovery, {row['worker_restarts']} restarts, "
            f"{row['queries_retried']} retried, {row['queries_failed']} failed"
        )
    build = result["chaos_build"]
    _require(build["identical_index"] is True, build, "chaotic build differs")
    lines.append(
        f"chaotic build: {build['shards_retried']} shard retries, "
        f"identical index"
    )
    return lines


def check_daemon(section: dict) -> list[str]:
    # The three PR-9 daemon flags, asserted individually so a failure
    # names the phase that broke.
    _require(
        section["identical_answers"] is True,
        section, "daemon answers differ from serial execute_batch",
    )
    _require(
        section["shed_bounded"] is True,
        section, "daemon shed unboundedly (queue overran its capacity)",
    )
    _require(
        section["drained_clean"] is True,
        section, "daemon failed to drain within the deadline",
    )
    shedding = section["shedding"]
    _require(
        shedding["max_queue_depth"] <= shedding["capacity"],
        shedding, "admission queue depth exceeded its configured bound",
    )
    _require(
        shedding["shed"] >= shedding["blast"] - shedding["capacity"],
        shedding, "over-capacity requests were queued instead of shed",
    )
    chaos = section["chaos"]
    _require(chaos["daemon_survived"] is True, chaos, "daemon died under chaos")
    for row in chaos["scenarios"]:
        _require(
            row["daemon_survived"] is True and row["identical_answers"] is True,
            row, f"daemon chaos scenario {row['scenario']} failed",
        )
    swap = section["hot_swap"]
    _require(swap["no_torn_reads"] is True, swap, "hot swap produced a torn read")
    normal = section["normal"]
    lines = [
        f"daemon: {normal['queries_per_second']:.0f} q/s over HTTP "
        f"(client p50 {normal['client_p50_ms']:.1f} ms, "
        f"p99 {normal['client_p99_ms']:.1f} ms), identical answers",
        f"shedding: {shedding['shed']}/{shedding['blast']} structured rejects, "
        f"queue peaked {shedding['max_queue_depth']}/{shedding['capacity']}",
        f"hot swap: {swap['probes']} probes "
        f"({swap['old_generation_answers']} old / "
        f"{swap['new_generation_answers']} new), no torn reads",
        f"drain: {section['drain']['served']}/{section['drain']['parked']} "
        f"parked served in {section['drain']['drain_s'] * 1000:.0f} ms, clean",
    ]
    for row in chaos["scenarios"]:
        if row["breaker"]["times_opened"] == 0:
            breaker = "breaker never tripped"
        elif row["recovery_s"] is None:
            breaker = "breaker re-closed in-workload"
        else:
            breaker = f"breaker re-closed in {row['recovery_s']:.2f} s"
        lines.append(
            f"chaos {row['scenario']}: {row['failures']} failures, "
            f"{row['worker_restarts']} restarts, {breaker}, daemon survived"
        )
    return lines


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    with open(path, encoding="utf-8") as handle:
        result = json.load(handle)
    _require(
        result.get("identical_answers") is True,
        {"path": path}, "identical_answers flag missing or false",
    )
    lines = []
    if "query_eval" in result:
        lines += check_micro(result)
    if "kernels" in result:
        lines += check_kernels(result["kernels"])
    if "parallel_build" in result:
        lines += check_concurrent(result)
    if "storage" in result:
        lines += check_storage(result["storage"])
    if "chaos_serving" in result:
        lines += check_chaos(result)
    if "daemon_serving" in result:
        lines += check_daemon(result["daemon_serving"])
    print(f"{path}: all agreement flags verified")
    for line in lines:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
