#!/usr/bin/env python
"""CI smoke for ``repro serve``: a real process, a real SIGTERM.

The in-process tests cover the daemon's logic; this script covers the
operational story end to end, the way a supervisor would see it:

1. build an index for the pinned bench graph and save it;
2. ``repro serve <index> --port-file ...`` as a *subprocess*;
3. wait for readiness over HTTP, serve the full micro workload, and
   assert every answer equals the serial ``execute_batch`` encoding;
4. send SIGTERM mid-traffic with requests parked behind a paused
   dispatcher, and assert the daemon answers everything admitted,
   exits 0 within the drain deadline, and never restarts.

Exit code 0 means the daemon boots, serves identically, and dies
gracefully on the signal contract; anything else fails the CI job.

Usage: ``PYTHONPATH=src python scripts/daemon_smoke.py [--keep-tmp]``
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.daemon_bench import _expected_answers  # noqa: E402
from repro.bench.micro import micro_graph, micro_queries  # noqa: E402
from repro.db import GraphDatabase  # noqa: E402
from repro.serve.daemon import DaemonClient  # noqa: E402

BOOT_DEADLINE_S = 60.0
DRAIN_DEADLINE_S = 10.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def wait_for_port(port_file: Path, process: subprocess.Popen) -> int:
    deadline = time.monotonic() + BOOT_DEADLINE_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"daemon exited during boot with code {process.returncode}")
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    fail("daemon never wrote its port file")
    raise AssertionError  # unreachable


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-daemon-smoke-"))
    index_path = tmp / "smoke.idx"
    port_file = tmp / "port"

    print("building the pinned smoke index ...")
    graph = micro_graph(120, 800, 3, seed=7)
    queries = micro_queries(graph, seed=7)
    texts = [query.to_text(graph.registry) for query in queries]
    db = GraphDatabase.from_graph(graph).build_index(engine="cpqx", k=2)
    expected = _expected_answers(db, texts)
    db.save(str(index_path))
    db.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(index_path),
            "--port-file", str(port_file),
            "--mode", "thread", "--batch-window", "0.002",
            "--capacity", "32", "--drain-deadline", str(DRAIN_DEADLINE_S),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(port_file, process)
        client = DaemonClient("127.0.0.1", port)
        if not client.wait_ready(BOOT_DEADLINE_S):
            fail("daemon never became ready")
        print(f"daemon up on port {port}; serving {len(texts)} queries ...")

        with ThreadPoolExecutor(max_workers=8) as pool:
            rows = list(pool.map(lambda text: (text, client.query(text)), texts))
        mismatched = [
            text
            for text, (status, payload) in rows
            if status != 200 or payload["answers"] != expected[text]
        ]
        if mismatched:
            fail(f"daemon answers differ from execute_batch on: {mismatched[:5]}")
        print("all answers identical to serial execute_batch")

        # SIGTERM with work parked: pause dispatch (one flush request
        # proves the pause landed), park admissions, then signal.
        client.pause()
        status, _ = client.query(texts[0], timeout=30.0)
        if status != 200:
            fail("flush request after pause did not serve")
        with ThreadPoolExecutor(max_workers=6) as pool:
            parked = [
                pool.submit(client.query, texts[index], 30.0) for index in range(6)
            ]
            deadline = time.monotonic() + 10.0
            while client.stats()["queue"]["depth"] < 6:
                if time.monotonic() > deadline:
                    fail("parked requests never reached the admission queue")
                time.sleep(0.02)
            print("sending SIGTERM with 6 requests parked ...")
            process.send_signal(signal.SIGTERM)
            statuses = [future.result()[0] for future in parked]
        if any(status != 200 for status in statuses):
            fail(f"parked requests not served across SIGTERM: {statuses}")
        print("all parked requests answered during the graceful drain")

        try:
            process.wait(timeout=DRAIN_DEADLINE_S + 15.0)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("daemon did not exit within the drain deadline after SIGTERM")
        if process.returncode != 0:
            fail(f"daemon exited {process.returncode} (expected a clean drain)")
        print("daemon exited 0 after SIGTERM; smoke passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        output = process.stdout.read() if process.stdout else ""
        if output:
            print("--- daemon output ---")
            print(output.rstrip())


if __name__ == "__main__":
    raise SystemExit(main())
