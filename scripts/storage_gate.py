#!/usr/bin/env python
"""CI storage gate: save, mmap-open in a fresh process, compare.

Builds the pinned-size benchmark index in this process, saves it in the
zero-copy columnar store format, then spawns a *fresh* Python process
that opens the file via ``mmap`` (``repro.store.open_store``) and
pickles its :func:`repro.core.parallel.index_fingerprint` back.  The
gate passes only if the fresh-process fingerprint equals the in-memory
build's — byte-identical postings with zero pair deserialization, across
a process boundary, so no in-process state can mask a broken reader.

Run from the repository root with ``PYTHONPATH=src``:

    PYTHONPATH=src python scripts/storage_gate.py
"""

from __future__ import annotations

import argparse
import os
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.micro import micro_graph
from repro.core.cpqx import CPQxIndex
from repro.core.parallel import index_fingerprint
from repro.store import write_store

#: Executed in the fresh process: mmap-open the store and pickle its
#: fingerprint to the given output path.  Fingerprints are nested
#: tuples/frozensets, so pickling + ``==`` is the faithful comparison
#: (reprs are layout-dependent; equality is not).
_CHILD = """\
import pickle, sys
from repro.core.parallel import index_fingerprint
from repro.store import open_store

engine = open_store(sys.argv[1])
with open(sys.argv[2], "wb") as handle:
    pickle.dump(index_fingerprint(engine), handle)
"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=250)
    parser.add_argument("--edges", type=int, default=2000)
    parser.add_argument("--labels", type=int, default=3)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    graph = micro_graph(args.vertices, args.edges, args.labels, args.seed)
    index = CPQxIndex.build(graph, k=args.k)
    expected = index_fingerprint(index)

    with tempfile.TemporaryDirectory(prefix="repro-storage-gate-") as tmp:
        target = Path(tmp) / "gate.rsx"
        start = time.perf_counter()
        write_store(index, target)
        save_s = time.perf_counter() - start
        size_mb = os.path.getsize(target) / 1e6

        reply = Path(tmp) / "fingerprint.pickle"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c", _CHILD, str(target), str(reply)],
            check=True, env=env,
        )
        child_s = time.perf_counter() - start
        with open(reply, "rb") as handle:
            opened = pickle.load(handle)

    if opened != expected:
        print("storage gate FAILED: fresh-process mmap open disagrees "
              "with the in-memory build", file=sys.stderr)
        return 1
    print(f"storage gate passed: {size_mb:.2f} MB store "
          f"(save {save_s * 1000:.1f} ms), fresh-process mmap open + "
          f"fingerprint in {child_s * 1000:.1f} ms, identical to the "
          f"in-memory build ({args.vertices}v/{args.edges}e, k={args.k})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
