"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs every experiment in :mod:`repro.bench.experiments` at the configured
bench scale and writes a markdown report juxtaposing the paper's reported
qualitative outcome with the measured numbers from this reproduction.

Usage::

    REPRO_BENCH_SCALE=0.25 python scripts/generate_experiments_md.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

os.environ.setdefault("REPRO_BENCH_SCALE", "0.25")
os.environ.setdefault("REPRO_BENCH_QUERIES", "3")

from repro.bench import experiments as E  # noqa: E402
from repro.bench.reporting import render_series  # noqa: E402

OUT = Path(__file__).parent.parent / "EXPERIMENTS.md"

#: Figure experiments additionally rendered as log-scale ASCII series
#: (x column, y column, group column) so the *shape* is eyeball-able.
SERIES_VIEWS = {
    "Fig. 8": ("interest_pct", "mean_time_s", "template"),
    "Fig. 10": ("edges", "mean_time_s", "suite"),
    "Fig. 11": ("vertices", "mean_time_s", "template"),
    "Fig. 13": ("updated_pct", "mean_time_s", "template"),
    "Fig. 14": ("k", "mean_time_s", "template"),
    "Fig. 15": ("k", "size_bytes", "dataset"),
}

#: What the paper reports, per experiment — the shape we try to reproduce.
PAPER_CLAIMS = {
    "Table II": (
        "14 real graphs (1.5K–14M vertices, up to 213M edges incl. inverses, "
        "8–1556 labels) plus five gMark synthetics. Here: seeded synthetic "
        "stand-ins at ~100–1000× smaller scale preserving density, label "
        "vocabulary size, and λ=0.5 label skew (paper columns included in "
        "the table for reference)."
    ),
    "Fig. 6": (
        "CPQx/iaCPQx are fastest on the conjunction templates (T, S, TT, St) "
        "by up to three orders of magnitude; Path is competitive on pure "
        "join chains (C2, C4); TurboHom++/Tentris win some cyclic-join "
        "templates (Ti, Si) on some datasets; BFS trails everywhere."
    ),
    "Table III": (
        "The number of class identifiers CPQx/iaCPQx touch when evaluating "
        "S queries is orders of magnitude below the number of s-t pairs "
        "iaPath touches; iaCPQx touches fewer than CPQx."
    ),
    "Fig. 7": (
        "iaCPQx beats TurboHom++ and Tentris on both empty and non-empty "
        "queries on most templates; empty queries are generally cheaper; "
        "first-answer times are lower than full-enumeration times."
    ),
    "Fig. 8": (
        "Query time rises as the interest share shrinks from 100% to 0% "
        "(more joins replace single lookups), with the largest impact on "
        "templates whose sequences leave the interest set."
    ),
    "Fig. 9": ("iaCPQx achieves the smallest average time on Y1–Y4."),
    "Fig. 10": (
        "Query time grows with graph size; WatDiv grows faster than LUBM "
        "because its benchmark queries need more joins."
    ),
    "Fig. 11": ("iaCPQx query time grows smoothly with gMark graph size."),
    "Fig. 12": (
        "Path/CPQx sizes grow with the label count; iaPath/iaCPQx sizes "
        "shrink; CPQ-aware indexes stay at or below their language-unaware "
        "counterparts."
    ),
    "Table IV": (
        "CPQx is smaller than Path (γ-fold posting dedup); iaCPQx/iaPath "
        "are much smaller and much faster to build; CPQx/Path hit OOM on "
        "the six largest graphs (reported as '-')."
    ),
    "Table V": ("Edge deletion/insertion on CPQx take well under a second "
                "per operation on the small datasets — far below a rebuild."),
    "Table VI": (
        "iaCPQx edge updates cost fractions of a second; interest deletion "
        "is near-instant (µs — dropping one posting list); interest "
        "insertion costs one sequence evaluation (seconds at paper scale)."
    ),
    "Table VII": (
        "Lazy maintenance grows the index by ≤1.63× even after 20% edge "
        "churn and ≤1.48× after 10 interest re-insertions."
    ),
    "Fig. 13": (
        "Cheap templates (T, C2i) slow down somewhat after churn (lookup "
        "cost rises with the finer classes); join-heavy templates (C4, Si) "
        "barely move; answers stay identical."
    ),
    "Fig. 14": (
        "Query time drops from k=1 to k=2; beyond that some templates "
        "regress (over-fine classes, costlier lookups); diameter-i queries "
        "are fastest near k=i."
    ),
    "Fig. 15": ("Index size and construction time grow with k."),
}


def main() -> None:
    sections: list[tuple[str, object, float]] = []
    runs = [
        ("Table II", lambda: E.table2_datasets()),
        ("Fig. 6", lambda: E.fig6_query_time(
            datasets=("robots", "advogato", "youtube", "biogrid"))),
        ("Table III", lambda: E.table3_pruning_power(
            datasets=("robots", "advogato", "youtube", "biogrid", "epinions"))),
        ("Fig. 7", lambda: E.fig7_empty_nonempty(datasets=("yago",))),
        ("Fig. 8", lambda: E.fig8_interest_size(
            dataset="yago", fractions=(1.0, 0.6, 0.2, 0.0),
            templates=("C2", "T", "S", "C4"))),
        ("Fig. 9", lambda: E.fig9_yago_benchmark()),
        ("Fig. 10", lambda: E.fig10_lubm_watdiv(sizes=(300, 600, 1200, 2400))),
        ("Fig. 11", lambda: E.fig11_scalability(
            sizes=(300, 600, 1200, 2400), templates=("C2", "T", "S", "C4"))),
        ("Fig. 12", lambda: E.fig12_label_count()),
        ("Table IV", lambda: E.table4_index_size(
            datasets=("robots", "advogato", "biogrid", "wikidata", "g-mark-1m"))),
        ("Table V", lambda: E.table5_cpqx_updates(datasets=("robots", "advogato"))),
        ("Table VI", lambda: E.table6_iacpqx_updates(
            datasets=("robots", "advogato", "yago"))),
        ("Table VII", lambda: E.table7_size_growth()),
        ("Fig. 13", lambda: E.fig13_maintenance_impact()),
        ("Fig. 14", lambda: E.fig14_k_query_time(ks=(1, 2, 3))),
        ("Fig. 15", lambda: E.fig15_k_index_cost(ks=(1, 2, 3))),
    ]
    for name, runner in runs:
        start = time.perf_counter()
        print(f"running {name}...", flush=True)
        result = runner()
        sections.append((name, result, time.perf_counter() - start))

    scale = os.environ["REPRO_BENCH_SCALE"]
    queries = os.environ["REPRO_BENCH_QUERIES"]
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `scripts/generate_experiments_md.py` "
        f"(REPRO_BENCH_SCALE={scale}, REPRO_BENCH_QUERIES={queries}, "
        "single-threaded pure Python).",
        "",
        "Absolute numbers are **not** comparable to the paper's C++/512GB-server",
        "results on the real datasets; the reproduction target is the *shape* of",
        "each experiment — who wins, rough factors, crossovers (see DESIGN.md §2",
        "for the substitution rationale). Each section states the paper's claim,",
        "then the measured table.",
        "",
    ]
    for name, result, elapsed in sections:
        lines.append(f"## {name} — {result.title}")
        lines.append("")
        lines.append(f"**Paper:** {PAPER_CLAIMS[name]}")
        lines.append("")
        lines.append(f"**Measured** ({elapsed:.1f}s to generate):")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
        view = SERIES_VIEWS.get(name)
        if view is not None and result.rows:
            lines.append("Shape (log scale):")
            lines.append("")
            lines.append("```")
            lines.append(render_series(result, x=view[0], y=view[1], group_by=view[2]))
            lines.append("```")
            lines.append("")
    OUT.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {OUT} ({len(sections)} experiments)")


if __name__ == "__main__":
    sys.exit(main())
