"""Index maintenance under a live update stream (the Sec. IV-E life cycle).

Streams edge insertions and deletions into an indexed citation graph
through ``GraphDatabase.update`` — which routes them through the paper's
lazy maintenance — answering queries between bursts, and reports what
that laziness costs: update latency, index growth (Table VII's ratio),
and the query-time drift (Fig. 13) — then shows that a rebuild
(``build_index`` again on the mutated graph) resets both.

Run:  python examples/dynamic_graph.py
"""

from __future__ import annotations

import random
import time

from repro import GraphDatabase
from repro.graph.schema import citation_schema
from repro.query.semantics import evaluate as reference_evaluate
from repro.query.workloads import random_template_queries


def main() -> None:
    db = GraphDatabase.from_graph(citation_schema().generate(260, seed=3),
                                  name="citation")
    print(f"citation graph: {db.graph}")

    db.build_index(engine="cpqx", k=2)
    fresh_size = db.engine.size_bytes()
    print(f"CPQx: {db.engine.num_classes} classes, {fresh_size} bytes")

    workload = [
        wq.query
        for template in ("T", "S", "C2", "C2i")
        for wq in random_template_queries(db.graph, template, count=3, seed=5)
    ]
    print(f"monitoring workload: {len(workload)} queries")

    rng = random.Random(17)
    vertices = sorted(db.graph.vertices(), key=repr)
    labels = sorted(db.graph.labels_used())

    def query_time() -> float:
        batch = db.execute_batch(workload)
        return batch.elapsed_seconds / max(1, len(workload))

    print(f"\n{'burst':>6}{'updates':>9}{'upd [ms]':>10}{'qry [ms]':>10}"
          f"{'size ratio':>12}")
    baseline = query_time()
    print(f"{'fresh':>6}{0:>9}{0.0:>10.2f}{1000 * baseline:>10.3f}{1.0:>12.2f}")

    total_updates = 0
    for burst in range(1, 5):
        start = time.perf_counter()
        for _ in range(12):
            if rng.random() < 0.5 and db.graph.num_edges > 50:
                triples = sorted(db.graph.triples(), key=repr)
                edge = triples[rng.randrange(len(triples))]
                db.update(remove_edges=[edge])
            else:
                v = vertices[rng.randrange(len(vertices))]
                u = vertices[rng.randrange(len(vertices))]
                lab = labels[rng.randrange(len(labels))]
                if v != u and not db.graph.has_edge(v, u, lab):
                    db.update(add_edges=[(v, u, lab)])
            total_updates += 1
        update_ms = 1000 * (time.perf_counter() - start) / 12
        ratio = db.engine.size_bytes() / fresh_size
        print(f"{burst:>6}{total_updates:>9}{update_ms:>10.2f}"
              f"{1000 * query_time():>10.3f}{ratio:>12.2f}")

    # Answers must still be exact after all that churn.
    for query in workload:
        assert db.query(query).pairs() == reference_evaluate(query, db.graph)
    print("\nall answers verified exact after churn")

    # A rebuild compacts the lazily-grown index back down.
    lazy_size, lazy_classes = db.engine.size_bytes(), db.engine.num_classes
    db.build_index(engine="cpqx", k=2)
    print(f"rebuild: {lazy_size} → {db.engine.size_bytes()} bytes "
          f"({lazy_classes} → {db.engine.num_classes} classes)")


if __name__ == "__main__":
    main()
