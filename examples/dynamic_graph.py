"""Index maintenance under a live update stream (the Sec. IV-E life cycle).

Streams edge insertions and deletions into an indexed citation graph,
answering queries between bursts, and reports what lazy maintenance costs:
update latency, index growth (Table VII's ratio), and the query-time drift
(Fig. 13) — then shows that a periodic rebuild resets both.

Run:  python examples/dynamic_graph.py
"""

from __future__ import annotations

import random
import time

from repro import CPQxIndex
from repro.graph.schema import citation_schema
from repro.query.semantics import evaluate as reference_evaluate
from repro.query.workloads import random_template_queries


def main() -> None:
    graph = citation_schema().generate(260, seed=3)
    print(f"citation graph: {graph}")

    index = CPQxIndex.build(graph, k=2)
    fresh_size = index.size_bytes()
    print(f"CPQx: {index.num_classes} classes, {fresh_size} bytes")

    workload = [
        wq.query
        for template in ("T", "S", "C2", "C2i")
        for wq in random_template_queries(graph, template, count=3, seed=5)
    ]
    print(f"monitoring workload: {len(workload)} queries")

    rng = random.Random(17)
    vertices = sorted(graph.vertices(), key=repr)
    labels = sorted(graph.labels_used())

    def query_time() -> float:
        start = time.perf_counter()
        for query in workload:
            index.evaluate(query)
        return (time.perf_counter() - start) / max(1, len(workload))

    print(f"\n{'burst':>6}{'updates':>9}{'upd [ms]':>10}{'qry [ms]':>10}"
          f"{'size ratio':>12}")
    baseline = query_time()
    print(f"{'fresh':>6}{0:>9}{0.0:>10.2f}{1000 * baseline:>10.3f}{1.0:>12.2f}")

    total_updates = 0
    for burst in range(1, 5):
        start = time.perf_counter()
        for _ in range(12):
            if rng.random() < 0.5 and index.graph.num_edges > 50:
                triples = sorted(index.graph.triples(), key=repr)
                edge = triples[rng.randrange(len(triples))]
                index.delete_edge(*edge)
            else:
                v = vertices[rng.randrange(len(vertices))]
                u = vertices[rng.randrange(len(vertices))]
                lab = labels[rng.randrange(len(labels))]
                if v != u and not index.graph.has_edge(v, u, lab):
                    index.insert_edge(v, u, lab)
            total_updates += 1
        update_ms = 1000 * (time.perf_counter() - start) / 12
        ratio = index.size_bytes() / fresh_size
        print(f"{burst:>6}{total_updates:>9}{update_ms:>10.2f}"
              f"{1000 * query_time():>10.3f}{ratio:>12.2f}")

    # Answers must still be exact after all that churn.
    for query in workload:
        assert index.evaluate(query) == reference_evaluate(query, index.graph)
    print("\nall answers verified exact after churn")

    # A rebuild compacts the lazily-grown index back down.
    rebuilt = CPQxIndex.build(index.graph, k=2)
    print(f"rebuild: {index.size_bytes()} → {rebuilt.size_bytes()} bytes "
          f"({index.num_classes} → {rebuilt.num_classes} classes)")


if __name__ == "__main__":
    main()
