"""Quickstart: the paper's running example, end to end.

Builds the social graph of Fig. 1 (twelve users, two blogs, ``follows``
and ``visits`` edges), constructs the CPQ-aware index CPQx with k = 2,
and answers the introduction's motivating query — *find people and their
followers who are in a triad* — expressed as the CPQ ``(f ∘ f) ∩ f⁻¹``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CPQxIndex, ExecutionStats, PathIndex, example_graph, parse


def main() -> None:
    graph = example_graph()
    print(f"Gex loaded: {graph}")

    # ------------------------------------------------------------------
    # 1. Build the CPQ-aware index (Algorithms 1 + 2).
    # ------------------------------------------------------------------
    index = CPQxIndex.build(graph, k=2)
    print(f"CPQx built: {index.num_classes} CPQ2-equivalence classes over "
          f"{index.num_pairs} s-t pairs")

    # ------------------------------------------------------------------
    # 2. The introduction's triad query: (f ∘ f) ∩ f⁻¹.
    # ------------------------------------------------------------------
    triad = parse("(f . f) & f^-", graph.registry)
    stats = ExecutionStats()
    answers = index.evaluate(triad, stats=stats)
    print(f"\n(f ∘ f) ∩ f⁻¹  →  {sorted(answers)}")
    print(f"  the conjunction intersected class-id sets "
          f"({stats.classes_touched} class ids touched, "
          f"{stats.pairs_touched} pairs materialized)")

    # Compare with the language-unaware path index: same answer, but the
    # conjunction had to intersect full pair lists.
    path_index = PathIndex.build(graph, k=2)
    path_stats = ExecutionStats()
    assert path_index.evaluate(triad, stats=path_stats) == answers
    print(f"  Path index touched {path_stats.pairs_touched} pairs for the "
          f"same answer — the Example 4.3 pruning gap")

    # ------------------------------------------------------------------
    # 3. Peek inside the index: Example 4.1's lookups.
    # ------------------------------------------------------------------
    f = graph.registry.id_of("f")
    classes_ff = sorted(index.lookup((f, f)).classes)
    classes_finv = sorted(index.lookup((-f,)).classes)
    both = set(classes_ff) & set(classes_finv)
    print(f"\nIl2c(⟨f,f⟩)  = {classes_ff}")
    print(f"Il2c(⟨f⁻¹⟩) = {classes_finv}")
    print(f"intersection = {sorted(both)} → Ic2p gives the triad pairs directly")

    # ------------------------------------------------------------------
    # 3b. The Fig. 3 view: equivalence classes with their label sets.
    # ------------------------------------------------------------------
    listing = index.describe_classes(max_pairs=3)
    print(f"\nCPQ2-equivalence classes (Fig. 3 style, "
          f"{index.num_classes} classes — paper shows 30 incl. the two "
          f"unstored ones):")
    print("\n".join(listing.splitlines()[:6]))
    print("  ...")

    # ------------------------------------------------------------------
    # 4. Cyclic queries via identity: who sits on a 3-cycle? (Ti template)
    # ------------------------------------------------------------------
    triangle_members = index.evaluate(parse("(f . f . f) & id", graph.registry))
    print(f"\n(f ∘ f ∘ f) ∩ id → {sorted(v for v, _ in triangle_members)}")

    # ------------------------------------------------------------------
    # 5. Maintenance (Example 4.4): delete the (ada, tim, f) edge.
    # ------------------------------------------------------------------
    before = index.evaluate(parse("f . v", graph.registry))
    index.delete_edge("ada", "tim", "f")
    after = index.evaluate(parse("f . v", graph.registry))
    print(f"\nafter deleting (ada,tim,f): ada still reaches blog 123 via f∘v: "
          f"{('ada', '123') in after} (alternative path through tom)")
    assert ("ada", "123") in before and ("ada", "123") in after


if __name__ == "__main__":
    main()
