"""Quickstart: the paper's running example through the GraphDatabase API.

Opens the social graph of Fig. 1 (twelve users, two blogs, ``follows``
and ``visits`` edges) as a :class:`repro.GraphDatabase` session, builds
the CPQ-aware index CPQx with k = 2, and answers the introduction's
motivating query — *find people and their followers who are in a
triad* — expressed as the CPQ ``(f ∘ f) ∩ f⁻¹``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphDatabase, example_graph


def main() -> None:
    db = GraphDatabase.from_graph(example_graph(), name="Gex")
    print(f"Gex loaded: {db.graph}")

    # ------------------------------------------------------------------
    # 1. Build the CPQ-aware index (Algorithms 1 + 2) through the facade.
    # ------------------------------------------------------------------
    db.build_index(engine="cpqx", k=2)
    index = db.engine
    print(f"CPQx built: {index.num_classes} CPQ2-equivalence classes over "
          f"{index.num_pairs} s-t pairs")

    # ------------------------------------------------------------------
    # 2. The introduction's triad query: (f ∘ f) ∩ f⁻¹.
    #    db.query returns a *lazy* ResultSet — nothing is evaluated yet.
    # ------------------------------------------------------------------
    triad = db.query("(f . f) & f^-")
    assert not triad.materialized
    print(f"\n(f ∘ f) ∩ f⁻¹  →  {triad.to_list()}")
    print(f"  the conjunction intersected class-id sets "
          f"({triad.stats.classes_touched} class ids touched, "
          f"{triad.stats.pairs_touched} pairs materialized)")

    # Compare with the language-unaware path index: same answer, but the
    # conjunction had to intersect full pair lists.
    path_db = GraphDatabase.from_graph(db.graph).build_index(engine="path", k=2)
    path_triad = path_db.query("(f . f) & f^-")
    assert path_triad == triad
    print(f"  Path index touched {path_triad.stats.pairs_touched} pairs for "
          f"the same answer — the Example 4.3 pruning gap")

    # ------------------------------------------------------------------
    # 3. Peek inside the index: Example 4.1's lookups.
    # ------------------------------------------------------------------
    f = db.graph.registry.id_of("f")
    classes_ff = sorted(index.lookup((f, f)).classes)
    classes_finv = sorted(index.lookup((-f,)).classes)
    both = set(classes_ff) & set(classes_finv)
    print(f"\nIl2c(⟨f,f⟩)  = {classes_ff}")
    print(f"Il2c(⟨f⁻¹⟩) = {classes_finv}")
    print(f"intersection = {sorted(both)} → Ic2p gives the triad pairs directly")

    # ------------------------------------------------------------------
    # 3b. How the engine ran it: the ResultSet's explain report.
    # ------------------------------------------------------------------
    print(f"\n{db.explain('(f . f) & f^-')}")

    # ------------------------------------------------------------------
    # 4. Cyclic queries via identity: who sits on a 3-cycle? (Ti template)
    #    count() reads class sizes — no pair is materialized.
    # ------------------------------------------------------------------
    triangles = db.query("(f . f . f) & id")
    n = triangles.count()
    assert not triangles.materialized
    print(f"\n(f ∘ f ∘ f) ∩ id → {sorted(v for v, _ in triangles)} "
          f"({n} counted lazily off class sizes)")

    # ------------------------------------------------------------------
    # 5. Maintenance (Example 4.4) through the session: delete an edge.
    # ------------------------------------------------------------------
    before = db.query("f . v").pairs()
    db.update(remove_edges=[("ada", "tim", "f")])
    after = db.query("f . v").pairs()
    print(f"\nafter deleting (ada,tim,f): ada still reaches blog 123 via f∘v: "
          f"{('ada', '123') in after} (alternative path through tom)")
    assert ("ada", "123") in before and ("ada", "123") in after


if __name__ == "__main__":
    main()
