"""Social-network motif analytics with CPQx.

The paper's introduction motivates CPQ with motif analysis on social
graphs (triads, squares, stars — Milo et al.'s network motifs).  This
example generates a realistic follows+visits network, builds CPQx, and
runs the full Fig. 5 template family over it, comparing against the
index-free BFS evaluation and reporting the speedups.

Run:  python examples/social_motifs.py
"""

from __future__ import annotations

import time

from repro import BFSEngine, CPQxIndex
from repro.graph.generators import bipartite_visit_graph
from repro.query.templates import TEMPLATES
from repro.query.workloads import random_template_queries


def main() -> None:
    graph = bipartite_visit_graph(
        num_users=220,
        num_items=30,
        follow_edges=700,
        visit_edges=500,
        seed=42,
        extra_labels=("blocks",),
    )
    print(f"social graph: {graph}")

    build_start = time.perf_counter()
    index = CPQxIndex.build(graph, k=2)
    print(f"CPQx: {index.num_classes} classes / {index.num_pairs} pairs, "
          f"built in {time.perf_counter() - build_start:.2f}s "
          f"({index.size_bytes()} bytes)")
    bfs = BFSEngine(graph)

    print(f"\n{'template':<9}{'queries':>8}{'answers':>9}"
          f"{'CPQx [ms]':>11}{'BFS [ms]':>10}{'speedup':>9}")
    for name, template in TEMPLATES.items():
        workload = random_template_queries(graph, template, count=5, seed=7)
        if not workload:
            continue
        answers = 0
        cpqx_time = 0.0
        bfs_time = 0.0
        for wq in workload:
            start = time.perf_counter()
            result = index.evaluate(wq.query)
            cpqx_time += time.perf_counter() - start
            answers += len(result)
            start = time.perf_counter()
            bfs_result = bfs.evaluate(wq.query)
            bfs_time += time.perf_counter() - start
            assert bfs_result == result, "engines disagree!"
        n = len(workload)
        speedup = bfs_time / cpqx_time if cpqx_time else float("inf")
        print(f"{name:<9}{n:>8}{answers:>9}"
              f"{1000 * cpqx_time / n:>11.3f}{1000 * bfs_time / n:>10.3f}"
              f"{speedup:>8.1f}x")

    # Motif spotlight: mutual-follow pairs who visit a common blog.
    f = graph.registry.id_of("f") if "f" in graph.registry else graph.registry.id_of("follows")
    v = graph.registry.id_of("visits")
    from repro.query.ast import EdgeLabel

    follows, visits = EdgeLabel(f), EdgeLabel(v)
    mutual_sharing_blog = (follows & follows.inverse()) & (visits >> visits.inverse())
    pairs = index.evaluate(mutual_sharing_blog)
    print(f"\nmutual followers sharing a blog: {len(pairs)} pairs")


if __name__ == "__main__":
    main()
