"""Basic-graph-pattern querying through the CPQ index (Sec. VII #3).

The paper's closing research direction: "queries expressed in practical
languages such as SPARQL and Cypher can use our indexes as part of a
physical execution plan."  This example runs SPARQL-style BGPs against a
social graph: the CQ layer collapses chain variables into CPQ label
sequences, serves those from CPQx in one lookup each, and joins the rest.

Run:  python examples/bgp_pipeline.py
"""

from __future__ import annotations

import time

from repro import BFSEngine, CPQxIndex
from repro.core.cq import collapse_chains, evaluate_cq, parse_bgp
from repro.graph.generators import bipartite_visit_graph


def main() -> None:
    graph = bipartite_visit_graph(
        num_users=160, num_items=24, follow_edges=480, visit_edges=360, seed=8
    )
    print(f"graph: {graph}")
    index = CPQxIndex.build(graph, k=2)
    print(f"index: {index}")
    bfs = BFSEngine(graph)

    bgps = [
        # friend-of-friend reachability (interior ?m collapses into f∘f)
        ("?x follows ?m . ?m follows ?y", ("?x", "?y")),
        # co-visitors: two users sharing a blog
        ("?x visits ?b . ?y visits ?b", ("?x", "?y")),
        # triangle of follows, report all three corners
        ("?x follows ?y . ?y follows ?z . ?z follows ?x", ("?x", "?y", "?z")),
        # 3-hop influence chain ending at a blog (two interior collapses)
        ("?x follows ?a . ?a follows ?c . ?c visits ?b", ("?x", "?b")),
    ]

    for text, projection in bgps:
        cq = parse_bgp(text, projection, graph.registry)
        relations = collapse_chains(cq)
        start = time.perf_counter()
        answers = evaluate_cq(cq, index)
        index_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        check = evaluate_cq(cq, bfs)
        bfs_ms = 1000 * (time.perf_counter() - start)
        assert answers == check, "pipeline answers must match the BFS engine"
        print(f"\nBGP: {text}")
        print(f"  patterns: {len(cq.patterns)} → relations after chain "
              f"collapsing: {len(relations)}")
        print(f"  answers: {len(answers)}  "
              f"(CPQx-backed {index_ms:.2f} ms, BFS-backed {bfs_ms:.2f} ms)")

    print("\nall BGP answers verified against the index-free engine")


if __name__ == "__main__":
    main()
