"""Run all seven engines of the paper's study side by side (mini Fig. 6).

Opens one dataset stand-in as a :class:`repro.GraphDatabase` session per
method, generates the Fig. 5 template workload, and prints a query-time
matrix across CPQx, iaCPQx, Path, iaPath, TurboHom++-style,
Tentris-style, and BFS — every answer cross-checked through the facade's
``execute_batch``.

Run:  python examples/engine_comparison.py [dataset] [scale]
"""

from __future__ import annotations

import sys
import time

from repro import GraphDatabase
from repro.bench.runner import ALL_METHODS, prepare_dataset
from repro.graph.datasets import load_dataset
from repro.query.templates import template_names


def main(dataset: str = "robots", scale: float = 0.5) -> None:
    graph = load_dataset(dataset, scale=scale, seed=7)
    print(f"{dataset}: {graph}")
    prepared = prepare_dataset(
        dataset, graph, tuple(template_names()), queries_per_template=3, seed=7
    )

    sessions: dict[str, GraphDatabase] = {}
    for method in ALL_METHODS:
        start = time.perf_counter()
        sessions[method] = GraphDatabase.from_graph(graph, name=dataset).build_index(
            engine=method, k=2, interests=prepared.interests
        )
        print(f"  {method:<9} ready in {time.perf_counter() - start:6.2f}s")

    header = f"{'template':<9}" + "".join(f"{m:>11}" for m in ALL_METHODS)
    print("\nper-template mean query time [ms]")
    print(header)
    print("-" * len(header))
    for template in template_names():
        queries = [wq.query for wq in prepared.workload[template]]
        if not queries:
            continue
        cells = []
        reference = None
        for method in ALL_METHODS:
            batch = sessions[method].execute_batch(queries)
            answers = [result.pairs() for result in batch]
            if reference is None:
                reference = answers
            else:
                assert answers == reference, f"{method} disagrees on {template}"
            cells.append(f"{1000 * batch.elapsed_seconds / len(queries):>11.3f}")
        print(f"{template:<9}" + "".join(cells))
    print("\nall engines agreed on every answer")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "robots"
    factor = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(name, factor)
