"""Interest-aware indexing on a knowledge graph (the Sec. V scenario).

Knowledge graphs are where the full CPQx becomes infeasible — the paper's
Table IV reports out-of-memory for CPQx/Path on YAGO, Wikidata, and
Freebase — and where iaCPQx shines: index only the navigation patterns an
analyst cares about, keep everything answerable, and accelerate the
interesting queries.

This example builds a YAGO-like graph, declares analyst interests (the
Y1–Y4 benchmark navigation patterns), builds iaCPQx, and demonstrates:

* interest queries answered straight from class intersections;
* non-interest queries still answered correctly (split into single-label
  lookups);
* live interest maintenance: dropping and adding navigation patterns.

Run:  python examples/knowledge_graph.py
"""

from __future__ import annotations

import time

from repro import BFSEngine, InterestAwareIndex
from repro.graph.datasets import load_dataset
from repro.query.ast import label_sequences_in, resolve
from repro.query.templates import yago2_queries


def main() -> None:
    graph = load_dataset("yago2-bench", scale=0.6, seed=11)
    print(f"knowledge graph: {graph}")

    queries = {
        name: resolve(query, graph.registry)
        for name, query in yago2_queries().items()
    }
    interests: set = set()
    for query in queries.values():
        for seq in label_sequences_in(query):
            if len(seq) <= 2:
                interests.add(seq)
    print(f"analyst interests: {len(interests)} navigation patterns, e.g. "
          f"{graph.registry.format_sequence(sorted(interests, key=repr)[0])}")

    start = time.perf_counter()
    index = InterestAwareIndex.build(graph, k=2, interests=interests)
    print(f"iaCPQx: {index.num_classes} classes / {index.num_pairs} pairs "
          f"in {time.perf_counter() - start:.2f}s ({index.size_bytes()} bytes)")

    bfs = BFSEngine(graph)
    print(f"\n{'query':<6}{'answers':>9}{'iaCPQx [ms]':>13}{'BFS [ms]':>10}")
    for name, query in queries.items():
        start = time.perf_counter()
        answers = index.evaluate(query)
        ia_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        reference = bfs.evaluate(query)
        bfs_ms = 1000 * (time.perf_counter() - start)
        assert answers == reference
        print(f"{name:<6}{len(answers):>9}{ia_ms:>13.3f}{bfs_ms:>10.3f}")

    # ------------------------------------------------------------------
    # A query outside the interests still works (split into single labels).
    # ------------------------------------------------------------------
    registry = graph.registry
    outside = resolve(
        yago2_queries()["Y4"], registry
    )  # involves influences∘influences, maybe not an interest
    assert index.evaluate(outside) == bfs.evaluate(outside)
    print("\nnon-interest query evaluated correctly via single-label splits")

    # ------------------------------------------------------------------
    # Interest maintenance: drop a pattern, re-add it (Sec. V-C).
    # ------------------------------------------------------------------
    two_hop = next(seq for seq in sorted(index.interests, key=repr) if len(seq) == 2)
    query = queries["Y1"]
    before = index.evaluate(query)
    index.delete_interest(two_hop)
    assert index.evaluate(query) == before, "answers must survive interest deletion"
    index.insert_interest(two_hop)
    assert index.evaluate(query) == before, "answers must survive interest insertion"
    print(f"interest {registry.format_sequence(two_hop)} dropped and re-added; "
          f"answers unchanged throughout")


if __name__ == "__main__":
    main()
