"""Budget-driven interest tuning (the Sec. VII adaptive-index scenario).

A deployment rarely knows its interest set up front: it has a query log
and a memory budget.  This example feeds a workload log to the interest
advisor, sweeps the byte budget, and shows the trade-off the paper's
Fig. 8 anticipates — smaller interest sets are cheaper to store and build
but push more queries onto the join path.

Run:  python examples/interest_tuning.py
"""

from __future__ import annotations

import time

from repro import InterestAwareIndex
from repro.core.advisor import advise_k, recommend_interests
from repro.graph.datasets import load_dataset
from repro.query.workloads import random_template_queries


def main() -> None:
    graph = load_dataset("yago", scale=0.35, seed=19)
    print(f"graph: {graph}")

    # A "query log": heavy on squares and chains, light on triangles.
    log = []
    for template, copies in (("S", 6), ("C2", 6), ("C4", 4), ("T", 2)):
        log.extend(
            wq.query
            for wq in random_template_queries(graph, template, count=copies, seed=3)
        )
    print(f"query log: {len(log)} queries")

    k = advise_k(log)
    print(f"advised k = {k} (longest lookup chain in the log)")

    unbudgeted = recommend_interests(graph, log, k=k)
    print(f"candidate interests: {unbudgeted.candidate_count}, "
          f"full cost ≈ {unbudgeted.estimated_bytes} bytes")

    print(f"\n{'budget':>10}{'chosen':>8}{'coverage':>10}{'index B':>10}"
          f"{'build ms':>10}{'query ms':>10}")
    budgets = [None, unbudgeted.estimated_bytes // 2,
               unbudgeted.estimated_bytes // 4, 0]
    for budget in budgets:
        recommendation = recommend_interests(graph, log, k=k, budget_bytes=budget)
        start = time.perf_counter()
        index = InterestAwareIndex.build(
            graph, k=k, interests=recommendation.interests
        )
        build_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        for query in log:
            index.evaluate(query)
        query_ms = 1000 * (time.perf_counter() - start) / len(log)
        label = "unlimited" if budget is None else str(budget)
        print(f"{label:>10}{len(recommendation.interests):>8}"
              f"{recommendation.coverage():>10.2f}{index.size_bytes():>10}"
              f"{build_ms:>10.1f}{query_ms:>10.3f}")

    print("\nsmaller budgets → fewer interests → smaller/faster builds but "
          "slower queries (the Fig. 8 trade-off, now chosen automatically)")


if __name__ == "__main__":
    main()
