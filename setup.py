"""Packaging for the ``repro`` library.

This offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on environments that do have
``wheel``) installs the package equivalently; metadata therefore lives
here rather than in a ``pyproject.toml``.

Installs the ``repro`` console script (``repro.cli:main``) and ships the
``py.typed`` marker so the typed API is consumable downstream (PEP 561).
"""

from pathlib import Path

from setuptools import find_packages, setup

_README = Path(__file__).parent / "README.md"

setup(
    name="repro-cpqx",
    version="1.1.0",
    description=(
        "Reproduction of 'Language-aware Indexing for Conjunctive Path "
        "Queries' (ICDE 2022): CPQx/iaCPQx indexes, baselines, benchmarks, "
        "and a GraphDatabase session facade"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    extras_require={
        # Optional vectorized set-algebra kernels (repro.core.kernels):
        # bit-identical results, selected automatically when importable.
        "fast": ["numpy>=1.24"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database :: Database Engines/Servers",
    ],
)
