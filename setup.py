"""Legacy setup shim.

This offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on environments that do have
``wheel``) installs the package equivalently; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
