"""Graph statistics for dataset calibration and reporting.

The dataset stand-ins (DESIGN.md §2) claim to preserve the *shape
characteristics* of the paper's real graphs: density, label-vocabulary
size, label skew, and degree heavy-tails.  This module measures those
properties so the claim is testable (``tests/test_dataset_fidelity.py``)
and reportable (Table II extensions).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.graph.digraph import LabeledDigraph


@dataclass(frozen=True)
class DegreeSummary:
    """Distribution summary of the extended vertex degrees."""

    mean: float
    median: int
    maximum: int
    p90: int
    gini: float

    @property
    def heavy_tailed(self) -> bool:
        """A crude hub indicator: max degree ≫ median."""
        return self.maximum >= 5 * max(1, self.median)


def degree_summary(graph: LabeledDigraph) -> DegreeSummary:
    """Summarize the extended (forward+inverse) degree distribution."""
    degrees = sorted(graph.out_degree(v) for v in graph.vertices())
    if not degrees:
        return DegreeSummary(0.0, 0, 0, 0, 0.0)
    count = len(degrees)
    total = sum(degrees)
    mean = total / count
    median = degrees[count // 2]
    p90 = degrees[min(count - 1, int(count * 0.9))]
    gini = _gini(degrees, total)
    return DegreeSummary(mean, median, degrees[-1], p90, gini)


def _gini(sorted_values: list[int], total: int) -> float:
    """Gini coefficient of a sorted non-negative distribution."""
    if total == 0:
        return 0.0
    count = len(sorted_values)
    weighted = sum((index + 1) * value for index, value in enumerate(sorted_values))
    return (2 * weighted) / (count * total) - (count + 1) / count


def label_histogram(graph: LabeledDigraph) -> Counter:
    """Forward-edge counts per label id."""
    histogram: Counter = Counter()
    for _, _, label in graph.triples():
        histogram[label] += 1
    return histogram


def label_skew(graph: LabeledDigraph) -> float:
    """Normalized entropy of the label distribution in [0, 1].

    0 = all edges share one label; 1 = perfectly uniform over the used
    vocabulary.  The paper's λ=0.5 exponential assignment lands well
    below 1 (label 1 dominates) — the fidelity tests pin that band.
    """
    histogram = label_histogram(graph)
    total = sum(histogram.values())
    if total == 0 or len(histogram) <= 1:
        return 0.0
    entropy = -sum(
        (count / total) * math.log2(count / total)
        for count in histogram.values()
    )
    return entropy / math.log2(len(histogram))


def density(graph: LabeledDigraph) -> float:
    """Forward edges per vertex (the |E|/|V| ratio of Table II)."""
    if graph.num_vertices == 0:
        return 0.0
    return graph.num_edges / graph.num_vertices


def reciprocity(graph: LabeledDigraph) -> float:
    """Fraction of edges whose reverse (any label) also exists.

    Social networks have high reciprocity; citation/web graphs low — a
    cheap structural fingerprint for the stand-ins.
    """
    if graph.num_edges == 0:
        return 0.0
    reciprocated = sum(
        1
        for v, u, _ in graph.triples()
        if any(graph.has_edge(u, v, lab) for lab in graph.labels_used())
    )
    return reciprocated / graph.num_edges


def summarize(graph: LabeledDigraph) -> dict:
    """All metrics in one dict (used by reporting and notebooks)."""
    degrees = degree_summary(graph)
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "labels": len(graph.labels_used()),
        "density": density(graph),
        "degree_mean": degrees.mean,
        "degree_max": degrees.maximum,
        "degree_gini": degrees.gini,
        "heavy_tailed": degrees.heavy_tailed,
        "label_skew": label_skew(graph),
        "reciprocity": reciprocity(graph),
    }
