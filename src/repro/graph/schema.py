"""Schema-driven graph generation (a miniature gMark).

The paper's scalability experiments (Figs. 9–11) use graphs produced by
schema-driven generators: gMark [4] with a citation-network schema, plus
the LUBM and WatDiv benchmark generators and the YAGO2 knowledge graph.
None of those tools/datasets are available offline, so this module
implements the same *mechanism*: a schema declares typed vertex
populations and typed edge predicates with per-predicate out-degree
distributions, and :meth:`GraphSchema.generate` instantiates a graph.

The :func:`citation_schema` reproduces the paper's synthetic dataset
description verbatim (Sec. VI "Datasets"): vertex types researcher, venue,
and city; edge labels ``cites``, ``supervises``, ``livesIn``, ``worksIn``,
``publishesIn``, ``heldIn`` with the source/target types stated there.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelRegistry

#: A degree sampler takes an RNG and returns a non-negative out-degree.
DegreeSampler = Callable[[random.Random], int]


def constant(n: int) -> DegreeSampler:
    """Every source vertex emits exactly ``n`` edges."""
    return lambda rng: n


def uniform(low: int, high: int) -> DegreeSampler:
    """Out-degree uniform in ``[low, high]``."""
    return lambda rng: rng.randint(low, high)


def zipfian(max_degree: int, alpha: float = 2.0) -> DegreeSampler:
    """Heavy-tailed out-degree: most sources small, a few huge (gMark's zipf)."""
    def sample(rng: random.Random) -> int:
        return min(int(rng.paretovariate(alpha)), max_degree)

    return sample


def geometric(p: float, max_degree: int = 1 << 20) -> DegreeSampler:
    """Geometric out-degree with success probability ``p``."""
    def sample(rng: random.Random) -> int:
        count = 0
        while rng.random() > p and count < max_degree:
            count += 1
        return count

    return sample


@dataclass(frozen=True)
class VertexType:
    """A typed vertex population.

    ``proportion`` is the fraction of the requested graph size allocated to
    this type (gMark's node-type proportions).
    """

    name: str
    proportion: float


@dataclass(frozen=True)
class EdgeType:
    """A typed predicate: label plus source/target vertex types.

    ``out_degree`` is sampled once per source vertex; targets are drawn
    uniformly from the target population (with optional zipf-popular
    targets via ``popular_targets``, modelling venue/city popularity).
    """

    label: str
    source: str
    target: str
    out_degree: DegreeSampler
    popular_targets: bool = False


@dataclass
class GraphSchema:
    """A collection of vertex types and edge predicates.

    ``generate(total_vertices, seed)`` splits the vertex budget by
    proportion, then instantiates every edge type independently.
    """

    name: str
    vertex_types: Sequence[VertexType]
    edge_types: Sequence[EdgeType]
    _type_index: dict[str, VertexType] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._type_index = {vt.name: vt for vt in self.vertex_types}
        if len(self._type_index) != len(self.vertex_types):
            raise DatasetError(f"duplicate vertex type in schema {self.name}")
        total = sum(vt.proportion for vt in self.vertex_types)
        if not 0.999 <= total <= 1.001:
            raise DatasetError(f"vertex proportions of {self.name} must sum to 1, got {total}")
        for et in self.edge_types:
            for side in (et.source, et.target):
                if side not in self._type_index:
                    raise DatasetError(f"edge type {et.label} references unknown vertex type {side}")

    def generate(self, total_vertices: int, seed: int | random.Random = 0) -> LabeledDigraph:
        """Instantiate a graph with roughly ``total_vertices`` vertices."""
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        registry = LabelRegistry([et.label for et in self.edge_types])
        graph = LabeledDigraph(registry)
        populations: dict[str, list[tuple[str, int]]] = {}
        for vt in self.vertex_types:
            count = max(1, int(round(total_vertices * vt.proportion)))
            vertices = [(vt.name, i) for i in range(count)]
            populations[vt.name] = vertices
            for v in vertices:
                graph.add_vertex(v)
        for et in self.edge_types:
            sources = populations[et.source]
            targets = populations[et.target]
            for v in sources:
                degree = et.out_degree(rng)
                for _ in range(degree):
                    index = (
                        min(int(rng.paretovariate(1.1)) - 1, len(targets) - 1)
                        if et.popular_targets
                        else rng.randrange(len(targets))
                    )
                    u = targets[index]
                    if u != v:
                        graph.add_edge(v, u, et.label)
        return graph


def label_types(schema: GraphSchema) -> dict[str, tuple[str, str]]:
    """Per-predicate (source type, target type) of a schema."""
    return {et.label: (et.source, et.target) for et in schema.edge_types}


def type_check(schema: GraphSchema, query, registry) -> bool:
    """Does ``query`` admit a type-consistent embedding under ``schema``?

    gMark [4] generates *schema-aware* query workloads: every variable of
    the query pattern must receive a vertex type consistent with all its
    incident predicate edges.  We compile the CPQ to its pattern graph and
    propagate singleton type constraints — a query like
    ``livesIn ∘ cites`` fails (cities don't cite), while
    ``cites ∘ livesIn`` passes.
    """
    from repro.baselines.pattern import cpq_to_pattern
    from repro.query.ast import resolve

    types = label_types(schema)
    pattern = cpq_to_pattern(resolve(query, registry))
    assigned: dict[int, str] = {}
    for a, b, label in pattern.edges:
        source_type, target_type = types[registry.name_of(label)]
        for variable, required in ((a, source_type), (b, target_type)):
            known = assigned.setdefault(variable, required)
            if known != required:
                return False
    return True


def schema_workload(
    schema: GraphSchema,
    graph: LabeledDigraph,
    template,
    count: int = 10,
    seed: int = 0,
    max_attempts: int = 6000,
):
    """Generate type-checked random template queries (gMark-style).

    Rejection-samples the plain random workload generator through
    :func:`type_check`, so every emitted query can actually embed into a
    schema-conforming graph — the paper's synthetic workloads have this
    property by construction.
    """
    from repro.query.workloads import WorkloadQuery, random_template_queries

    accepted: list[WorkloadQuery] = []
    offset = 0
    while len(accepted) < count and offset < max_attempts:
        batch = random_template_queries(
            graph, template, count=count * 4, seed=seed + offset,
            max_attempts=max_attempts,
        )
        for workload_query in batch:
            if type_check(schema, workload_query.query, graph.registry):
                accepted.append(workload_query)
                if len(accepted) == count:
                    break
        offset += 1 + count * 4
        if not batch:
            break
    return accepted[:count]


def citation_schema() -> GraphSchema:
    """The paper's gMark citation schema (Sec. VI, "Datasets").

    Three vertex types (researcher, venue, city) and six edge labels:
    cites and supervises between researchers, livesIn / worksIn from
    researcher to city, publishesIn from researcher to venue, heldIn from
    venue to city.  Degree choices keep the |E| / |V| ratio near the
    paper's ~8 for the g-Mark graphs.
    """
    return GraphSchema(
        name="citation",
        vertex_types=[
            VertexType("researcher", 0.90),
            VertexType("venue", 0.06),
            VertexType("city", 0.04),
        ],
        edge_types=[
            EdgeType("cites", "researcher", "researcher", zipfian(40, alpha=1.6)),
            EdgeType("supervises", "researcher", "researcher", geometric(0.55, 6)),
            EdgeType("livesIn", "researcher", "city", constant(1), popular_targets=True),
            EdgeType("worksIn", "researcher", "city", constant(1), popular_targets=True),
            EdgeType("publishesIn", "researcher", "venue", uniform(1, 4), popular_targets=True),
            EdgeType("heldIn", "venue", "city", constant(1)),
        ],
    )


def lubm_schema() -> GraphSchema:
    """LUBM-like university schema for the Fig. 10 scalability sweep.

    Mirrors the Lehigh University Benchmark's core predicates:
    students/faculty/courses/departments/universities connected by
    takesCourse, teacherOf, advisor, memberOf, subOrganizationOf,
    worksFor, and publicationAuthor.
    """
    return GraphSchema(
        name="lubm",
        vertex_types=[
            VertexType("student", 0.62),
            VertexType("faculty", 0.10),
            VertexType("course", 0.14),
            VertexType("publication", 0.10),
            VertexType("department", 0.03),
            VertexType("university", 0.01),
        ],
        edge_types=[
            EdgeType("takesCourse", "student", "course", uniform(2, 4)),
            EdgeType("teacherOf", "faculty", "course", uniform(1, 2)),
            EdgeType("advisor", "student", "faculty", geometric(0.5, 2)),
            EdgeType("memberOf", "student", "department", constant(1), popular_targets=True),
            EdgeType("worksFor", "faculty", "department", constant(1), popular_targets=True),
            EdgeType("subOrganizationOf", "department", "university", constant(1)),
            EdgeType("publicationAuthor", "publication", "faculty", uniform(1, 3)),
            EdgeType("undergraduateDegreeFrom", "faculty", "university", constant(1)),
        ],
    )


def watdiv_schema() -> GraphSchema:
    """WatDiv-like e-commerce schema for the Fig. 10 scalability sweep.

    WatDiv models users, products, retailers, and reviews with star- and
    path-shaped correlations; the join-heavy structure (many edges per
    product) is what makes WatDiv query times grow faster than LUBM's in
    the paper — the schema keeps that property.
    """
    return GraphSchema(
        name="watdiv",
        vertex_types=[
            VertexType("user", 0.45),
            VertexType("product", 0.30),
            VertexType("review", 0.18),
            VertexType("retailer", 0.05),
            VertexType("genre", 0.02),
        ],
        edge_types=[
            EdgeType("follows", "user", "user", zipfian(30, alpha=1.5)),
            EdgeType("purchases", "user", "product", uniform(1, 5), popular_targets=True),
            EdgeType("likes", "user", "product", geometric(0.4, 8), popular_targets=True),
            EdgeType("writesReview", "user", "review", geometric(0.5, 4)),
            EdgeType("reviewOf", "review", "product", constant(1), popular_targets=True),
            EdgeType("sells", "retailer", "product", zipfian(60, alpha=1.3)),
            EdgeType("hasGenre", "product", "genre", uniform(1, 2), popular_targets=True),
        ],
    )


def yago_like_schema() -> GraphSchema:
    """YAGO2-like schema (people/places/organizations/works) for Fig. 9.

    YAGO2's benchmark queries (Y1–Y4 from Harbi et al.) navigate person-
    centric predicates; the schema exposes the same predicate names so the
    translated query shapes run unchanged.
    """
    return GraphSchema(
        name="yago",
        vertex_types=[
            VertexType("person", 0.55),
            VertexType("place", 0.20),
            VertexType("organization", 0.15),
            VertexType("work", 0.10),
        ],
        edge_types=[
            EdgeType("livesIn", "person", "place", constant(1), popular_targets=True),
            EdgeType("wasBornIn", "person", "place", constant(1), popular_targets=True),
            EdgeType("worksAt", "person", "organization", geometric(0.6, 3), popular_targets=True),
            EdgeType("graduatedFrom", "person", "organization", geometric(0.5, 2), popular_targets=True),
            EdgeType("isMarriedTo", "person", "person", geometric(0.6, 1)),
            EdgeType("influences", "person", "person", geometric(0.45, 6)),
            EdgeType("created", "person", "work", geometric(0.5, 5)),
            EdgeType("isLocatedIn", "organization", "place", constant(1), popular_targets=True),
            EdgeType("isCitizenOf", "person", "place", constant(1), popular_targets=True),
        ],
    )
