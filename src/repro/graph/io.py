"""Reading and writing edge-labeled graphs.

Two interchange formats are supported:

* **TSV edge lists** — one ``source<TAB>target<TAB>label`` line per forward
  edge, the format used by the paper's open-source C++ codebase for its
  dataset files.  Vertices are kept as strings unless they parse as ints.
* **JSON documents** — ``{"labels": [...], "edges": [[v, u, label], ...]}``
  for self-describing fixtures in the test-suite and examples.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.errors import GraphError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelRegistry


def _parse_vertex(token: str) -> object:
    """Interpret a vertex token: ints stay ints, everything else a string."""
    try:
        return int(token)
    except ValueError:
        return token


def load_tsv(path: str | Path) -> LabeledDigraph:
    """Load a graph from a ``source\\ttarget\\tlabel`` edge list.

    Blank lines and ``#`` comment lines are ignored.
    """
    graph = LabeledDigraph()
    with open(path, encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphError(f"{path}:{line_no}: expected 3 tab-separated fields")
            v, u, label = parts
            graph.add_edge(_parse_vertex(v), _parse_vertex(u), label)
    return graph


def save_tsv(graph: LabeledDigraph, path: str | Path) -> None:
    """Write the graph's forward edges as a TSV edge list (sorted, stable)."""
    lines = sorted(
        f"{v}\t{u}\t{graph.registry.name_of(label)}"
        for v, u, label in graph.triples()
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
        if lines:
            handle.write("\n")


def load_json(path: str | Path) -> LabeledDigraph:
    """Load a graph from the JSON document format (see module docstring)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return graph_from_document(document)


def save_json(graph: LabeledDigraph, path: str | Path) -> None:
    """Write the graph as a self-describing JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_document(graph), handle, indent=1, sort_keys=True)


def graph_from_document(document: dict) -> LabeledDigraph:
    """Build a graph from an in-memory JSON-style document."""
    registry = LabelRegistry(document.get("labels", ()))
    graph = LabeledDigraph(registry)
    for vertex in document.get("vertices", ()):
        graph.add_vertex(vertex)
    for edge in document.get("edges", ()):
        if len(edge) != 3:
            raise GraphError(f"edge entries must be [source, target, label]: {edge!r}")
        v, u, label = edge
        graph.add_edge(v, u, label)
    return graph


def graph_to_document(graph: LabeledDigraph) -> dict:
    """Serialize a graph into the JSON-style document structure."""
    return {
        "labels": list(graph.registry),
        "vertices": sorted(graph.vertices(), key=repr),
        "edges": sorted(
            ([v, u, graph.registry.name_of(label)] for v, u, label in graph.triples()),
            key=repr,
        ),
    }


def edges_from_strings(lines: Iterable[str]) -> LabeledDigraph:
    """Build a graph from ``"v u label"`` whitespace-separated strings.

    A compact constructor used heavily by the test-suite fixtures.
    """
    graph = LabeledDigraph()
    for line in lines:
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(f"expected 'source target label': {line!r}")
        v, u, label = parts
        graph.add_edge(_parse_vertex(v), _parse_vertex(u), label)
    return graph
