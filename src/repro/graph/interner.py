"""Dense vertex-id interning — the substrate of the columnar pair-set core.

The paper's structures are all *sets of s-t pairs*; the seed stored them
as Python sets of ``(v, u)`` tuples over arbitrary hashable vertices,
which re-hashes two objects (plus a tuple allocation) for every set
operation.  Structural-index systems get their speed from dense integer
domains instead: every vertex is assigned a small non-negative integer
id at graph-build time, and a pair packs into a single 64-bit code
``v_id << 32 | u_id``.  Hot paths (enumeration, partitioning, joins)
then work on ints — identity hashes, no allocation — and the original
vertex objects reappear only at the result boundary via reverse lookup.

Two pieces live here:

* :class:`VertexInterner` — the bidirectional vertex ↔ dense-id map
  owned by every :class:`repro.graph.digraph.LabeledDigraph`;
* :class:`InternedView` — an id-indexed snapshot of the extended
  adjacency (forward labels plus virtual inverses), rebuilt lazily when
  the graph's version counter moves.  Index construction walks this
  view instead of the vertex-keyed nested dicts.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import GraphError, UnknownVertexError

#: Bit width of one packed vertex id (two ids share a 64-bit pair code).
ID_BITS = 32
#: Mask extracting the low (target) id of a pair code.
ID_MASK = (1 << ID_BITS) - 1
#: Mask isolating the packed source id (high word) of a pair code.
ID_HIGH_MASK = ID_MASK << ID_BITS
#: Hard cap on interned ids so a packed pair code (high id shifted by
#: ID_BITS) always fits a *signed* 64-bit ``array('q')`` slot.
MAX_IDS = 1 << (ID_BITS - 1)


def pack_pair(v_id: int, u_id: int) -> int:
    """Pack two dense vertex ids into one 64-bit pair code."""
    return (v_id << ID_BITS) | u_id


def unpack_pair(code: int) -> tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    return code >> ID_BITS, code & ID_MASK


class VertexInterner:
    """Bidirectional mapping between vertices and dense integer ids.

    Ids are assigned in first-seen order, starting at 0, and are never
    recycled: a removed vertex keeps its id so pair codes referencing it
    in historical structures still decode (the graph simply has no live
    adjacency for it).  This mirrors how the label registry treats label
    ids.
    """

    __slots__ = ("_id_of", "_vertices")

    def __init__(self, vertices: Iterable[Hashable] = ()) -> None:
        self._id_of: dict[Hashable, int] = {}
        self._vertices: list[Hashable] = []
        for vertex in vertices:
            self.intern(vertex)

    def intern(self, vertex: Hashable) -> int:
        """Return the id of ``vertex``, assigning the next id if new."""
        vid = self._id_of.get(vertex)
        if vid is None:
            vid = len(self._vertices)
            if vid >= MAX_IDS:  # pragma: no cover - 4B vertices
                raise GraphError("vertex interner exhausted 32-bit id space")
            self._id_of[vertex] = vid
            self._vertices.append(vertex)
        return vid

    def id_of(self, vertex: Hashable) -> int:
        """The id of an interned vertex; raises for unknown vertices."""
        try:
            return self._id_of[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def get_id(self, vertex: Hashable) -> int | None:
        """The id of ``vertex``, or None if it was never interned."""
        return self._id_of.get(vertex)

    def vertex_of(self, vid: int) -> Hashable:
        """Reverse lookup: the vertex object behind a dense id."""
        return self._vertices[vid]

    def encode_pair(self, pair: tuple[Hashable, Hashable]) -> int:
        """Pack an ``(v, u)`` vertex pair into its 64-bit code."""
        return (self.id_of(pair[0]) << ID_BITS) | self.id_of(pair[1])

    def decode_pair(self, code: int) -> tuple[Hashable, Hashable]:
        """Inverse of :meth:`encode_pair`."""
        vertices = self._vertices
        return (vertices[code >> ID_BITS], vertices[code & ID_MASK])

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._id_of

    def __repr__(self) -> str:
        return f"VertexInterner({len(self._vertices)} ids)"


class InternedView:
    """Id-indexed snapshot of a graph's extended adjacency.

    ``out[v_id]`` maps an extended label (negative = inverse traversal)
    to the tuple of target ids — the interned equivalent of
    :meth:`repro.graph.digraph.LabeledDigraph.out_items`.  ``triples``
    lists the forward edges as id triples.  Built once per graph
    version by :meth:`LabeledDigraph.interned`; treat as immutable.
    """

    __slots__ = ("num_ids", "out", "triples", "live_ids")

    def __init__(
        self,
        num_ids: int,
        out: list[dict[int, tuple[int, ...]]],
        triples: list[tuple[int, int, int]],
        live_ids: tuple[int, ...],
    ) -> None:
        self.num_ids = num_ids
        self.out = out
        self.triples = triples
        #: Ids of vertices currently in the graph (removed ids excluded).
        self.live_ids = live_ids

    def successors(self, vid: int, label: int) -> tuple[int, ...]:
        """Target ids one extended ``label`` step from ``vid``."""
        return self.out[vid].get(label, ())

    def __repr__(self) -> str:
        return (
            f"InternedView(ids={self.num_ids}, live={len(self.live_ids)}, "
            f"|E|={len(self.triples)})"
        )
