"""Label vocabulary with inverse-label support.

The paper (Sec. III-A) works over a finite label set ``L`` extended with an
inverse ``l⁻¹`` for every ``l ∈ L``: for each edge ``(v, u, l)`` the
extended edge set also contains ``(u, v, l⁻¹)``.

We encode labels as non-zero signed integers:

* a forward label is a positive id ``l >= 1``;
* its inverse is the negation ``-l``;
* ``inverse(inverse(l)) == l`` holds by construction.

:class:`LabelRegistry` maps human-readable names to ids.  The engines
(`CPQx`, baselines, the executor) operate purely on integer ids, which keeps
hot loops free of string handling; names only matter at the API boundary.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import UnknownLabelError

#: Type alias for a label id (non-zero signed int; negative means inverse).
Label = int

#: Type alias for a label sequence, e.g. ``(1, -2)`` for ``a ∘ b⁻¹``.
LabelSeq = tuple[Label, ...]


def inverse(label: Label) -> Label:
    """Return the inverse of ``label`` (an involution: ``inverse(-l) == l``)."""
    if label == 0:
        raise UnknownLabelError(0)
    return -label


def is_inverse(label: Label) -> bool:
    """Return True if ``label`` denotes an inverse (backward) traversal."""
    return label < 0


def base_label(label: Label) -> Label:
    """Return the forward (positive) label underlying ``label``."""
    return abs(label)


def inverse_sequence(seq: LabelSeq) -> LabelSeq:
    """Return the label sequence matching the reversed paths of ``seq``.

    A path matches ``seq`` from ``v`` to ``u`` exactly when the reversed
    path matches ``inverse_sequence(seq)`` from ``u`` to ``v``.
    """
    return tuple(-label for label in reversed(seq))


class LabelRegistry:
    """Bidirectional mapping between label names and signed integer ids.

    Forward labels are assigned ids ``1, 2, 3, ...`` in registration order.
    Inverse labels are referred to by negative ids and stringified with a
    ``^-`` suffix (``"follows^-"``), which the CPQ parser also accepts.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        for name in names:
            self.register(name)

    def register(self, name: str) -> Label:
        """Register ``name`` (idempotent) and return its forward id."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        if not name:
            raise UnknownLabelError(name)
        label = len(self._id_to_name) + 1
        self._name_to_id[name] = label
        self._id_to_name.append(name)
        return label

    def id_of(self, name: str) -> Label:
        """Return the id for ``name``; accepts the ``^-`` inverse suffix."""
        if name.endswith("^-"):
            return -self.id_of(name[:-2])
        label = self._name_to_id.get(name)
        if label is None:
            raise UnknownLabelError(name)
        return label

    def name_of(self, label: Label) -> str:
        """Return the printable name of ``label`` (inverse ids get ``^-``)."""
        index = abs(label) - 1
        if label == 0 or index >= len(self._id_to_name):
            raise UnknownLabelError(label)
        name = self._id_to_name[index]
        return f"{name}^-" if label < 0 else name

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        if name.endswith("^-"):
            name = name[:-2]
        return name in self._name_to_id

    def __len__(self) -> int:
        """Number of registered forward labels (inverses are implicit)."""
        return len(self._id_to_name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def forward_ids(self) -> range:
        """All forward label ids, as a range ``1..len``."""
        return range(1, len(self._id_to_name) + 1)

    def all_ids(self) -> list[Label]:
        """All label ids including inverses, forward ids first."""
        forward = list(self.forward_ids())
        return forward + [-label for label in forward]

    def sequence_of(self, names: Iterable[str]) -> LabelSeq:
        """Translate an iterable of label names into a label-id sequence."""
        return tuple(self.id_of(name) for name in names)

    def format_sequence(self, seq: LabelSeq) -> str:
        """Render a label-id sequence as a human readable string."""
        return "⟨" + ", ".join(self.name_of(label) for label in seq) + "⟩"
