"""Edge-labeled directed multigraph with inverse-label traversal.

This is the graph model of the paper (Sec. III-A): ``G = (V, E, L)`` with
``E ⊆ V × V × L``, extended for traversal purposes with an inverse label
``l⁻¹`` for each ``l ∈ L`` and an inverse edge ``(u, v, l⁻¹)`` for each
``(v, u, l) ∈ E``.  The inverse extension is *virtual*: only forward edges
are stored, and negative label ids (see :mod:`repro.graph.labels`) traverse
the stored reverse-adjacency structure.

Vertices may be any hashable object; the synthetic dataset generators use
integers, while the running example graph uses strings (user names).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError, UnknownVertexError
from repro.graph.interner import InternedView, VertexInterner
from repro.graph.labels import Label, LabelRegistry, LabelSeq

#: Type alias for a vertex (any hashable).
Vertex = Hashable

#: Type alias for a source-target vertex pair ("s-t pair" in the paper).
Pair = tuple[Vertex, Vertex]

#: Type alias for a forward edge triple ``(v, u, l)``.
Triple = tuple[Vertex, Vertex, Label]


class LabeledDigraph:
    """Directed edge-labeled multigraph with O(1) forward/inverse adjacency.

    Storage: two nested maps ``_out[v][l] -> set(u)`` and
    ``_in[u][l] -> set(v)`` over forward labels only.  A negative label
    ``-l`` traverses ``_in`` instead of ``_out``, which realizes the paper's
    inverse-extended edge set without materializing it.
    """

    def __init__(self, registry: LabelRegistry | None = None) -> None:
        self.registry = registry if registry is not None else LabelRegistry()
        self._out: dict[Vertex, dict[Label, set[Vertex]]] = {}
        self._in: dict[Vertex, dict[Label, set[Vertex]]] = {}
        self._data: dict[Vertex, dict[str, object]] = {}
        self._num_edges = 0
        #: Dense vertex ↔ id map feeding the columnar pair-set core.
        self.interner = VertexInterner()
        #: Monotone structural-mutation counter; cache invalidation token.
        #: Vertex/edge changes only — attribute writes bump
        #: ``_data_version`` instead, because cached pair sets and the
        #: interned adjacency snapshot are independent of vertex data
        #: (filters are applied post-cache against live data).
        self._version = 0
        self._data_version = 0
        self._interned_cache: tuple[int, InternedView] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Vertex, Vertex, object]],
        registry: LabelRegistry | None = None,
    ) -> LabeledDigraph:
        """Build a graph from ``(source, target, label)`` triples.

        Labels may be names (strings, auto-registered) or integer ids.
        """
        graph = cls(registry)
        for v, u, label in triples:
            graph.add_edge(v, u, label)
        return graph

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if v not in self._out:
            self._out[v] = {}
            self._in[v] = {}
            self.interner.intern(v)
            self._version += 1

    def add_edge(self, v: Vertex, u: Vertex, label: object) -> Label:
        """Add the forward edge ``(v, u, label)``; returns the label id.

        ``label`` may be a registered/unregistered name or a positive id.
        Adding a duplicate edge is a silent no-op (edge sets, not bags),
        matching the paper's set-based relational semantics.
        """
        lid = self._coerce_label(label)
        self.add_vertex(v)
        self.add_vertex(u)
        targets = self._out[v].setdefault(lid, set())
        if u not in targets:
            targets.add(u)
            self._in[u].setdefault(lid, set()).add(v)
            self._num_edges += 1
            self._version += 1
        return lid

    def remove_edge(self, v: Vertex, u: Vertex, label: object) -> None:
        """Remove the forward edge ``(v, u, label)``.

        Raises :class:`GraphError` if the edge does not exist.
        """
        lid = self._coerce_label(label)
        targets = self._out.get(v, {}).get(lid)
        if targets is None or u not in targets:
            raise GraphError(f"edge ({v!r}, {u!r}, {self.registry.name_of(lid)}) not in graph")
        targets.discard(u)
        if not targets:
            del self._out[v][lid]
        sources = self._in[u][lid]
        sources.discard(v)
        if not sources:
            del self._in[u][lid]
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and every edge incident to it."""
        if v not in self._out:
            raise UnknownVertexError(v)
        # The list() copies are load-bearing: remove_edge mutates the
        # adjacency dicts being iterated.
        for label, targets in list(self._out[v].items()):  # noqa: PERF101
            for u in list(targets):  # noqa: PERF101
                self.remove_edge(v, u, label)
        for label, sources in list(self._in[v].items()):  # noqa: PERF101
            for w in list(sources):  # noqa: PERF101
                self.remove_edge(w, v, label)
        del self._out[v]
        del self._in[v]
        self._data.pop(v, None)
        self._version += 1

    def _coerce_label(self, label: object) -> Label:
        if isinstance(label, str):
            return self.registry.register(label)
        if isinstance(label, int) and label > 0:
            return label
        raise GraphError(f"forward edges require a name or positive label id, got {label!r}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Structural-mutation counter (monotone).

        Every vertex/edge mutation bumps it; the executor's memo caches
        and the interned adjacency snapshot key on it, so a stale read
        is impossible by construction.  Attribute writes bump
        :attr:`data_version` instead — cached pair sets are independent
        of vertex data (filters re-read live data after every hit).
        """
        return self._version

    @property
    def data_version(self) -> int:
        """Attribute-mutation counter (monotone).

        The invalidation token for anything keyed on vertex-local data
        (e.g. a cache of pre-filtered result sets); the built-in engines
        don't need it because data filters are applied post-cache.
        """
        return self._data_version

    def interned(self) -> InternedView:
        """The id-indexed extended-adjacency snapshot for this version.

        Built lazily on first use after a mutation and cached; hot build
        pipelines (enumeration, partitioning, per-pair BFS) iterate this
        view instead of the vertex-keyed nested dicts.
        """
        cached = self._interned_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        interner = self.interner
        id_of = interner._id_of
        num_ids = len(interner)
        out: list[dict[Label, tuple[int, ...]]] = [{} for _ in range(num_ids)]
        triples: list[tuple[int, int, int]] = []
        for v, by_label in self._out.items():
            vid = id_of[v]
            adjacency = out[vid]
            for label, targets in by_label.items():
                ids = tuple(id_of[u] for u in targets)
                adjacency[label] = ids
                triples.extend((vid, uid, label) for uid in ids)
        for u, by_label in self._in.items():
            uid = id_of[u]
            adjacency = out[uid]
            for label, sources in by_label.items():
                adjacency[-label] = tuple(id_of[v] for v in sources)
        live_ids = tuple(sorted(id_of[v] for v in self._out))
        view = InternedView(num_ids, out, triples, live_ids)
        self._interned_cache = (self._version, view)
        return view

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of *forward* edges (the paper's Table II counts both
        directions; use :attr:`num_extended_edges` for that convention)."""
        return self._num_edges

    @property
    def num_extended_edges(self) -> int:
        """Edge count including virtual inverse edges (paper's ``|E|``)."""
        return 2 * self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._out)

    def has_vertex(self, v: Vertex) -> bool:
        """Return True if ``v`` is a vertex of the graph."""
        return v in self._out

    def triples(self) -> Iterator[Triple]:
        """Iterate over forward edges as ``(v, u, label_id)`` triples."""
        for v, by_label in self._out.items():
            for label, targets in by_label.items():
                for u in targets:
                    yield (v, u, label)

    def extended_triples(self) -> Iterator[Triple]:
        """Iterate forward and inverse edges (inverse label ids negative)."""
        for v, u, label in self.triples():
            yield (v, u, label)
            yield (u, v, -label)

    def has_edge(self, v: Vertex, u: Vertex, label: Label) -> bool:
        """Extended-edge membership: negative labels check the inverse."""
        if label < 0:
            v, u, label = u, v, -label
        return u in self._out.get(v, {}).get(label, ())

    def successors(self, v: Vertex, label: Label) -> frozenset[Vertex]:
        """Vertices reachable from ``v`` via one extended ``label`` edge."""
        adjacency = self._in if label < 0 else self._out
        return frozenset(adjacency.get(v, {}).get(abs(label), ()))

    def out_items(self, v: Vertex) -> Iterator[tuple[Label, set[Vertex]]]:
        """Iterate extended adjacency of ``v`` as ``(label, target-set)``.

        Yields forward labels from stored out-edges and negative labels
        from stored in-edges, i.e. the full extended out-neighborhood.
        """
        for label, targets in self._out.get(v, {}).items():
            yield label, targets
        for label, sources in self._in.get(v, {}).items():
            yield -label, sources

    def edge_labels(self, v: Vertex, u: Vertex) -> frozenset[Label]:
        """All extended labels ``l`` with an edge ``v --l--> u``.

        This is ``L≤1(v, u)`` minus the empty sequence; it contains negative
        ids for edges stored in the opposite direction.
        """
        labels = [
            lab for lab, targets in self._out.get(v, {}).items() if u in targets
        ]
        labels += [
            -lab for lab, sources in self._in.get(v, {}).items() if u in sources
        ]
        return frozenset(labels)

    def out_degree(self, v: Vertex) -> int:
        """Extended out-degree (forward out-edges plus inverse traversals)."""
        forward = sum(len(t) for t in self._out.get(v, {}).values())
        backward = sum(len(s) for s in self._in.get(v, {}).values())
        return forward + backward

    def max_degree(self) -> int:
        """Maximum extended degree ``d`` used in the complexity bounds."""
        return max((self.out_degree(v) for v in self._out), default=0)

    def labels_used(self) -> frozenset[Label]:
        """Forward label ids appearing on at least one edge."""
        used: set[Label] = set()
        for by_label in self._out.values():
            used.update(by_label)
        return frozenset(used)

    # ------------------------------------------------------------------
    # vertex-local data (the Sec. VII extension: "edges and vertices can
    # also carry local data, e.g. user vertices might have their names
    # and dates of birth")
    # ------------------------------------------------------------------
    def set_vertex_data(self, v: Vertex, **attributes: object) -> None:
        """Attach (merge) key/value attributes onto a vertex."""
        if v not in self._out:
            raise UnknownVertexError(v)
        self._data.setdefault(v, {}).update(attributes)
        self._data_version += 1

    def vertex_data(self, v: Vertex) -> dict[str, object]:
        """The vertex's attribute dict (empty if none set; a copy)."""
        if v not in self._out:
            raise UnknownVertexError(v)
        return dict(self._data.get(v, ()))

    def vertices_where(self, predicate) -> Iterator[Vertex]:
        """Vertices whose attribute dict satisfies ``predicate(data)``."""
        for v in self._out:
            if predicate(self._data.get(v, {})):
                yield v

    # ------------------------------------------------------------------
    # relational helpers used by the index-free engines
    # ------------------------------------------------------------------
    def label_relation(self, label: Label) -> set[Pair]:
        """The binary relation ``⟦l⟧G`` of an extended label (Sec. III-B)."""
        if label < 0:
            return {(u, v) for v, u in self._iter_label_pairs(-label)}
        return set(self._iter_label_pairs(label))

    def _iter_label_pairs(self, label: Label) -> Iterator[Pair]:
        for v, by_label in self._out.items():
            for u in by_label.get(label, ()):
                yield (v, u)

    def sequence_relation(self, seq: LabelSeq) -> set[Pair]:
        """Pairs connected by a path matching the label sequence ``seq``.

        Empty sequence yields the identity relation.  Used by the BFS
        baseline and by maintenance for alternative-path checks.
        """
        if not seq:
            return {(v, v) for v in self._out}
        pairs = self.label_relation(seq[0])
        for label in seq[1:]:
            pairs = {
                (v, w)
                for v, u in pairs
                for w in self.successors(u, label)
            }
        return pairs

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the interned adjacency snapshot.

        The snapshot is a pure cache, cheap to rebuild and a large share
        of the payload when a parallel build ships the graph to its
        worker processes (:mod:`repro.core.parallel`).
        """
        state = self.__dict__.copy()
        state["_interned_cache"] = None
        return state

    def copy(self) -> LabeledDigraph:
        """Deep-copy the graph structure (shares the label registry)."""
        clone = LabeledDigraph(self.registry)
        for v in self._out:
            clone.add_vertex(v)
        for v, u, label in self.triples():
            clone.add_edge(v, u, label)
        for v, data in self._data.items():
            clone._data[v] = dict(data)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledDigraph):
            return NotImplemented
        return (
            set(self._out) == set(other._out)
            and set(self.triples()) == set(other.triples())
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("LabeledDigraph is unhashable")

    def __repr__(self) -> str:
        return (
            f"LabeledDigraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|L|={len(self.registry)})"
        )
