"""Graph substrate: labeled digraphs, IO, generators, schemas, datasets."""

from repro.graph.digraph import LabeledDigraph, Pair, Triple, Vertex
from repro.graph.interner import InternedView, VertexInterner
from repro.graph.labels import (
    Label,
    LabelRegistry,
    LabelSeq,
    base_label,
    inverse,
    inverse_sequence,
    is_inverse,
)
from repro.graph.metrics import degree_summary, density, label_skew, summarize

__all__ = [
    "InternedView",
    "LabeledDigraph",
    "Label",
    "LabelRegistry",
    "LabelSeq",
    "Pair",
    "Triple",
    "Vertex",
    "VertexInterner",
    "base_label",
    "degree_summary",
    "density",
    "inverse",
    "inverse_sequence",
    "is_inverse",
    "label_skew",
    "summarize",
]
