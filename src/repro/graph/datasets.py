"""Dataset registry: synthetic stand-ins for the paper's 19 graphs.

The paper (Table II) evaluates on 14 real graphs plus 5 gMark synthetics.
The real graphs are not redistributable in this offline environment, so
each is replaced by a seeded generator preserving the characteristics the
evaluation depends on (see DESIGN.md §2): density, label-vocabulary size,
label skew (λ=0.5 exponential where the paper assigns labels itself), and
scenario structure.  Sizes are scaled down so pure Python completes; the
paper's original statistics are retained in :attr:`DatasetSpec.paper_stats`
for side-by-side reporting.

Datasets on which the paper could *not* build the interest-unaware indexes
(out-of-memory entries "-" in Table IV: WebGoogle, WikiTalk, YAGO,
CitPatents, Wikidata, Freebase, g-Mark-*) are marked
``full_index_feasible=False``; the benchmark harness builds only iaCPQx /
iaPath on them, mirroring the paper's reporting.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import (
    community_graph,
    knowledge_graph,
    preferential_attachment_graph,
    random_graph,
)
from repro.graph.labels import LabelRegistry
from repro.graph.schema import citation_schema, lubm_schema, watdiv_schema, yago_like_schema


@dataclass(frozen=True)
class PaperStats:
    """The original Table II statistics (|E| and |L| include inverses)."""

    vertices: int
    edges: int
    labels: int
    real_labels: bool


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: builder plus provenance metadata."""

    name: str
    description: str
    builder: Callable[[float, int], LabeledDigraph] = field(repr=False)
    paper_stats: PaperStats
    full_index_feasible: bool = True

    def build(self, scale: float = 1.0, seed: int = 0) -> LabeledDigraph:
        """Instantiate the dataset at the given size scale (1.0 = default)."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return self.builder(scale, seed)


def _s(n: int, scale: float) -> int:
    """Scale a size, keeping at least a workable minimum."""
    return max(8, int(round(n * scale)))


# ---------------------------------------------------------------------------
# The running example graph Gex (Fig. 1)
# ---------------------------------------------------------------------------

EXAMPLE_USERS = (
    "ada", "tim", "sue", "joe", "jon", "zoe",
    "liz", "tom", "flo", "jay", "aya", "ben",
)
EXAMPLE_BLOGS = ("123", "987")

_EXAMPLE_FOLLOWS = (
    ("sue", "joe"), ("joe", "zoe"), ("zoe", "sue"),        # the triad
    ("ada", "tim"), ("ada", "tom"),
    ("tim", "flo"), ("tim", "jay"), ("tom", "flo"),
    ("flo", "aya"), ("jay", "aya"),
    ("aya", "liz"), ("aya", "jon"),
    ("liz", "ben"), ("ben", "ada"),
)
_EXAMPLE_VISITS = (
    ("ada", "123"), ("tim", "123"), ("tom", "123"), ("jon", "123"),
    ("joe", "123"), ("sue", "123"), ("zoe", "123"),
    ("jay", "987"), ("aya", "987"), ("flo", "987"), ("ben", "987"),
    ("liz", "987"),
)


def example_graph() -> LabeledDigraph:
    """The paper's running example graph ``Gex`` (Fig. 1), reconstructed.

    Twelve users and two blogs with ``f`` (follows) and ``v`` (visits)
    edges.  The published figure is not machine-readable, so the edge set
    is reconstructed to satisfy *every* fact stated in the text:

    * the triad query ``(f ∘ f) ∩ f⁻¹`` answers exactly
      ``{(sue, zoe), (joe, sue), (zoe, joe)}`` (Sec. I);
    * ``L≤2(ada, ada) ⊇ {⟨f,f⁻¹⟩, ⟨v,v⁻¹⟩, ⟨f⁻¹,f⟩}`` and
      ``L≤2(joe, sue) ⊇ {⟨f⁻¹⟩, ⟨f,f⟩, ⟨v,v⁻¹⟩}`` (Example 3.1);
    * ``(ada,tim)`` and ``(ada,tom)`` are CPQ₂-equivalent with label set
      ``{f, vv⁻¹}`` via blog 123 (Example 4.2);
    * after deleting the ``(ada, tim, f)`` edge, ``(ada, 123)`` retains an
      alternative ``⟨f, v⟩`` path through tom (Example 4.4);
    * the three triad edges form one CPQ₂ class with label set
      ``{f, vv⁻¹, f⁻¹f⁻¹}`` (Fig. 3's class c=7), which forces the triad
      members to share blog 123;
    * ``(ada, aya)`` has no path of length ≤ 2 (Fig. 3's empty class);
    * 14 ``f`` edges and 12 ``v`` edges, as drawn in Fig. 1.
    """
    registry = LabelRegistry(["f", "v"])
    graph = LabeledDigraph(registry)
    for user in EXAMPLE_USERS:
        graph.add_vertex(user)
    for blog in EXAMPLE_BLOGS:
        graph.add_vertex(blog)
    for v, u in _EXAMPLE_FOLLOWS:
        graph.add_edge(v, u, "f")
    for v, u in _EXAMPLE_VISITS:
        graph.add_edge(v, u, "v")
    return graph


# ---------------------------------------------------------------------------
# Stand-ins for the Table II datasets
# ---------------------------------------------------------------------------

def _robots(scale: float, seed: int) -> LabeledDigraph:
    return random_graph(_s(371, scale), _s(740, scale), 4, seed=seed)


def _ego_facebook(scale: float, seed: int) -> LabeledDigraph:
    return preferential_attachment_graph(_s(404, scale), 4, 8, seed=seed)


def _advogato(scale: float, seed: int) -> LabeledDigraph:
    return random_graph(_s(542, scale), _s(2566, scale), 4, seed=seed)


def _youtube(scale: float, seed: int) -> LabeledDigraph:
    return community_graph(_s(755, scale), _s(24, scale), _s(3600, scale), _s(900, scale), 5, seed=seed)


def _string_hs(scale: float, seed: int) -> LabeledDigraph:
    return community_graph(_s(600, scale), _s(30, scale), _s(3500, scale), _s(900, scale), 7, seed=seed)


def _string_fc(scale: float, seed: int) -> LabeledDigraph:
    return community_graph(_s(550, scale), _s(22, scale), _s(4200, scale), _s(1000, scale), 7, seed=seed)


def _biogrid(scale: float, seed: int) -> LabeledDigraph:
    return community_graph(_s(1000, scale), _s(50, scale), _s(2700, scale), _s(700, scale), 7, seed=seed)


def _epinions(scale: float, seed: int) -> LabeledDigraph:
    return preferential_attachment_graph(_s(1300, scale), 3, 8, seed=seed)


def _web_google(scale: float, seed: int) -> LabeledDigraph:
    return preferential_attachment_graph(_s(2000, scale), 3, 8, seed=seed)


def _wiki_talk(scale: float, seed: int) -> LabeledDigraph:
    return preferential_attachment_graph(_s(2400, scale), 2, 8, seed=seed)


def _yago(scale: float, seed: int) -> LabeledDigraph:
    return knowledge_graph(_s(2100, scale), _s(6200, scale), 37, seed=seed)


def _cit_patents(scale: float, seed: int) -> LabeledDigraph:
    return random_graph(_s(1900, scale), _s(8300, scale), 8, seed=seed)


def _wikidata(scale: float, seed: int) -> LabeledDigraph:
    return knowledge_graph(_s(2300, scale), _s(13800, scale), 200, seed=seed)


def _freebase(scale: float, seed: int) -> LabeledDigraph:
    return knowledge_graph(_s(2800, scale), _s(21000, scale), 300, seed=seed)


def _gmark(total_vertices: int) -> Callable[[float, int], LabeledDigraph]:
    def build(scale: float, seed: int) -> LabeledDigraph:
        return citation_schema().generate(_s(total_vertices, scale), seed=seed)

    return build


def _yago2_bench(scale: float, seed: int) -> LabeledDigraph:
    return yago_like_schema().generate(_s(2400, scale), seed=seed)


def _lubm_bench(scale: float, seed: int) -> LabeledDigraph:
    return lubm_schema().generate(_s(1500, scale), seed=seed)


def _watdiv_bench(scale: float, seed: int) -> LabeledDigraph:
    return watdiv_schema().generate(_s(1500, scale), seed=seed)


REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    REGISTRY[spec.name] = spec


_register(DatasetSpec(
    "robots", "small trust network with real labels",
    _robots, PaperStats(1_484, 5_920, 8, True)))
_register(DatasetSpec(
    "ego-facebook", "scale-free social circles, λ=0.5 synthetic labels",
    _ego_facebook, PaperStats(4_039, 176_468, 16, False)))
_register(DatasetSpec(
    "advogato", "trust network with real labels",
    _advogato, PaperStats(5_417, 102_654, 8, True)))
_register(DatasetSpec(
    "youtube", "dense community video network with real labels",
    _youtube, PaperStats(15_088, 21_452_214, 10, True)))
_register(DatasetSpec(
    "string-hs", "protein interactions (homo sapiens), real labels",
    _string_hs, PaperStats(16_956, 2_483_530, 14, True)))
_register(DatasetSpec(
    "string-fc", "protein interactions (functional clusters), real labels",
    _string_fc, PaperStats(15_515, 4_089_600, 14, True)))
_register(DatasetSpec(
    "biogrid", "protein/genetic interactions, real labels",
    _biogrid, PaperStats(64_332, 1_724_554, 14, True)))
_register(DatasetSpec(
    "epinions", "who-trusts-whom network, λ=0.5 synthetic labels",
    _epinions, PaperStats(131_828, 1_681_598, 16, False)))
_register(DatasetSpec(
    "web-google", "hyperlink web graph, λ=0.5 synthetic labels",
    _web_google, PaperStats(875_713, 10_210_074, 16, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "wiki-talk", "talk-page interaction graph, λ=0.5 synthetic labels",
    _wiki_talk, PaperStats(2_394_385, 10_042_820, 16, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "yago", "knowledge graph with many predicates",
    _yago, PaperStats(4_295_825, 24_861_400, 74, True),
    full_index_feasible=False))
_register(DatasetSpec(
    "cit-patents", "patent citation graph, λ=0.5 synthetic labels",
    _cit_patents, PaperStats(3_774_768, 33_037_896, 16, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "wikidata", "knowledge graph with very large predicate vocabulary",
    _wikidata, PaperStats(9_292_714, 110_851_582, 1_054, True),
    full_index_feasible=False))
_register(DatasetSpec(
    "freebase", "largest knowledge graph in the study",
    _freebase, PaperStats(14_420_276, 213_225_620, 1_556, True),
    full_index_feasible=False))
_register(DatasetSpec(
    "g-mark-1m", "gMark citation schema, smallest scalability point",
    _gmark(600), PaperStats(1_006_802, 15_925_506, 12, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "g-mark-5m", "gMark citation schema",
    _gmark(3_000), PaperStats(5_005_992, 84_994_500, 12, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "g-mark-10m", "gMark citation schema",
    _gmark(6_000), PaperStats(10_005_721, 183_748_319, 12, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "g-mark-15m", "gMark citation schema",
    _gmark(9_000), PaperStats(15_003_647, 255_538_724, 12, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "g-mark-20m", "gMark citation schema, largest scalability point",
    _gmark(12_000), PaperStats(20_004_856, 393_797_046, 12, False),
    full_index_feasible=False))
_register(DatasetSpec(
    "yago2-bench", "YAGO2-like schema graph for the Fig. 9 benchmark queries",
    _yago2_bench, PaperStats(80_000_000, 164_000_000, 38, True),
    full_index_feasible=False))
_register(DatasetSpec(
    "lubm-bench", "LUBM-like schema graph for the Fig. 10 sweep",
    _lubm_bench, PaperStats(0, 280_000_000, 16, True),
    full_index_feasible=False))
_register(DatasetSpec(
    "watdiv-bench", "WatDiv-like schema graph for the Fig. 10 sweep",
    _watdiv_bench, PaperStats(0, 220_000_000, 14, True),
    full_index_feasible=False))


def dataset_names() -> list[str]:
    """All registered dataset names, in registry (paper Table II) order."""
    return list(REGISTRY)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(REGISTRY)}"
        ) from None


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> LabeledDigraph:
    """Build the named dataset stand-in at the given scale."""
    return get_dataset(name).build(scale=scale, seed=seed)


def gmark_interests(graph: LabeledDigraph) -> list[tuple[int, ...]]:
    """The paper's five interest sequences for the synthetic datasets.

    Sec. VI: "we specify five label sequences as interests; cites-cites,
    cites-supervises, publishesIn-heldIn, worksIn-heldIn⁻¹, and
    livesIn-worksIn⁻¹".
    """
    r = graph.registry
    return [
        (r.id_of("cites"), r.id_of("cites")),
        (r.id_of("cites"), r.id_of("supervises")),
        (r.id_of("publishesIn"), r.id_of("heldIn")),
        (r.id_of("worksIn"), -r.id_of("heldIn")),
        (r.id_of("livesIn"), -r.id_of("worksIn")),
    ]


def _check_example_counts() -> tuple[int, int]:  # pragma: no cover - debug aid
    graph = example_graph()
    return graph.num_vertices, graph.num_edges


def gen_random(kind: str, scale: float = 1.0, seed: int = 0, **overrides) -> LabeledDigraph:
    """Convenience front-end over the raw generators for scripting.

    ``kind`` is one of ``random | preferential | community | knowledge``.
    """
    rng = random.Random(seed)
    if kind == "random":
        return random_graph(
            overrides.get("num_vertices", _s(500, scale)),
            overrides.get("num_edges", _s(2000, scale)),
            overrides.get("num_labels", 8), seed=rng)
    if kind == "preferential":
        return preferential_attachment_graph(
            overrides.get("num_vertices", _s(500, scale)),
            overrides.get("edges_per_vertex", 3),
            overrides.get("num_labels", 8), seed=rng)
    if kind == "community":
        return community_graph(
            overrides.get("num_vertices", _s(500, scale)),
            overrides.get("num_communities", 20),
            overrides.get("intra_edges", _s(2000, scale)),
            overrides.get("inter_edges", _s(500, scale)),
            overrides.get("num_labels", 8), seed=rng)
    if kind == "knowledge":
        return knowledge_graph(
            overrides.get("num_entities", _s(1000, scale)),
            overrides.get("num_edges", _s(4000, scale)),
            overrides.get("num_labels", 50), seed=rng)
    raise DatasetError(f"unknown generator kind {kind!r}")
