"""Random graph generators used to synthesize the paper's datasets.

The paper evaluates on real SNAP / STRING / knowledge-graph datasets that
are not redistributable here (offline environment), so the dataset registry
(:mod:`repro.graph.datasets`) composes these generators into *stand-ins*
that preserve the characteristics the evaluation depends on: density,
label-vocabulary size, and label skew.

Label skew follows the paper exactly: for graphs without real labels the
authors assign labels "exponentially distributed with λ = 0.5 which follows
the distribution of edge labels on YAGO" (Sec. VI) —
:func:`exponential_label` implements that assignment.

All generators take an explicit :class:`random.Random` or seed; none touch
global RNG state, so every dataset build is reproducible.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.errors import DatasetError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelRegistry


def _rng(seed: int | random.Random) -> random.Random:
    """Coerce a seed or Random instance into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def exponential_label(rng: random.Random, num_labels: int, rate: float = 0.5) -> int:
    """Sample a label id in ``1..num_labels`` with exponential skew.

    Label ``i`` gets probability proportional to ``exp(-rate * (i - 1))``,
    matching the paper's λ=0.5 assignment for its unlabeled SNAP graphs:
    label 1 dominates, the tail decays geometrically.
    """
    if num_labels < 1:
        raise DatasetError("num_labels must be >= 1")
    x = rng.expovariate(rate)
    label = int(x) + 1
    return min(label, num_labels)


def uniform_label(rng: random.Random, num_labels: int) -> int:
    """Sample a label id uniformly from ``1..num_labels``."""
    return rng.randint(1, num_labels)


def _label_names(num_labels: int, prefix: str) -> list[str]:
    width = len(str(num_labels))
    return [f"{prefix}{i:0{width}d}" for i in range(1, num_labels + 1)]


def random_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    seed: int | random.Random = 0,
    label_skew: str = "exponential",
    label_prefix: str = "l",
) -> LabeledDigraph:
    """Uniform random directed graph with skewed edge labels.

    Endpoints are sampled uniformly (Erdős–Rényi / Gilbert style with a
    fixed edge budget); self-loops are allowed with small probability, as
    real datasets contain a handful of them.  Duplicate ``(v, u, l)``
    samples collapse (the graph is a set of labeled edges), so the final
    edge count can be marginally below ``num_edges`` on dense settings.
    """
    rng = _rng(seed)
    registry = LabelRegistry(_label_names(num_labels, label_prefix))
    graph = LabeledDigraph(registry)
    for v in range(num_vertices):
        graph.add_vertex(v)
    pick = exponential_label if label_skew == "exponential" else uniform_label
    for _ in range(num_edges):
        v = rng.randrange(num_vertices)
        u = rng.randrange(num_vertices)
        graph.add_edge(v, u, pick(rng, num_labels))
    return graph


def preferential_attachment_graph(
    num_vertices: int,
    edges_per_vertex: int,
    num_labels: int,
    seed: int | random.Random = 0,
    label_skew: str = "exponential",
    label_prefix: str = "l",
) -> LabeledDigraph:
    """Scale-free graph (Barabási–Albert style) with labeled edges.

    Social networks (ego-Facebook, Epinions, WikiTalk stand-ins) have
    heavy-tailed degree distributions; preferential attachment reproduces
    the hub structure that makes the paper's `P≤k` sets skewed.
    """
    rng = _rng(seed)
    registry = LabelRegistry(_label_names(num_labels, label_prefix))
    graph = LabeledDigraph(registry)
    pick = exponential_label if label_skew == "exponential" else uniform_label
    targets: list[int] = []
    core = max(2, edges_per_vertex)
    for v in range(min(core, num_vertices)):
        graph.add_vertex(v)
        targets.append(v)
    for v in range(core, num_vertices):
        graph.add_vertex(v)
        for _ in range(edges_per_vertex):
            u = targets[rng.randrange(len(targets))]
            graph.add_edge(v, u, pick(rng, num_labels))
            targets.append(u)
        targets.append(v)
    return graph


def bipartite_visit_graph(
    num_users: int,
    num_items: int,
    follow_edges: int,
    visit_edges: int,
    seed: int | random.Random = 0,
    follow_label: str = "follows",
    visit_label: str = "visits",
    extra_labels: Sequence[str] = (),
) -> LabeledDigraph:
    """Two-layer social graph: user→user follows plus user→item visits.

    This is the structure of the paper's running example (Fig. 1) and of
    the Robots / Youtube-style datasets: a social follow layer over the
    users and a bipartite visit layer from users to items (blogs, videos).
    ``extra_labels`` adds further user→user relation types, each getting an
    equal share of ``follow_edges``.
    """
    rng = _rng(seed)
    registry = LabelRegistry([follow_label, visit_label, *extra_labels])
    graph = LabeledDigraph(registry)
    for v in range(num_users):
        graph.add_vertex(("u", v))
    for i in range(num_items):
        graph.add_vertex(("b", i))
    user_labels = [follow_label, *extra_labels]
    for _ in range(follow_edges):
        v = rng.randrange(num_users)
        u = rng.randrange(num_users)
        if v != u:
            graph.add_edge(("u", v), ("u", u), rng.choice(user_labels))
    for _ in range(visit_edges):
        v = rng.randrange(num_users)
        # preferential item choice: items are zipf-popular like real blogs
        i = min(int(rng.paretovariate(1.2)) - 1, num_items - 1)
        graph.add_edge(("u", v), ("b", i), visit_label)
    return graph


def community_graph(
    num_vertices: int,
    num_communities: int,
    intra_edges: int,
    inter_edges: int,
    num_labels: int,
    seed: int | random.Random = 0,
    label_prefix: str = "l",
) -> LabeledDigraph:
    """Community-structured graph (protein-interaction style).

    StringHS/StringFC/BioGrid stand-ins: dense clusters (complexes/pathways)
    with sparse bridges, few distinct labels (interaction types).
    """
    rng = _rng(seed)
    registry = LabelRegistry(_label_names(num_labels, label_prefix))
    graph = LabeledDigraph(registry)
    for v in range(num_vertices):
        graph.add_vertex(v)
    community_of = [rng.randrange(num_communities) for _ in range(num_vertices)]
    members: list[list[int]] = [[] for _ in range(num_communities)]
    for v, c in enumerate(community_of):
        members[c].append(v)
    members = [m for m in members if len(m) >= 2]
    if not members:
        raise DatasetError("community graph needs at least one community of size >= 2")
    for _ in range(intra_edges):
        group = members[rng.randrange(len(members))]
        v, u = rng.sample(group, 2)
        graph.add_edge(v, u, exponential_label(rng, num_labels))
    for _ in range(inter_edges):
        v = rng.randrange(num_vertices)
        u = rng.randrange(num_vertices)
        if v != u:
            graph.add_edge(v, u, exponential_label(rng, num_labels))
    return graph


def knowledge_graph(
    num_entities: int,
    num_edges: int,
    num_labels: int,
    seed: int | random.Random = 0,
    hub_fraction: float = 0.02,
    label_prefix: str = "p",
) -> LabeledDigraph:
    """Knowledge-graph stand-in: huge label vocabulary, hub entities.

    YAGO / Wikidata / Freebase share two traits the paper leans on: very
    many predicates with Zipfian usage, and a small set of hub entities
    (classes, countries) with enormous in-degree.  Both are reproduced here.
    """
    rng = _rng(seed)
    registry = LabelRegistry(_label_names(num_labels, label_prefix))
    graph = LabeledDigraph(registry)
    for v in range(num_entities):
        graph.add_vertex(v)
    num_hubs = max(1, int(num_entities * hub_fraction))
    for _ in range(num_edges):
        v = rng.randrange(num_entities)
        # 30% of targets are hubs (instance-of, country...).
        u = rng.randrange(num_hubs) if rng.random() < 0.3 else rng.randrange(num_entities)
        # Zipf-ish predicate usage over a large vocabulary.
        label = min(int(rng.paretovariate(0.8)), num_labels)
        graph.add_edge(v, u, label)
    return graph


def grid_graph(width: int, height: int, labels: Sequence[str] = ("right", "down")) -> LabeledDigraph:
    """Deterministic 2-label grid; handy for exact-answer unit tests."""
    registry = LabelRegistry(labels)
    graph = LabeledDigraph(registry)
    right, down = labels[0], labels[1]
    for y in range(height):
        for x in range(width):
            graph.add_vertex((x, y))
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                graph.add_edge((x, y), (x + 1, y), right)
            if y + 1 < height:
                graph.add_edge((x, y), (x, y + 1), down)
    return graph


def cycle_graph(length: int, label: str = "next") -> LabeledDigraph:
    """Single directed labeled cycle of the given length."""
    if length < 1:
        raise DatasetError("cycle length must be >= 1")
    graph = LabeledDigraph(LabelRegistry([label]))
    for v in range(length):
        graph.add_vertex(v)
    for v in range(length):
        graph.add_edge(v, (v + 1) % length, label)
    return graph


def relabel_graph(
    graph: LabeledDigraph,
    num_labels: int,
    seed: int | random.Random = 0,
    rate: float = 0.5,
    label_prefix: str = "l",
) -> LabeledDigraph:
    """Re-assign exponentially distributed labels onto an existing topology.

    Implements the paper's treatment of unlabeled SNAP graphs and the
    Fig. 12 experiment (same ego-Facebook topology, label count varied
    from 16 to 1024).
    """
    rng = _rng(seed)
    registry = LabelRegistry(_label_names(num_labels, label_prefix))
    relabeled = LabeledDigraph(registry)
    for v in graph.vertices():
        relabeled.add_vertex(v)
    for v, u, _ in sorted(graph.triples(), key=repr):
        relabeled.add_edge(v, u, exponential_label(rng, num_labels, rate))
    return relabeled


def expected_label_counts(num_edges: int, num_labels: int, rate: float = 0.5) -> list[float]:
    """Expected per-label edge counts under :func:`exponential_label`.

    Exposed for the dataset-statistics tests, which check that generated
    skew tracks the analytic distribution.
    """
    masses = []
    for i in range(num_labels):
        low, high = float(i), float(i + 1)
        masses.append(math.exp(-rate * low) - math.exp(-rate * high))
    # final label absorbs the tail
    masses[-1] += math.exp(-rate * num_labels)
    return [num_edges * m for m in masses]
