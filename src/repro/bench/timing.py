"""Timing utilities for the benchmark harness."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class Timing:
    """Aggregate of repeated timed runs (seconds)."""

    repeats: int
    total: float
    best: float
    mean: float

    def format_mean(self) -> str:
        """Paper-style scientific rendering (their plots are log-scale)."""
        return f"{self.mean:.3e}s"


def time_call(fn: Callable[[], object], repeats: int = 1) -> Timing:
    """Time ``fn`` over ``repeats`` runs with ``perf_counter``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    durations: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    total = sum(durations)
    return Timing(
        repeats=repeats,
        total=total,
        best=min(durations),
        mean=total / repeats,
    )


def time_queries(
    evaluate: Callable[[object], object],
    queries: list,
    repeats: int = 1,
) -> Timing:
    """Average evaluation time over a query list (the paper reports the
    average response time over each template's ten queries)."""
    if not queries:
        return Timing(repeats=0, total=0.0, best=0.0, mean=0.0)
    per_query: list[float] = []
    for query in queries:
        timing = time_call(lambda q=query: evaluate(q), repeats=repeats)
        per_query.append(timing.mean)
    total = sum(per_query)
    return Timing(
        repeats=len(per_query) * repeats,
        total=total,
        best=min(per_query),
        mean=total / len(per_query),
    )
