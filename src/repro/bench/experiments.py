"""One function per table and figure of the paper's evaluation (Sec. VI).

Each function is deterministic (seeded), returns an
:class:`repro.bench.reporting.ExperimentResult`, and is wrapped by a
``benchmarks/bench_*.py`` target.  Dataset sizes are governed by the
harness scale (see :mod:`repro.bench.runner`); the reproduction target is
the paper's *shape* — method rankings, rough factors, crossovers — not
absolute numbers (pure-Python substrate on synthetic stand-ins).

Index of experiments (see DESIGN.md §3): Table II → :func:`table2_datasets`,
Fig. 6 → :func:`fig6_query_time`, Table III → :func:`table3_pruning_power`,
Fig. 7 → :func:`fig7_empty_nonempty`, Fig. 8 → :func:`fig8_interest_size`,
Fig. 9 → :func:`fig9_yago_benchmark`, Fig. 10 → :func:`fig10_lubm_watdiv`,
Fig. 11 → :func:`fig11_scalability`, Fig. 12 → :func:`fig12_label_count`,
Table IV → :func:`table4_index_size`, Table V → :func:`table5_cpqx_updates`,
Table VI → :func:`table6_iacpqx_updates`, Table VII →
:func:`table7_size_growth`, Fig. 13 → :func:`fig13_maintenance_impact`,
Fig. 14 → :func:`fig14_k_query_time`, Fig. 15 → :func:`fig15_k_index_cost`.
"""

from __future__ import annotations

import random

from repro.bench.reporting import ExperimentResult
from repro.bench.runner import (
    ALL_METHODS,
    FULL_INDEX_METHODS,
    bench_datasets,
    bench_queries,
    bench_scale,
    build_engine,
    prepare_dataset,
)
from repro.bench.timing import time_call, time_queries
from repro.core.cpqx import CPQxIndex
from repro.core.executor import ExecutionStats
from repro.core.interest import InterestAwareIndex
from repro.core.stats import dataset_stats
from repro.graph.datasets import REGISTRY, gmark_interests
from repro.graph.generators import preferential_attachment_graph, relabel_graph
from repro.graph.schema import citation_schema, lubm_schema, watdiv_schema
from repro.query.templates import lubm_queries, template_names, watdiv_queries, yago2_queries
from repro.query.workloads import split_by_emptiness, workload_interests

#: Small, fast dataset subset used by default in the per-dataset sweeps.
DEFAULT_FIG6_DATASETS = (
    "robots", "ego-facebook", "advogato", "biogrid", "epinions", "yago",
)
#: Datasets used for the update-time tables (paper's Tables V/VI rows).
DEFAULT_UPDATE_DATASETS = ("robots", "advogato", "biogrid")


def _load(name: str, scale: float | None = None, seed: int = 7):
    spec = REGISTRY[name]
    graph = spec.build(scale=bench_scale() if scale is None else scale, seed=seed)
    return spec, graph


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def table2_datasets(names: tuple[str, ...] | None = None, seed: int = 7) -> ExperimentResult:
    """Table II: dataset overview (stand-in vs paper statistics)."""
    names = names or tuple(REGISTRY)
    result = ExperimentResult(
        experiment="Table II",
        title="dataset overview (|E|,|L| include inverses; paper columns for reference)",
        headers=["dataset", "|V|", "|E|", "|L|", "paper|V|", "paper|E|", "paper|L|", "real labels"],
    )
    for name in names:
        spec, graph = _load(name, seed=seed)
        stats = dataset_stats(name, graph)
        result.rows.append([
            name, stats.vertices, stats.edges_extended, stats.labels_extended,
            spec.paper_stats.vertices, spec.paper_stats.edges, spec.paper_stats.labels,
            "yes" if spec.paper_stats.real_labels else "no",
        ])
    return result


# ---------------------------------------------------------------------------
# Fig. 6 — the main query-time comparison
# ---------------------------------------------------------------------------

def fig6_query_time(
    datasets: tuple[str, ...] | None = None,
    methods: tuple[str, ...] = ALL_METHODS,
    templates: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
    repeats: int = 1,
) -> ExperimentResult:
    """Fig. 6: average query time per template, per dataset, per method.

    Methods needing the full ≤k enumeration (CPQx, Path) are skipped on
    datasets marked infeasible — the stand-in for the paper's
    out-of-memory dashes.
    """
    datasets = bench_datasets(datasets or DEFAULT_FIG6_DATASETS)
    templates = templates or tuple(template_names())
    result = ExperimentResult(
        experiment="Fig. 6",
        title="average query time [s] per template",
        headers=["dataset", "method", "template", "mean_time_s", "queries", "answers"],
    )
    for name in datasets:
        spec, graph = _load(name, seed=seed)
        prepared = prepare_dataset(
            name, graph, templates, bench_queries(), k=k, seed=seed,
            full_index_feasible=spec.full_index_feasible,
        )
        for method in methods:
            if method in FULL_INDEX_METHODS and not prepared.full_index_feasible:
                continue
            engine = prepared.engine(method, k=k)
            for template in templates:
                queries = prepared.workload[template]
                if not queries:
                    continue
                answers = sum(len(engine.evaluate(wq.query)) for wq in queries)
                timing = time_queries(
                    lambda q: engine.evaluate(q),
                    [wq.query for wq in queries],
                    repeats=repeats,
                )
                result.rows.append([
                    name, method, template, timing.mean, len(queries), answers,
                ])
    return result


# ---------------------------------------------------------------------------
# Table III — pruning power
# ---------------------------------------------------------------------------

def table3_pruning_power(
    datasets: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Table III: class ids (CPQx/iaCPQx) vs s-t pairs (iaPath) on S queries."""
    datasets = bench_datasets(datasets or DEFAULT_FIG6_DATASETS)
    result = ExperimentResult(
        experiment="Table III",
        title="identifiers involved in evaluating S queries (lower = more pruning)",
        headers=["dataset", "CPQx classes", "iaCPQx classes", "iaPath pairs"],
    )
    for name in datasets:
        spec, graph = _load(name, seed=seed)
        prepared = prepare_dataset(
            name, graph, ("S",), bench_queries(), k=k, seed=seed,
            full_index_feasible=spec.full_index_feasible,
        )
        queries = [wq.query for wq in prepared.workload["S"]]
        if not queries:
            continue

        def touched(engine, classes: bool) -> float:
            totals = []
            for query in queries:
                stats = ExecutionStats()
                engine.evaluate(query, stats=stats)
                totals.append(stats.classes_touched if classes else stats.pairs_touched)
            return sum(totals) / len(totals)

        cpqx_touched: object = "-"
        if prepared.full_index_feasible:
            cpqx_touched = touched(prepared.engine("CPQx", k=k), classes=True)
        ia_touched = touched(prepared.engine("iaCPQx", k=k), classes=True)
        iapath_touched = touched(prepared.engine("iaPath", k=k), classes=False)
        result.rows.append([name, cpqx_touched, ia_touched, iapath_touched])
    return result


# ---------------------------------------------------------------------------
# Fig. 7 — empty vs non-empty vs first answer
# ---------------------------------------------------------------------------

def fig7_empty_nonempty(
    datasets: tuple[str, ...] = ("yago", "wikidata", "freebase"),
    methods: tuple[str, ...] = ("iaCPQx", "TurboHom", "Tentris"),
    templates: tuple[str, ...] = ("C2", "T", "S", "TC", "C4", "Ti"),
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 7: query time split by answer emptiness, plus first-answer time."""
    datasets = bench_datasets(datasets)
    result = ExperimentResult(
        experiment="Fig. 7",
        title="empty / non-empty / first-answer query time [s]",
        headers=["dataset", "method", "template", "kind", "mean_time_s", "queries"],
    )
    for name in datasets:
        spec, graph = _load(name, seed=seed)
        prepared = prepare_dataset(
            name, graph, templates, bench_queries() * 2, k=k, seed=seed,
            full_index_feasible=spec.full_index_feasible,
        )
        for template in templates:
            non_empty, empty = split_by_emptiness(prepared.workload[template], graph)
            for method in methods:
                engine = prepared.engine(method, k=k)
                for kind, queries in (("non-empty", non_empty), ("empty", empty)):
                    if not queries:
                        continue
                    timing = time_queries(
                        lambda q: engine.evaluate(q), [wq.query for wq in queries]
                    )
                    result.rows.append([
                        name, method, template, kind, timing.mean, len(queries),
                    ])
                if non_empty:
                    timing = time_queries(
                        lambda q: engine.evaluate(q, limit=1),
                        [wq.query for wq in non_empty],
                    )
                    result.rows.append([
                        name, method, template, "first", timing.mean, len(non_empty),
                    ])
    return result


# ---------------------------------------------------------------------------
# Fig. 8 — interest-set size vs query time
# ---------------------------------------------------------------------------

def fig8_interest_size(
    dataset: str = "yago",
    fractions: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2, 0.0),
    templates: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 8: iaCPQx query time as the interest set shrinks 100% → 0%.

    At 0% only the mandatory length-1 interests remain, so every multi-hop
    lookup decomposes into joins — the paper shows times rising as the
    interest share drops.
    """
    templates = templates or tuple(template_names())
    spec, graph = _load(dataset, seed=seed)
    prepared = prepare_dataset(
        dataset, graph, templates, bench_queries(), k=k, seed=seed,
        full_index_feasible=spec.full_index_feasible,
    )
    full_interests = sorted(
        (seq for seq in prepared.interests if len(seq) > 1), key=repr
    )
    rng = random.Random(seed)
    rng.shuffle(full_interests)
    result = ExperimentResult(
        experiment="Fig. 8",
        title=f"iaCPQx query time vs interest share on {dataset}",
        headers=["interest_pct", "template", "mean_time_s", "|Lq|"],
    )
    for fraction in fractions:
        keep = frozenset(full_interests[: int(round(len(full_interests) * fraction))])
        engine = InterestAwareIndex.build(graph, k=k, interests=keep)
        for template in templates:
            queries = [wq.query for wq in prepared.workload[template]]
            if not queries:
                continue
            timing = time_queries(lambda q: engine.evaluate(q), queries)
            result.rows.append([
                int(fraction * 100), template, timing.mean, len(engine.interests),
            ])
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — YAGO2 benchmark queries
# ---------------------------------------------------------------------------

def fig9_yago_benchmark(
    methods: tuple[str, ...] = ("iaCPQx", "iaPath", "TurboHom", "Tentris", "BFS"),
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 9: Y1–Y4 query time on the YAGO2-like schema graph."""
    _, graph = _load("yago2-bench", seed=seed)
    queries = {
        name: query for name, query in yago2_queries().items()
    }
    interests = frozenset(workload_interests(
        [_resolve(graph, q) for q in queries.values()], k
    ))
    result = ExperimentResult(
        experiment="Fig. 9",
        title="YAGO2 benchmark queries Y1-Y4 [s]",
        headers=["query", "method", "mean_time_s", "answers"],
    )
    engines = {m: build_engine(m, graph, k=k, interests=interests) for m in methods}
    for qname, query in queries.items():
        resolved = _resolve(graph, query)
        for method in methods:
            engine = engines[method]
            answers = len(engine.evaluate(resolved))
            timing = time_call(lambda: engine.evaluate(resolved))
            result.rows.append([qname, method, timing.mean, answers])
    return result


def _resolve(graph, query):
    from repro.query.ast import resolve

    return resolve(query, graph.registry)


# ---------------------------------------------------------------------------
# Fig. 10 — LUBM / WatDiv growth
# ---------------------------------------------------------------------------

def fig10_lubm_watdiv(
    sizes: tuple[int, ...] = (400, 800, 1600, 3200),
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 10: iaCPQx average benchmark-query time vs graph size.

    WatDiv's join-heavier queries grow faster than LUBM's, as in the
    paper.
    """
    result = ExperimentResult(
        experiment="Fig. 10",
        title="iaCPQx query time vs graph size (LUBM-like / WatDiv-like)",
        headers=["suite", "vertices", "edges", "mean_time_s"],
    )
    suites = (
        ("LUBM", lubm_schema(), lubm_queries()),
        ("WatDiv", watdiv_schema(), watdiv_queries()),
    )
    for suite_name, schema, queries in suites:
        for size in sizes:
            graph = schema.generate(size, seed=seed)
            resolved = [_resolve(graph, q) for q in queries.values()]
            interests = frozenset(workload_interests(resolved, k))
            engine = InterestAwareIndex.build(graph, k=k, interests=interests)
            timing = time_queries(lambda q: engine.evaluate(q), resolved)
            result.rows.append([
                suite_name, graph.num_vertices, graph.num_edges, timing.mean,
            ])
    return result


# ---------------------------------------------------------------------------
# Fig. 11 — gMark scalability
# ---------------------------------------------------------------------------

def fig11_scalability(
    sizes: tuple[int, ...] = (400, 800, 1600, 3200, 6400),
    templates: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 11: iaCPQx per-template query time as gMark graphs grow.

    Uses the paper's five citation-schema interests (Sec. VI "Methods").
    """
    templates = templates or tuple(template_names())
    result = ExperimentResult(
        experiment="Fig. 11",
        title="iaCPQx query time vs gMark graph size",
        headers=["vertices", "edges", "template", "mean_time_s"],
    )
    schema = citation_schema()
    for size in sizes:
        graph = schema.generate(size, seed=seed)
        interests = frozenset(gmark_interests(graph))
        prepared = prepare_dataset(
            f"gmark-{size}", graph, templates, bench_queries(), k=k, seed=seed
        )
        engine = InterestAwareIndex.build(
            graph, k=k, interests=interests | prepared.interests
        )
        for template in templates:
            queries = [wq.query for wq in prepared.workload[template]]
            if not queries:
                continue
            timing = time_queries(lambda q: engine.evaluate(q), queries)
            result.rows.append([
                graph.num_vertices, graph.num_edges, template, timing.mean,
            ])
    return result


# ---------------------------------------------------------------------------
# Fig. 12 — label-count sweep on the ego-Facebook topology
# ---------------------------------------------------------------------------

def fig12_label_count(
    label_counts: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024),
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 12: index sizes on one topology as the label count grows.

    Path/CPQx sizes grow with label count (more distinct sequences /
    classes); iaPath/iaCPQx sizes *shrink* (fewer pairs match the fixed
    interests) — the paper's robustness argument.
    """
    base = preferential_attachment_graph(
        max(120, int(404 * bench_scale())), 4, 8, seed=seed
    )
    result = ExperimentResult(
        experiment="Fig. 12",
        title="index size [bytes] vs number of labels (ego-Facebook topology)",
        headers=["labels", "Path", "CPQx", "iaPath", "iaCPQx"],
    )
    for count in label_counts:
        graph = relabel_graph(base, count, seed=seed)
        prepared = prepare_dataset(
            f"fb-{count}", graph, ("S", "C2"), bench_queries(), k=k, seed=seed
        )
        sizes = {}
        for method in ("Path", "CPQx", "iaPath", "iaCPQx"):
            engine = build_engine(method, graph, k=k, interests=prepared.interests)
            sizes[method] = engine.size_bytes()
        result.rows.append([
            count, sizes["Path"], sizes["CPQx"], sizes["iaPath"], sizes["iaCPQx"],
        ])
    return result


# ---------------------------------------------------------------------------
# Table IV — index size and construction time
# ---------------------------------------------------------------------------

def table4_index_size(
    datasets: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Table IV: size and build time for CPQx/iaCPQx/Path/iaPath.

    Datasets marked infeasible get "-" for CPQx/Path, mirroring the
    paper's out-of-memory entries.
    """
    datasets = bench_datasets(datasets or DEFAULT_FIG6_DATASETS + ("wikidata", "g-mark-1m"))
    result = ExperimentResult(
        experiment="Table IV",
        title="index size [bytes] and construction time [s]",
        headers=["dataset", "method", "size_bytes", "build_s", "classes", "pairs"],
    )
    for name in datasets:
        spec, graph = _load(name, seed=seed)
        prepared = prepare_dataset(
            name, graph, ("S", "C2", "T"), bench_queries(), k=k, seed=seed,
            full_index_feasible=spec.full_index_feasible,
        )
        for method in ("CPQx", "iaCPQx", "Path", "iaPath"):
            if method in FULL_INDEX_METHODS and not spec.full_index_feasible:
                result.rows.append([name, method, "-", "-", "-", "-"])
                continue
            timing = time_call(
                lambda m=method: prepared.engines.update(
                    {m: build_engine(m, graph, k=k, interests=prepared.interests)}
                )
            )
            engine = prepared.engines[method]
            result.rows.append([
                name, method, engine.size_bytes(), timing.mean,
                getattr(engine, "num_classes", "-"),
                getattr(engine, "num_pairs", 0),
            ])
    return result


# ---------------------------------------------------------------------------
# Tables V / VI — update times
# ---------------------------------------------------------------------------

def _update_rounds(graph, rng, count):
    """Pick ``count`` existing edges to delete and fresh edges to insert."""
    triples = sorted(graph.triples(), key=repr)
    deletions = rng.sample(triples, min(count, len(triples)))
    vertices = sorted(graph.vertices(), key=repr)
    labels = sorted(graph.labels_used())
    insertions = []
    while len(insertions) < count:
        v = rng.choice(vertices)
        u = rng.choice(vertices)
        lab = rng.choice(labels)
        if not graph.has_edge(v, u, lab):
            insertions.append((v, u, lab))
    return deletions, insertions


def table5_cpqx_updates(
    datasets: tuple[str, ...] | None = None,
    updates: int = 20,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Table V: average edge deletion / insertion time on CPQx."""
    datasets = bench_datasets(datasets or DEFAULT_UPDATE_DATASETS)
    result = ExperimentResult(
        experiment="Table V",
        title=f"CPQx update time [s] (avg over {updates} ops)",
        headers=["dataset", "edge_deletion_s", "edge_insertion_s"],
    )
    for name in datasets:
        _, graph = _load(name, seed=seed)
        index = CPQxIndex.build(graph, k=k)
        rng = random.Random(seed)
        deletions, insertions = _update_rounds(graph, rng, updates)
        del_time = time_call(
            lambda: [index.delete_edge(*edge) for edge in deletions]
        ).mean / max(1, len(deletions))
        ins_time = time_call(
            lambda: [index.insert_edge(*edge) for edge in insertions]
        ).mean / max(1, len(insertions))
        result.rows.append([name, del_time, ins_time])
    return result


def table6_iacpqx_updates(
    datasets: tuple[str, ...] | None = None,
    updates: int = 20,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Table VI: iaCPQx edge and label-sequence (interest) update times."""
    datasets = bench_datasets(datasets or DEFAULT_UPDATE_DATASETS + ("yago",))
    result = ExperimentResult(
        experiment="Table VI",
        title=f"iaCPQx update time [s] (avg over {updates} ops)",
        headers=[
            "dataset", "edge_deletion_s", "edge_insertion_s",
            "seq_deletion_s", "seq_insertion_s",
        ],
    )
    for name in datasets:
        spec, graph = _load(name, seed=seed)
        prepared = prepare_dataset(
            name, graph, ("C2",), bench_queries() * 3, k=k, seed=seed,
            full_index_feasible=spec.full_index_feasible,
        )
        index = InterestAwareIndex.build(graph, k=k, interests=prepared.interests)
        rng = random.Random(seed)
        deletions, insertions = _update_rounds(graph, rng, updates)
        del_time = time_call(
            lambda: [index.delete_edge(*edge) for edge in deletions]
        ).mean / max(1, len(deletions))
        ins_time = time_call(
            lambda: [index.insert_edge(*edge) for edge in insertions]
        ).mean / max(1, len(insertions))
        # label-sequence (interest) updates: C2-query sequences, as the paper
        seqs = sorted(
            (seq for seq in index.interests if len(seq) > 1), key=repr
        )[:max(1, updates // 4)]
        seq_del = time_call(
            lambda: [index.delete_interest(seq) for seq in seqs]
        ).mean / max(1, len(seqs))
        seq_ins = time_call(
            lambda: [index.insert_interest(seq) for seq in seqs]
        ).mean / max(1, len(seqs))
        result.rows.append([name, del_time, ins_time, seq_del, seq_ins])
    return result


# ---------------------------------------------------------------------------
# Table VII / Fig. 13 — maintenance impact on size and query time
# ---------------------------------------------------------------------------

def table7_size_growth(
    dataset: str = "robots",
    edge_ratios: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20),
    seq_counts: tuple[int, ...] = (2, 4, 6, 8, 10),
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Table VII: index-size growth ratio after update bursts.

    Lazy maintenance never merges classes, so the index grows slightly;
    the paper's point is that the ratio stays small even at 20% churn.
    """
    result = ExperimentResult(
        experiment="Table VII",
        title=f"index size growth ratio after updates on {dataset}",
        headers=["index", "update_kind", "amount", "size_ratio"],
    )
    for ratio in edge_ratios:
        for method in ("CPQx", "iaCPQx"):
            _, graph = _load(dataset, seed=seed)
            prepared = prepare_dataset(
                dataset, graph, ("C2",), bench_queries() * 2, k=k, seed=seed
            )
            index = build_engine(method, graph, k=k, interests=prepared.interests)
            base_size = index.size_bytes()
            rng = random.Random(seed)
            count = max(1, int(graph.num_edges * ratio))
            deletions, _ = _update_rounds(graph, rng, count)
            for edge in deletions:
                index.delete_edge(*edge)
            for edge in deletions:
                index.insert_edge(*edge)
            result.rows.append([
                method, "edges", f"{int(ratio * 100)}%",
                index.size_bytes() / max(1, base_size),
            ])
    for count in seq_counts:
        _, graph = _load(dataset, seed=seed)
        prepared = prepare_dataset(
            dataset, graph, ("C2", "S"), bench_queries() * 3, k=k, seed=seed
        )
        index = InterestAwareIndex.build(graph, k=k, interests=prepared.interests)
        base_size = index.size_bytes()
        seqs = sorted((s for s in index.interests if len(s) > 1), key=repr)[:count]
        for seq in seqs:
            index.delete_interest(seq)
        for seq in seqs:
            index.insert_interest(seq)
        result.rows.append([
            "iaCPQx", "sequences", str(len(seqs)),
            index.size_bytes() / max(1, base_size),
        ])
    return result


def fig13_maintenance_impact(
    dataset: str = "robots",
    edge_ratios: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20),
    templates: tuple[str, ...] | None = None,
    k: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 13: query time after lazily applying x% edge updates."""
    templates = templates or ("T", "S", "C2", "C4", "C2i", "Si")
    result = ExperimentResult(
        experiment="Fig. 13",
        title=f"query time after updates on {dataset}",
        headers=["index", "updated_pct", "template", "mean_time_s"],
    )
    for method in ("CPQx", "iaCPQx"):
        for ratio in edge_ratios:
            _, graph = _load(dataset, seed=seed)
            prepared = prepare_dataset(
                dataset, graph, templates, bench_queries(), k=k, seed=seed
            )
            index = build_engine(method, graph, k=k, interests=prepared.interests)
            rng = random.Random(seed)
            count = max(0, int(graph.num_edges * ratio))
            if count:
                deletions, _ = _update_rounds(graph, rng, count)
                for edge in deletions:
                    index.delete_edge(*edge)
                for edge in deletions:
                    index.insert_edge(*edge)
            for template in templates:
                queries = [wq.query for wq in prepared.workload[template]]
                if not queries:
                    continue
                timing = time_queries(lambda q: index.evaluate(q), queries)
                result.rows.append([
                    method, int(ratio * 100), template, timing.mean,
                ])
    return result


# ---------------------------------------------------------------------------
# Figs. 14 / 15 — behaviour in k
# ---------------------------------------------------------------------------

def fig14_k_query_time(
    datasets: tuple[str, ...] = ("robots",),
    ks: tuple[int, ...] = (1, 2, 3, 4),
    templates: tuple[str, ...] | None = None,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 14: iaCPQx query time as k grows (queries of diameter i are
    fastest around k = i; over-fine partitions can slow lookups)."""
    templates = templates or tuple(template_names())
    result = ExperimentResult(
        experiment="Fig. 14",
        title="iaCPQx query time vs k",
        headers=["dataset", "k", "template", "mean_time_s"],
    )
    for name in datasets:
        _, graph = _load(name, seed=seed)
        for k in ks:
            prepared = prepare_dataset(
                name, graph, templates, bench_queries(), k=k, seed=seed
            )
            engine = InterestAwareIndex.build(graph, k=k, interests=prepared.interests)
            for template in templates:
                queries = [wq.query for wq in prepared.workload[template]]
                if not queries:
                    continue
                timing = time_queries(lambda q: engine.evaluate(q), queries)
                result.rows.append([name, k, template, timing.mean])
    return result


def fig15_k_index_cost(
    datasets: tuple[str, ...] = ("robots", "advogato"),
    ks: tuple[int, ...] = (1, 2, 3, 4),
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 15: iaCPQx index size and construction time as k grows."""
    result = ExperimentResult(
        experiment="Fig. 15",
        title="iaCPQx size [bytes] and build time [s] vs k",
        headers=["dataset", "k", "size_bytes", "build_s", "classes", "pairs"],
    )
    for name in datasets:
        _, graph = _load(name, seed=seed)
        for k in ks:
            prepared = prepare_dataset(
                name, graph, ("S", "C4"), bench_queries(), k=k, seed=seed
            )
            holder: dict[str, InterestAwareIndex] = {}
            timing = time_call(
                lambda: holder.update(
                    idx=InterestAwareIndex.build(graph, k=k, interests=prepared.interests)
                )
            )
            index = holder["idx"]
            result.rows.append([
                name, k, index.size_bytes(), timing.mean,
                index.num_classes, index.num_pairs,
            ])
    return result
