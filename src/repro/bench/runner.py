"""Engine construction and workload wiring shared by all experiments.

The seven compared methods (Sec. VI "Methods"):

* ``CPQx`` / ``iaCPQx`` — this paper's indexes;
* ``Path`` / ``iaPath`` — the language-unaware path index [14] and its
  interest-restricted variant;
* ``TurboHom`` — homomorphic subgraph matcher (TurboHom++-style);
* ``Tentris`` — hypertrie triple store with WCOJ evaluation;
* ``BFS`` — index-free evaluation.

The interest-aware indexes receive "all label sequences in the set of
queries as the interests" (the paper's setup), computed from the generated
workload by :func:`repro.query.workloads.workload_interests`.

Environment knobs honoured by the harness (all optional):

* ``REPRO_BENCH_SCALE`` — dataset scale multiplier (default 0.35);
* ``REPRO_BENCH_QUERIES`` — queries per template (default 3; paper: 10);
* ``REPRO_BENCH_DATASETS`` — comma-separated dataset subset for Fig. 6.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.db import GraphDatabase
from repro.errors import DatasetError, UnknownEngineError
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq
from repro.query.workloads import WorkloadQuery, random_template_queries, workload_interests

#: All method names in the paper's reporting order.
ALL_METHODS = ("CPQx", "iaCPQx", "Path", "iaPath", "TurboHom", "Tentris", "BFS")
#: Methods that only need the interest sequences (feasible on all datasets).
INTEREST_METHODS = ("iaCPQx", "iaPath", "TurboHom", "Tentris", "BFS")
#: Methods that enumerate the full ≤k sequence space (can "OOM" like the paper).
FULL_INDEX_METHODS = ("CPQx", "Path")


def bench_scale(default: float = 0.35) -> float:
    """Dataset scale multiplier for benchmarks (env: REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_queries(default: int = 3) -> int:
    """Queries per template (env: REPRO_BENCH_QUERIES; paper uses 10)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


def bench_datasets(default: tuple[str, ...]) -> tuple[str, ...]:
    """Dataset subset override (env: REPRO_BENCH_DATASETS)."""
    raw = os.environ.get("REPRO_BENCH_DATASETS")
    if not raw:
        return default
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def build_engine(
    method: str,
    graph: LabeledDigraph,
    k: int = 2,
    interests: frozenset[LabelSeq] = frozenset(),
    workers: int | str = 1,
):
    """Instantiate one of the compared methods over ``graph``.

    Routes through the :class:`repro.db.GraphDatabase` facade (and thus
    the engine registry), so any backend registered with
    :func:`repro.db.register_engine` is immediately benchmarkable by its
    key — the paper's seven methods are just the built-ins.
    ``workers`` shards construction on engines that support it
    (:mod:`repro.core.parallel`); paper-protocol experiments keep the
    default serial build so Table IV comparisons stay apples-to-apples.
    """
    db = GraphDatabase.from_graph(graph)
    try:
        db.build_index(engine=method, k=k, interests=interests, workers=workers)
    except UnknownEngineError as exc:
        raise DatasetError(
            f"unknown method {method!r}; known: {ALL_METHODS}"
        ) from exc
    engine = db.engine
    # Paper experiments time repeated evaluations of the same queries;
    # the cross-query result LRU would turn those into cache-hit
    # readings, so benchmark-built engines run with it off.
    disable = getattr(engine, "set_result_caching", None)
    if disable is not None:
        disable(False)
    return engine


@dataclass
class PreparedDataset:
    """A dataset graph with its generated workload and interest set."""

    name: str
    graph: LabeledDigraph
    workload: dict[str, list[WorkloadQuery]]
    interests: frozenset[LabelSeq]
    full_index_feasible: bool = True
    engines: dict[str, object] = field(default_factory=dict)

    def engine(self, method: str, k: int = 2):
        """Build (and cache) an engine for this dataset."""
        key = f"{method}:k={k}"
        if key not in self.engines:
            self.engines[key] = build_engine(
                method, self.graph, k=k, interests=self.interests
            )
        return self.engines[key]

    def all_queries(self) -> list[WorkloadQuery]:
        """The flattened workload across templates."""
        return [wq for queries in self.workload.values() for wq in queries]


def prepare_dataset(
    name: str,
    graph: LabeledDigraph,
    templates: tuple[str, ...],
    queries_per_template: int,
    k: int = 2,
    seed: int = 0,
    full_index_feasible: bool = True,
) -> PreparedDataset:
    """Generate the per-template workload and its induced interest set."""
    workload: dict[str, list[WorkloadQuery]] = {}
    for position, template in enumerate(templates):
        workload[template] = random_template_queries(
            graph, template, count=queries_per_template, seed=seed * 1009 + position
        )
    interests = frozenset(workload_interests(
        [wq for queries in workload.values() for wq in queries], k
    ))
    return PreparedDataset(
        name=name,
        graph=graph,
        workload=workload,
        interests=interests,
        full_index_feasible=full_index_feasible,
    )
