"""Benchmark harness: timing, runners, reporting, per-figure experiments."""

from repro.bench.micro import micro_graph, micro_queries, run_micro
from repro.bench.reporting import ExperimentResult, format_table, speedup
from repro.bench.runner import (
    ALL_METHODS,
    FULL_INDEX_METHODS,
    INTEREST_METHODS,
    PreparedDataset,
    build_engine,
    prepare_dataset,
)
from repro.bench.timing import Timing, time_call, time_queries

__all__ = [
    "ALL_METHODS",
    "ExperimentResult",
    "FULL_INDEX_METHODS",
    "INTEREST_METHODS",
    "PreparedDataset",
    "Timing",
    "build_engine",
    "format_table",
    "micro_graph",
    "micro_queries",
    "prepare_dataset",
    "run_micro",
    "speedup",
    "time_call",
    "time_queries",
]
