"""Benchmark harness: timing, runners, reporting, per-figure experiments."""

from repro.bench.reporting import ExperimentResult, format_table, speedup
from repro.bench.runner import (
    ALL_METHODS,
    FULL_INDEX_METHODS,
    INTEREST_METHODS,
    PreparedDataset,
    build_engine,
    prepare_dataset,
)
from repro.bench.timing import Timing, time_call, time_queries

__all__ = [
    "ALL_METHODS",
    "ExperimentResult",
    "FULL_INDEX_METHODS",
    "INTEREST_METHODS",
    "PreparedDataset",
    "Timing",
    "build_engine",
    "format_table",
    "prepare_dataset",
    "speedup",
    "time_call",
    "time_queries",
]
