"""Result containers and ASCII rendering for the benchmark harness.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` whose ``render()`` prints the same rows/series
the paper's table or figure reports (datasets × methods × templates with
times, sizes, ratios...).  Absolute numbers differ from the paper — this
substrate is pure Python on synthetic stand-in graphs — but the *shape*
(who wins, rough factors, crossovers) is the reproduction target; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """A rendered-table-shaped experiment outcome."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def render(self) -> str:
        """Format as a fixed-width ASCII table with a title banner."""
        return f"== {self.experiment}: {self.title} ==\n" + format_table(
            self.headers, self.rows
        )

    def column(self, header: str) -> list[object]:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def rows_where(self, header: str, value: object) -> list[list[object]]:
        """Rows whose ``header`` column equals ``value``."""
        index = self.headers.index(header)
        return [row for row in self.rows if row[index] == value]


def format_cell(value: object) -> str:
    """Uniform cell formatting: scientific for small floats, plain else."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100000:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width ASCII table."""
    printable = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in printable:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in printable:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup(baseline: float, contender: float) -> float:
    """How many times faster ``contender`` is than ``baseline``."""
    if contender <= 0:
        return float("inf")
    return baseline / contender


def render_series(
    result: ExperimentResult,
    x: str,
    y: str,
    group_by: str,
    width: int = 40,
) -> str:
    """ASCII rendering of a figure-style result: log-scale bars per group.

    The paper's figures are log-scale time series per method/template;
    this renders each ``group_by`` value as a section with one bar per
    ``x`` value whose length is proportional to ``log10(y)`` within the
    result's global range — enough to eyeball crossovers in a terminal.
    """
    import math

    x_index = result.headers.index(x)
    y_index = result.headers.index(y)
    group_index = result.headers.index(group_by)
    values = [row[y_index] for row in result.rows if row[y_index]]
    if not values:
        return "(no data)"
    low = math.log10(min(values))
    high = math.log10(max(values))
    span = max(high - low, 1e-9)

    def bar(value: float) -> str:
        if value <= 0:
            return ""
        fraction = (math.log10(value) - low) / span
        return "#" * max(1, int(round(fraction * width)))

    lines = [f"{result.experiment}: {y} by {x} (log scale, grouped by {group_by})"]
    groups: dict[object, list] = {}
    for row in result.rows:
        groups.setdefault(row[group_index], []).append(row)
    for group, rows in groups.items():
        lines.append(f"{group}:")
        for row in rows:
            label = format_cell(row[x_index])
            value = row[y_index]
            lines.append(
                f"  {label:>10} {bar(value):<{width}} {format_cell(value)}"
            )
    return "\n".join(lines)
