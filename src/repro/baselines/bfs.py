"""Index-free breadth-first-search query evaluation — the ``BFS`` baseline.

Sec. VI's "BFS, index-free breadth-first-search query evaluation [7]":
every LOOKUP of a label sequence is answered by composing the label
relations on the fly (a BFS frontier expansion per label), and the rest
of the plan (joins, conjunctions, identity) runs through the same
executor as the index-based engines — the paper's "same query plans for
all methods" protocol.
"""

from __future__ import annotations

from repro.core.executor import EngineBase, Result
from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq
from repro.plan.planner import Splitter


class BFSEngine(EngineBase):
    """Evaluate CPQs straight off the graph, no index."""

    name = "BFS"

    def __init__(self, graph: LabeledDigraph) -> None:
        self.graph = graph

    def splitter(self) -> Splitter:
        """No index bound: a whole label sequence is one traversal."""
        def split(seq: LabelSeq) -> list[LabelSeq]:
            return [seq]

        return split

    def lookup(self, seq: LabelSeq) -> Result:
        """Compose the label relations of ``seq`` by frontier expansion."""
        return Result.of_pairs(self.graph.sequence_relation(seq))
