"""CPQ → query-graph compilation, shared by TurboHom++ and Tentris.

Evaluating a CPQ "amounts to finding all embeddings of the pattern
specified by the query into the graph" (Sec. III-B, Fig. 2).  This module
builds that pattern: a small directed labeled multigraph over query
variables with two distinguished variables ``source`` and ``target``.

Compilation rules (a fresh variable per join midpoint, union-find for
identity):

* ``id``        — merge the two endpoint variables;
* ``l`` / ``l⁻¹`` — one labeled pattern edge (inverses normalized to a
  forward edge in the opposite direction, so pattern edges always carry
  forward labels — which is also what a triple store matches);
* ``q1 ∘ q2``   — a fresh midpoint variable shared by both sides;
* ``q1 ∩ q2``   — both sides compiled onto the same endpoints.

The homomorphic matching semantics of CPQ means different variables may
bind the same graph vertex — matchers over this structure must *not*
enforce injectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.query.ast import CPQ, Conjunction, EdgeLabel, Identity, Join

#: A pattern edge: (source variable, target variable, forward label id).
PatternEdge = tuple[int, int, int]


@dataclass(frozen=True)
class PatternGraph:
    """A compiled CPQ pattern: variables 0..num_vars-1 and labeled edges."""

    num_vars: int
    edges: tuple[PatternEdge, ...]
    source: int
    target: int

    def adjacency(self) -> dict[int, list[tuple[int, int, bool]]]:
        """Per-variable incident edges as ``(other, label, outgoing)``.

        Self-loop edges appear once with ``other == var``.
        """
        adj: dict[int, list[tuple[int, int, bool]]] = {
            var: [] for var in range(self.num_vars)
        }
        for a, b, label in self.edges:
            if a == b:
                adj[a].append((a, label, True))
            else:
                adj[a].append((b, label, True))
                adj[b].append((a, label, False))
        return adj


class _UnionFind:
    """Minimal union-find for identity merging."""

    def __init__(self) -> None:
        self.parent: list[int] = []

    def fresh(self) -> int:
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def cpq_to_pattern(query: CPQ) -> PatternGraph:
    """Compile a resolved CPQ into its query pattern graph."""
    uf = _UnionFind()
    raw_edges: list[PatternEdge] = []
    source = uf.fresh()
    target = uf.fresh()

    def compile_node(node: CPQ, a: int, b: int) -> None:
        if isinstance(node, Identity):
            uf.union(a, b)
        elif isinstance(node, EdgeLabel):
            label = node.label_id()
            if label < 0:
                raw_edges.append((b, a, -label))
            else:
                raw_edges.append((a, b, label))
        elif isinstance(node, Join):
            mid = uf.fresh()
            compile_node(node.left, a, mid)
            compile_node(node.right, mid, b)
        elif isinstance(node, Conjunction):
            compile_node(node.left, a, b)
            compile_node(node.right, a, b)
        else:
            raise QuerySyntaxError(f"cannot compile CPQ node {node!r}")

    compile_node(query, source, target)

    # Renumber union-find roots densely and rewrite edges.
    remap: dict[int, int] = {}

    def var_of(x: int) -> int:
        root = uf.find(x)
        if root not in remap:
            remap[root] = len(remap)
        return remap[root]

    src = var_of(source)
    dst = var_of(target)
    edges = tuple(sorted({(var_of(a), var_of(b), label) for a, b, label in raw_edges}))
    # ensure isolated-but-distinguished variables are counted
    num_vars = len(remap)
    return PatternGraph(num_vars=num_vars, edges=edges, source=src, target=dst)
