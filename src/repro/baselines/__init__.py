"""Baseline engines the paper compares CPQx / iaCPQx against."""

from repro.baselines.bfs import BFSEngine
from repro.baselines.path_index import InterestAwarePathIndex, PathIndex
from repro.baselines.pattern import PatternGraph, cpq_to_pattern
from repro.baselines.relational import RelationalEngine
from repro.baselines.tentris import HyperTrie, TentrisEngine
from repro.baselines.turbohom import TurboHomEngine

__all__ = [
    "BFSEngine",
    "HyperTrie",
    "InterestAwarePathIndex",
    "PathIndex",
    "PatternGraph",
    "RelationalEngine",
    "TentrisEngine",
    "TurboHomEngine",
    "cpq_to_pattern",
]
