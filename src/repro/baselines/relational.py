"""The relational-database baseline the paper dismisses analytically.

Sec. VI "Methods": "A relational database approach is essentially the
same as Path with k = 1, which has lower performance than with k = 2.
[...] Thus, we exclude [...] the relational graph approach in our
experiments."  We include it anyway — as the thin wrapper the paper says
it is — so the claim itself is testable: an edge table with merge joins
is exactly a sequence index truncated at single labels.
"""

from __future__ import annotations

from repro.baselines.path_index import PathIndex
from repro.graph.digraph import LabeledDigraph


class RelationalEngine(PathIndex):
    """Edge-table evaluation: every multi-hop step is a join (k = 1)."""

    name = "Relational"

    def __init__(self, graph: LabeledDigraph, k: int, entries) -> None:
        super().__init__(graph, k, entries)

    @classmethod
    def build(cls, graph: LabeledDigraph, k: int = 1) -> RelationalEngine:
        """Build the single-label edge index; ``k`` other than 1 is ignored
        (a relation over label sequences *is* the Path index)."""
        base = PathIndex.build(graph, k=1)
        return cls(graph=graph, k=1, entries=base._entries)
