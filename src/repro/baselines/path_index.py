"""The language-unaware path index of [14] — the ``Path`` baseline.

Sec. III-C: "The state-of-the-art language-unaware path index is an
inverted index that outputs a set of paths corresponding to a given label
sequence as a search key."  It stores, for every label sequence of length
≤ k, the sorted column of s-t pair codes it connects
(:class:`repro.core.pairset.PairSet`).  Its size is ``O(γ |P≤k|)``
because each pair is stored once per sequence it matches — the
redundancy CPQx eliminates (Thm. 4.2's comparison).

``iaPath`` is the paper's interest-restricted variant: only sequences in
the interest set (plus all single labels) are indexed.  The paper notes
iaPath is *not* faster than Path on lookups — both store the same pair
lists per sequence — it is only smaller and cheaper to build; the same
holds here by construction.
"""

from __future__ import annotations

from repro.core.executor import EngineBase, Result
from repro.core.pairset import PairSet
from repro.core.parallel import (
    enumerate_sequences_codes_parallel,
    interest_relations_parallel,
    resolve_workers,
)
from repro.core.paths import enumerate_sequences_codes, sequence_relation_codes
from repro.errors import IndexBuildError, QueryDiameterError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.graph.labels import LabelSeq
from repro.plan.planner import Splitter, greedy_splitter, interest_splitter


class PathIndex(EngineBase):
    """Inverted index: label sequence (length ≤ k) → sorted s-t pair column."""

    name = "Path"

    def __init__(
        self,
        graph: LabeledDigraph,
        k: int,
        entries: dict[LabelSeq, PairSet] | dict[LabelSeq, list[Pair]],
    ) -> None:
        self.graph = graph
        self.k = k
        interner = graph.interner
        self._entries: dict[LabelSeq, PairSet] = {
            seq: (
                stored
                if isinstance(stored, PairSet)
                else PairSet.from_vertex_pairs(stored, interner)
            )
            for seq, stored in entries.items()
        }

    @classmethod
    def build(
        cls, graph: LabeledDigraph, k: int = 2, workers: int | str = 1
    ) -> PathIndex:
        """Enumerate all ≤k label sequences and their pair columns.

        ``workers`` > 1 (or ``"auto"``) shards the enumeration across a
        process pool by source vertex (every posting is anchored at its
        pair's source), merging to an identical index.
        """
        if k < 1:
            raise IndexBuildError(f"k must be >= 1, got {k}")
        num_workers = resolve_workers(workers)
        if num_workers > 1:
            entries: dict[LabelSeq, PairSet] = enumerate_sequences_codes_parallel(
                graph, k, num_workers
            )
        else:
            entries = enumerate_sequences_codes(graph, k)
        return cls(graph=graph, k=k, entries=entries)

    # ------------------------------------------------------------------
    # executor interface
    # ------------------------------------------------------------------
    def splitter(self) -> Splitter:
        """Same greedy ≤k splitting as CPQx (same plans for all methods)."""
        return greedy_splitter(self.k)

    def lookup(self, seq: LabelSeq) -> Result:
        """Return the s-t pair column of a label sequence."""
        if len(seq) > self.k:
            raise QueryDiameterError(
                f"sequence of length {len(seq)} exceeds index parameter k={self.k}"
            )
        stored = self._entries.get(seq)
        if stored is None:
            stored = PairSet.empty(self.graph.interner)
        return Result(pairs=stored)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_sequences(self) -> int:
        """Number of indexed label sequences."""
        return len(self._entries)

    @property
    def num_pairs(self) -> int:
        """Number of *distinct* s-t pairs appearing in the index."""
        codes: set[int] = set()
        for stored in self._entries.values():
            codes.update(stored.iter_codes())
        return len(codes)

    @property
    def num_postings(self) -> int:
        """Total stored (sequence, pair) postings — the γ|P≤k| term."""
        return sum(len(stored) for stored in self._entries.values())

    def pairs_of_sequence(self, seq: LabelSeq) -> list[Pair]:
        """Stored pairs for a sequence, decoded to a sorted list."""
        stored = self._entries.get(seq)
        if stored is None:
            return []
        return sorted(stored, key=repr)

    def size_bytes(self) -> int:
        """32-bit-id size model: 4 bytes per key label, 8 per posted pair."""
        return sum(
            4 * len(seq) + 8 * len(pairs) for seq, pairs in self._entries.items()
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(k={self.k}, |seqs|={self.num_sequences}, "
            f"postings={self.num_postings})"
        )


class InterestAwarePathIndex(PathIndex):
    """``iaPath``: the Path index restricted to interest sequences."""

    name = "iaPath"

    def __init__(
        self,
        graph: LabeledDigraph,
        k: int,
        entries: dict[LabelSeq, PairSet] | dict[LabelSeq, list[Pair]],
        interests: frozenset[LabelSeq],
    ) -> None:
        super().__init__(graph, k, entries)
        self.interests = interests

    @classmethod
    def build(
        cls,
        graph: LabeledDigraph,
        k: int = 2,
        interests: set[LabelSeq] | frozenset[LabelSeq] = frozenset(),
        workers: int | str = 1,
    ) -> InterestAwarePathIndex:
        """Index only the interest sequences (plus all single labels).

        ``workers`` > 1 (or ``"auto"``) shards the per-interest relation
        sweep across a process pool by source vertex.
        """
        if k < 1:
            raise IndexBuildError(f"k must be >= 1, got {k}")
        num_workers = resolve_workers(workers)
        for seq in interests:
            if not seq or len(seq) > k:
                raise IndexBuildError(
                    f"interest must have length 1..k, got {seq}"
                )
        full: set[LabelSeq] = set(interests)
        for label in graph.labels_used():
            full.add((label,))
            full.add((-label,))
        interner = graph.interner
        entries = (
            {
                seq: PairSet.from_sorted_codes(column, interner)
                for seq, column in interest_relations_parallel(
                    graph, full, num_workers
                ).items()
            }
            if num_workers > 1 and full
            else {seq: sequence_relation_codes(graph, seq) for seq in sorted(full)}
        )
        entries = {seq: pairs for seq, pairs in entries.items() if pairs}
        return cls(graph=graph, k=k, entries=entries, interests=frozenset(full))

    def splitter(self) -> Splitter:
        """Split at interest boundaries, as iaCPQx does."""
        return interest_splitter(self.interests, self.k)
