"""A Tentris-style tensor triple store with worst-case-optimal joins.

The paper compares against Tentris [6], "the state-of-the-art RDF engine",
a tensor-based triple store whose core data structure is the *hypertrie*:
a depth-3 trie over (subject, predicate, object) supporting slicing on any
coordinate subset, evaluated with worst-case-optimal (leapfrog-style)
joins.  The binary is unavailable offline, so this module implements the
same data-structure family from scratch:

* :class:`HyperTrie` — nested-dictionary realization of the depth-3
  hypertrie with all the slice accessors the join needs
  (``objects_of(s, p)``, ``subjects_of(o, p)``, per-predicate subject /
  object / loop slices);
* :class:`TentrisEngine` — compiles a CPQ to its pattern graph (a
  conjunctive query of triple patterns), picks a variable order by
  constraint count (Tentris orders by cardinality estimates), and binds
  variables one at a time, intersecting the hypertrie slices of every
  pattern mentioning the variable — the WCOJ evaluation scheme.

Like Tentris, the engine does its own planning (the paper exempts it and
TurboHom++ from the shared-plan protocol).
"""

from __future__ import annotations

import contextlib

from repro.baselines.pattern import cpq_to_pattern
from repro.core.executor import ExecutionStats
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.query.ast import CPQ, is_resolved, resolve


class HyperTrie:
    """Depth-3 hypertrie over (subject, predicate, object) triples."""

    def __init__(self) -> None:
        self._spo: dict[Vertex, dict[int, set[Vertex]]] = {}
        self._ops: dict[Vertex, dict[int, set[Vertex]]] = {}
        self._p_subjects: dict[int, set[Vertex]] = {}
        self._p_objects: dict[int, set[Vertex]] = {}
        self._p_loops: dict[int, set[Vertex]] = {}
        self._size = 0

    @classmethod
    def from_graph(cls, graph: LabeledDigraph) -> HyperTrie:
        """Load every forward edge of a graph as one triple."""
        trie = cls()
        for s, o, p in graph.triples():
            trie.add(s, p, o)
        return trie

    def add(self, s: Vertex, p: int, o: Vertex) -> None:
        """Insert a triple (idempotent)."""
        by_pred = self._spo.setdefault(s, {})
        objects = by_pred.setdefault(p, set())
        if o in objects:
            return
        objects.add(o)
        self._ops.setdefault(o, {}).setdefault(p, set()).add(s)
        self._p_subjects.setdefault(p, set()).add(s)
        self._p_objects.setdefault(p, set()).add(o)
        if s == o:
            self._p_loops.setdefault(p, set()).add(s)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def contains(self, s: Vertex, p: int, o: Vertex) -> bool:
        """Triple membership (fully bound slice)."""
        return o in self._spo.get(s, {}).get(p, ())

    def objects_of(self, s: Vertex, p: int) -> set[Vertex]:
        """Slice ``(s, p, ?)``."""
        return self._spo.get(s, {}).get(p, set())

    def subjects_of(self, o: Vertex, p: int) -> set[Vertex]:
        """Slice ``(?, p, o)``."""
        return self._ops.get(o, {}).get(p, set())

    def subjects(self, p: int) -> set[Vertex]:
        """Slice ``(?, p, *)`` projected onto subjects."""
        return self._p_subjects.get(p, set())

    def objects(self, p: int) -> set[Vertex]:
        """Slice ``(*, p, ?)`` projected onto objects."""
        return self._p_objects.get(p, set())

    def loops(self, p: int) -> set[Vertex]:
        """Vertices with a ``(v, p, v)`` self-loop triple."""
        return self._p_loops.get(p, set())

    def predicate_cardinality(self, p: int) -> int:
        """Number of triples carrying predicate ``p`` (join ordering stat)."""
        return sum(
            len(self._spo.get(s, {}).get(p, ())) for s in self._p_subjects.get(p, ())
        )


class _StopSearch(Exception):
    """Raised internally when the answer limit is reached."""


class TentrisEngine:
    """CPQ evaluation over a hypertrie with WCOJ variable binding."""

    name = "Tentris"

    def __init__(self, graph: LabeledDigraph) -> None:
        self.graph = graph
        self.trie = HyperTrie.from_graph(graph)

    def evaluate(
        self,
        query: CPQ,
        stats: ExecutionStats | None = None,
        limit: int | None = None,
    ) -> frozenset[Pair]:
        """All (or up to ``limit``) s-t pairs satisfying ``query``."""
        if not is_resolved(query):
            query = resolve(query, self.graph.registry)
        pattern = cpq_to_pattern(query)
        if not pattern.edges:
            pairs = [(v, v) for v in self.graph.vertices()]
            return frozenset(pairs[:limit] if limit is not None else pairs)

        order = self._variable_order(pattern)
        binding: dict[int, Vertex] = {}
        results: set[Pair] = set()

        def bind(depth: int) -> None:
            if depth == len(order):
                results.add((binding[pattern.source], binding[pattern.target]))
                if limit is not None and len(results) >= limit:
                    raise _StopSearch
                return
            var = order[depth]
            candidates = self._slice_intersection(var, pattern.edges, binding)
            if stats is not None:
                stats.pairs_touched += len(candidates)
            for vertex in sorted(candidates, key=repr):
                binding[var] = vertex
                bind(depth + 1)
            binding.pop(var, None)

        with contextlib.suppress(_StopSearch):
            bind(0)
        return frozenset(results)

    def _variable_order(self, pattern) -> list[int]:
        """Most-constrained-first order, ties broken by predicate cardinality."""
        occurrences: dict[int, int] = {var: 0 for var in range(pattern.num_vars)}
        weight: dict[int, int] = {var: 0 for var in range(pattern.num_vars)}
        for a, b, p in pattern.edges:
            cardinality = self.trie.predicate_cardinality(p)
            for var in {a, b}:
                occurrences[var] += 1
                weight[var] += cardinality
        return sorted(
            occurrences,
            key=lambda var: (-occurrences[var], weight[var], var),
        )

    def _slice_intersection(
        self,
        var: int,
        edges: tuple[tuple[int, int, int], ...],
        binding: dict[int, Vertex],
    ) -> set[Vertex]:
        """Intersect the hypertrie slices of every pattern mentioning ``var``."""
        candidates: set[Vertex] | None = None

        def restrict(values: set[Vertex]) -> bool:
            nonlocal candidates
            candidates = set(values) if candidates is None else candidates & values
            return bool(candidates)

        for a, b, p in edges:
            if a == var and b == var:
                if not restrict(self.trie.loops(p)):
                    return set()
            elif a == var:
                bound = binding.get(b)
                values = (
                    self.trie.subjects(p) if bound is None
                    else self.trie.subjects_of(bound, p)
                )
                if not restrict(values):
                    return set()
            elif b == var:
                bound = binding.get(a)
                values = (
                    self.trie.objects(p) if bound is None
                    else self.trie.objects_of(bound, p)
                )
                if not restrict(values):
                    return set()
        if candidates is None:
            return set(self.graph.vertices())
        return candidates
