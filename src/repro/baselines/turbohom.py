"""A TurboHom++-style homomorphic subgraph matcher.

The paper compares against TurboHom++ [26], "the state-of-the-art
algorithm for homomorphic subgraph matching", using the authors' binary.
That binary is unavailable, so this module implements the same algorithmic
class from scratch: candidate filtering plus backtracking search over an
adaptively chosen matching order, under **homomorphic** semantics (no
injectivity — the paper stresses isomorphic matchers return incorrect
CPQ results).

Faithful-in-spirit ingredients:

* candidate sets seeded from label relations (TurboHom++'s candidate
  regions built from the NLF filter);
* matching order: start at the most label-constrained variable, then
  expand through pattern adjacency, most-constrained-first (its adaptive
  matching order);
* early termination for first-answer evaluation (Fig. 7 measures this);
* output is the projection of embeddings onto ``(source, target)``,
  de-duplicated — the paper notes TurboHom++ outputs whole subgraphs,
  which is why its full-enumeration times suffer on binary-output CPQs.
"""

from __future__ import annotations

import contextlib

from repro.baselines.pattern import PatternGraph, cpq_to_pattern
from repro.core.executor import ExecutionStats
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.query.ast import CPQ, is_resolved, resolve


class _StopSearch(Exception):
    """Raised internally when the answer limit is reached."""


class TurboHomEngine:
    """Backtracking homomorphic matcher over CPQ pattern graphs."""

    name = "TurboHom"

    def __init__(self, graph: LabeledDigraph) -> None:
        self.graph = graph

    def evaluate(
        self,
        query: CPQ,
        stats: ExecutionStats | None = None,
        limit: int | None = None,
    ) -> frozenset[Pair]:
        """Find all (or up to ``limit``) s-t pairs of embeddings of ``query``."""
        if not is_resolved(query):
            query = resolve(query, self.graph.registry)
        pattern = cpq_to_pattern(query)
        if not pattern.edges:
            # Pure-identity pattern: every vertex is an embedding.
            pairs = ((v, v) for v in self.graph.vertices())
            if limit is not None:
                collected = []
                for pair in pairs:
                    collected.append(pair)
                    if len(collected) >= limit:
                        break
                return frozenset(collected)
            return frozenset(pairs)

        order = self._matching_order(pattern)
        adjacency = pattern.adjacency()
        assignment: dict[int, Vertex] = {}
        results: set[Pair] = set()

        def backtrack(depth: int) -> None:
            if depth == len(order):
                results.add((assignment[pattern.source], assignment[pattern.target]))
                if limit is not None and len(results) >= limit:
                    raise _StopSearch
                return
            var = order[depth]
            candidates = self._candidates(var, adjacency[var], assignment)
            if stats is not None:
                stats.pairs_touched += len(candidates)
            for vertex in candidates:
                assignment[var] = vertex
                backtrack(depth + 1)
            assignment.pop(var, None)

        with contextlib.suppress(_StopSearch):
            backtrack(0)
        return frozenset(results)

    # ------------------------------------------------------------------
    # matching machinery
    # ------------------------------------------------------------------
    def _matching_order(self, pattern: PatternGraph) -> list[int]:
        """Adaptive order: most-constrained seed, then adjacency expansion."""
        adjacency = pattern.adjacency()
        constraint = {var: len(edges) for var, edges in adjacency.items()}
        order: list[int] = []
        seen: set[int] = set()
        # Seed with the variable carrying the most edge constraints.
        seed = max(constraint, key=lambda var: (constraint[var], -var))
        frontier = [seed]
        while len(order) < pattern.num_vars:
            if not frontier:
                remaining = [v for v in range(pattern.num_vars) if v not in seen]
                frontier = [max(remaining, key=lambda var: (constraint[var], -var))]
            frontier.sort(key=lambda var: (constraint[var], -var))
            var = frontier.pop()
            if var in seen:
                continue
            seen.add(var)
            order.append(var)
            frontier.extend(
                other for other, _, _ in adjacency[var] if other not in seen
            )
        return order

    def _candidates(
        self,
        var: int,
        incident: list[tuple[int, int, bool]],
        assignment: dict[int, Vertex],
    ) -> list[Vertex]:
        """Candidate vertices for ``var`` under the current assignment.

        Intersects the neighborhoods imposed by edges whose other endpoint
        is already bound; unbound-neighbor edges only contribute when no
        bound constraint exists (the seed variable), via label-relation
        endpoints — TurboHom++'s candidate-region filter.
        """
        graph = self.graph
        candidate_set: set[Vertex] | None = None
        loop_constraints: list[tuple[int, bool]] = []
        unbound: list[tuple[int, int, bool]] = []
        for other, label, outgoing in incident:
            if other == var:
                loop_constraints.append((label, outgoing))
                continue
            bound = assignment.get(other)
            if bound is None:
                unbound.append((other, label, outgoing))
                continue
            # var --label--> bound (outgoing) means var ∈ successors(bound, -label)
            traverse = -label if outgoing else label
            neighborhood = graph.successors(bound, traverse)
            candidate_set = (
                set(neighborhood)
                if candidate_set is None
                else candidate_set & neighborhood
            )
            if not candidate_set:
                return []
        if candidate_set is None:
            # No bound constraint: seed from the tightest label relation.
            candidate_set = self._seed_candidates(unbound, loop_constraints)
        for label, _ in loop_constraints:
            candidate_set = {
                v for v in candidate_set if graph.has_edge(v, v, label)
            }
        return sorted(candidate_set, key=repr)

    def _seed_candidates(
        self,
        unbound: list[tuple[int, int, bool]],
        loop_constraints: list[tuple[int, bool]],
    ) -> set[Vertex]:
        graph = self.graph
        best: set[Vertex] | None = None
        for _, label, outgoing in unbound:
            relation = graph.label_relation(label)
            endpoints = {pair[0] if outgoing else pair[1] for pair in relation}
            if best is None or len(endpoints) < len(best):
                best = endpoints
        if best is None:
            if loop_constraints:
                label = loop_constraints[0][0]
                return {v for v, u in graph.label_relation(label) if v == u}
            return set(graph.vertices())
        return best
