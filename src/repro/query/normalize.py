"""Algebraic normalization of CPQ expressions.

Rewrites a query into a cheaper equivalent before planning, using only
identities that hold under the paper's set semantics (each is
property-tested against the reference evaluator):

* ``q ∘ id = q`` and ``id ∘ q = q``  (the paper's own optimization 2);
* ``q ∩ q = q``  (idempotence — templates like ``S = C2 ∩ C2`` with the
  same sampled labels collapse to one branch);
* conjunction reassociation into a canonical right-deep chain with
  sorted, de-duplicated operands (commutativity + associativity), so
  syntactically different but equal queries plan identically;
* ``(q ∩ id) ∩ id = q ∩ id``  (identity absorption).

Join operands are *not* reordered (composition is not commutative); join
chains are left intact for the planner's sequence recognition.
"""

from __future__ import annotations

from repro.query.ast import CPQ, ID, Conjunction, EdgeLabel, Identity, Join, conjoin_all


def normalize(query: CPQ) -> CPQ:
    """Return the canonical equivalent of ``query``."""
    return _normalize(query)


def _normalize(query: CPQ) -> CPQ:
    if isinstance(query, (Identity, EdgeLabel)):
        return query
    if isinstance(query, Join):
        left = _normalize(query.left)
        right = _normalize(query.right)
        if isinstance(left, Identity):
            return right
        if isinstance(right, Identity):
            return left
        return Join(left, right)
    if isinstance(query, Conjunction):
        operands = _conjunction_operands(query)
        normalized = [_normalize(operand) for operand in operands]
        # flatten once more: normalization may expose nested conjunctions
        flattened: list[CPQ] = []
        for operand in normalized:
            if isinstance(operand, Conjunction):
                flattened.extend(_conjunction_operands(operand))
            else:
                flattened.append(operand)
        unique = _dedupe(flattened)
        has_identity = any(isinstance(op, Identity) for op in unique)
        rest = [op for op in unique if not isinstance(op, Identity)]
        rest.sort(key=_sort_key)
        if not rest:
            return ID
        parts = rest + ([ID] if has_identity else [])
        return conjoin_all(parts)
    raise TypeError(f"unknown CPQ node {query!r}")


def _conjunction_operands(query: CPQ) -> list[CPQ]:
    """Flatten a conjunction tree into its operand list."""
    if isinstance(query, Conjunction):
        return _conjunction_operands(query.left) + _conjunction_operands(query.right)
    return [query]


def _dedupe(operands: list[CPQ]) -> list[CPQ]:
    seen: set[CPQ] = set()
    unique: list[CPQ] = []
    for operand in operands:
        if operand not in seen:
            seen.add(operand)
            unique.append(operand)
    return unique


def _sort_key(query: CPQ) -> tuple:
    """Deterministic operand ordering: cheap-looking atoms first."""
    return (query.diameter(), len(list(query.walk())), repr(query))
