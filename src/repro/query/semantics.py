"""Reference (naive) CPQ semantics.

Implements ``⟦q⟧G`` exactly as defined in Sec. III-B, by structural
recursion with no indexes and no plan rewrites.  Every other engine in
this repository (CPQx, iaCPQx, Path, iaPath, BFS, TurboHom++-style,
Tentris-style) is tested against this evaluator — it is the executable
specification of the paper's query language.

Sub-expression results are memoized per call, since CPQ templates reuse
sub-queries heavily (e.g. ``S = C2 ∩ C2``).
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.query.ast import CPQ, Conjunction, EdgeLabel, Identity, Join


def evaluate(query: CPQ, graph: LabeledDigraph) -> frozenset[Pair]:
    """Evaluate ``query`` on ``graph`` under the paper's semantics.

    Requires the id-form (resolved) query.  Returns the set of s-t pairs.
    """
    cache: dict[CPQ, frozenset[Pair]] = {}
    return _eval(query, graph, cache)


def _eval(
    query: CPQ,
    graph: LabeledDigraph,
    cache: dict[CPQ, frozenset[Pair]],
) -> frozenset[Pair]:
    cached = cache.get(query)
    if cached is not None:
        return cached
    if isinstance(query, Identity):
        result = frozenset((v, v) for v in graph.vertices())
    elif isinstance(query, EdgeLabel):
        result = frozenset(graph.label_relation(query.label_id()))
    elif isinstance(query, Join):
        result = _compose(
            _eval(query.left, graph, cache),
            _eval(query.right, graph, cache),
        )
    elif isinstance(query, Conjunction):
        left = _eval(query.left, graph, cache)
        right = _eval(query.right, graph, cache)
        result = left & right
    else:
        raise QuerySyntaxError(f"unknown CPQ node {query!r}")
    cache[query] = result
    return result


def _compose(left: frozenset[Pair], right: frozenset[Pair]) -> frozenset[Pair]:
    """Relational composition ``{(v, u) | ∃m: (v, m) ∈ L ∧ (m, u) ∈ R}``."""
    by_source: dict[object, list[object]] = {}
    for m, u in right:
        by_source.setdefault(m, []).append(u)
    return frozenset(
        (v, u)
        for v, m in left
        for u in by_source.get(m, ())
    )


def is_empty(query: CPQ, graph: LabeledDigraph) -> bool:
    """True if ``⟦q⟧G`` is empty (used to split Fig. 7 workloads)."""
    return not evaluate(query, graph)
