"""The Conjunctive Path Query (CPQ) algebra.

The grammar of Sec. III-B::

    CPQ ::= id | l | CPQ ∘ CPQ | CPQ ∩ CPQ | (CPQ)

is modelled as an immutable expression tree: :class:`Identity`,
:class:`EdgeLabel`, :class:`Join`, :class:`Conjunction`.  Expressions are
hashable and comparable, carry the paper's *diameter* measure, and support
fluent construction through operator overloading::

    q = (label("f") >> label("f")) & label("f").inverse()   # (f∘f) ∩ f⁻¹

``>>`` is join (``∘``) and ``&`` is conjunction (``∩``).

Label atoms may carry either a human-readable name or a signed integer id
(see :mod:`repro.graph.labels`); :func:`resolve` converts a name-form query
into the id-form required by all evaluation engines.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.graph.labels import LabelRegistry, LabelSeq


class CPQ:
    """Abstract base of CPQ expressions (immutable, hashable)."""

    __slots__ = ()

    def diameter(self) -> int:
        """The paper's ``dia(q)``: max count of joined edge labels."""
        raise NotImplementedError

    def children(self) -> tuple["CPQ", ...]:
        """Direct sub-expressions (empty for atoms)."""
        return ()

    def __rshift__(self, other: CPQ) -> Join:
        """``q1 >> q2`` builds the join ``q1 ∘ q2``."""
        return Join(self, _as_cpq(other))

    def __and__(self, other: CPQ) -> Conjunction:
        """``q1 & q2`` builds the conjunction ``q1 ∩ q2``."""
        return Conjunction(self, _as_cpq(other))

    def walk(self) -> Iterator["CPQ"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_text(self, registry: LabelRegistry | None = None) -> str:
        """Render the expression in the parser's concrete syntax."""
        raise NotImplementedError


def _as_cpq(value: object) -> CPQ:
    if isinstance(value, CPQ):
        return value
    raise TypeError(f"expected a CPQ expression, got {value!r}")


@dataclass(frozen=True, slots=True)
class Identity(CPQ):
    """The nullary ``id`` operation: ``⟦id⟧G = {(v, v) | v ∈ V}``."""

    def diameter(self) -> int:
        return 0

    def to_text(self, registry: LabelRegistry | None = None) -> str:
        return "id"

    def __repr__(self) -> str:
        return "id"


@dataclass(frozen=True, slots=True)
class EdgeLabel(CPQ):
    """An edge-label atom ``l`` (or its inverse ``l⁻¹``).

    ``label`` is either a signed integer id (engine form) or a string name
    (authoring form; negative direction expressed via ``inverted=True``).
    """

    label: int | str
    inverted: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.label, int):
            if self.label == 0:
                raise QuerySyntaxError("label id 0 is reserved")
            if self.label < 0:
                # normalize: negative id folded into the inverted flag
                object.__setattr__(self, "label", -self.label)
                object.__setattr__(self, "inverted", not self.inverted)
        elif not self.label:
            raise QuerySyntaxError("empty label name")

    def diameter(self) -> int:
        return 1

    def inverse(self) -> EdgeLabel:
        """The inverse atom ``l⁻¹`` (an involution)."""
        return EdgeLabel(self.label, not self.inverted)

    def label_id(self) -> int:
        """Signed id of this atom; requires id (resolved) form."""
        if not isinstance(self.label, int):
            raise QuerySyntaxError(
                f"label {self.label!r} is unresolved; call resolve(query, registry)"
            )
        return -self.label if self.inverted else self.label

    def to_text(self, registry: LabelRegistry | None = None) -> str:
        if isinstance(self.label, str):
            name = self.label
        elif registry is not None:
            name = registry.name_of(self.label)
        else:
            name = str(self.label)
        return f"{name}^-" if self.inverted else name

    def __repr__(self) -> str:
        return self.to_text()


@dataclass(frozen=True, slots=True)
class Join(CPQ):
    """The join (relational composition) ``q1 ∘ q2``."""

    left: CPQ
    right: CPQ

    def diameter(self) -> int:
        return self.left.diameter() + self.right.diameter()

    def children(self) -> tuple[CPQ, ...]:
        return (self.left, self.right)

    def to_text(self, registry: LabelRegistry | None = None) -> str:
        return f"({self.left.to_text(registry)} . {self.right.to_text(registry)})"

    def __repr__(self) -> str:
        return self.to_text()


@dataclass(frozen=True, slots=True)
class Conjunction(CPQ):
    """The conjunction (intersection) ``q1 ∩ q2``."""

    left: CPQ
    right: CPQ

    def diameter(self) -> int:
        return max(self.left.diameter(), self.right.diameter())

    def children(self) -> tuple[CPQ, ...]:
        return (self.left, self.right)

    def to_text(self, registry: LabelRegistry | None = None) -> str:
        return f"({self.left.to_text(registry)} & {self.right.to_text(registry)})"

    def __repr__(self) -> str:
        return self.to_text()


#: Shared identity instance (expressions are immutable, sharing is safe).
ID = Identity()


def label(name_or_id: int | str, inverted: bool = False) -> EdgeLabel:
    """Convenience constructor for an edge-label atom."""
    return EdgeLabel(name_or_id, inverted)


def join_all(parts: list[CPQ]) -> CPQ:
    """Left-deep join of one or more expressions."""
    if not parts:
        raise QuerySyntaxError("cannot join zero expressions")
    query = parts[0]
    for part in parts[1:]:
        query = Join(query, part)
    return query


def conjoin_all(parts: list[CPQ]) -> CPQ:
    """Left-deep conjunction of one or more expressions."""
    if not parts:
        raise QuerySyntaxError("cannot conjoin zero expressions")
    query = parts[0]
    for part in parts[1:]:
        query = Conjunction(query, part)
    return query


def sequence_query(seq: LabelSeq) -> CPQ:
    """Build the chain query ``l1 ∘ l2 ∘ ... ∘ ln`` from a label sequence."""
    return join_all([EdgeLabel(lab) for lab in seq])


def resolve(query: CPQ, registry: LabelRegistry) -> CPQ:
    """Convert a name-form query to id form against ``registry``.

    Id-form atoms pass through unchanged, so resolution is idempotent.
    """
    if isinstance(query, Identity):
        return query
    if isinstance(query, EdgeLabel):
        if isinstance(query.label, int):
            return query
        return EdgeLabel(registry.id_of(query.label), query.inverted)
    if isinstance(query, Join):
        return Join(resolve(query.left, registry), resolve(query.right, registry))
    if isinstance(query, Conjunction):
        return Conjunction(resolve(query.left, registry), resolve(query.right, registry))
    raise QuerySyntaxError(f"unknown CPQ node {query!r}")


def is_resolved(query: CPQ) -> bool:
    """True if every label atom carries an integer id."""
    return all(
        isinstance(node.label, int)
        for node in query.walk()
        if isinstance(node, EdgeLabel)
    )


def as_label_sequence(query: CPQ) -> LabelSeq | None:
    """If ``query`` is a pure join of label atoms, return its sequence.

    Returns ``None`` for anything containing a conjunction or identity.
    Used by the planner to recognize LOOKUP-able sub-trees (Sec. IV-D).
    """
    if isinstance(query, EdgeLabel):
        return (query.label_id(),)
    if isinstance(query, Join):
        left = as_label_sequence(query.left)
        if left is None:
            return None
        right = as_label_sequence(query.right)
        if right is None:
            return None
        return left + right
    return None


def label_sequences_in(query: CPQ) -> set[LabelSeq]:
    """All maximal label sequences appearing as join-chains in ``query``.

    These are the sequences the planner will LOOKUP (before ≤k splitting);
    the interest-aware experiments use them as the interest set
    ("we specify all label sequences in the set of queries as the
    interests", Sec. VI).
    """
    sequences: set[LabelSeq] = set()

    def visit(node: CPQ) -> None:
        seq = as_label_sequence(node)
        if seq is not None:
            sequences.add(seq)
            return
        for child in node.children():
            visit(child)

    visit(query)
    return sequences


def count_operations(query: CPQ) -> tuple[int, int]:
    """Count (joins, conjunctions) — the ``α1``/``α2`` of Theorem 4.5."""
    joins = sum(1 for node in query.walk() if isinstance(node, Join))
    conjunctions = sum(1 for node in query.walk() if isinstance(node, Conjunction))
    return joins, conjunctions
