"""A small recursive-descent parser for the CPQ concrete syntax.

Grammar (conjunction binds looser than join, both left-associative)::

    expr   := term  (('∩' | '&') term)*
    term   := factor (('∘' | '.') factor)*
    factor := 'id' | label | '(' expr ')'
    label  := NAME ('^-' | '⁻¹' | '⁻')?

Examples::

    parse("(f . f) & f^-")        # the paper's triad query (f∘f) ∩ f⁻¹
    parse("((a . b . c) & (d . e)) & id")   # Fig. 2 / Fig. 4 query

Parsed atoms carry label *names*; pass a registry (or call
:func:`repro.query.ast.resolve`) to obtain the engine's id form.
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.graph.labels import LabelRegistry
from repro.query.ast import CPQ, ID, EdgeLabel, conjoin_all, join_all, resolve

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<lparen>\()|"
    r"(?P<rparen>\))|"
    r"(?P<join>[∘.])|"
    r"(?P<conj>[∩&])|"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\^-|⁻¹|⁻)?)"
    r")"
)


class _TokenStream:
    """Tokenizer with one-token lookahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        match = _TOKEN.match(self.text, self.pos)
        if match is None:
            if self.text[self.pos:].strip():
                raise QuerySyntaxError(
                    f"unexpected character {self.text[self.pos]!r}", self.pos
                )
            return None
        kind = match.lastgroup
        assert kind is not None
        return kind, match.group(kind)

    def next(self) -> tuple[str, str] | None:
        token = self.peek()
        if token is not None:
            match = _TOKEN.match(self.text, self.pos)
            assert match is not None
            self.pos = match.end()
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token is None or token[0] != kind:
            raise QuerySyntaxError(f"expected {kind}, got {token!r}", self.pos)
        return token[1]


def parse(text: str, registry: LabelRegistry | None = None) -> CPQ:
    """Parse CPQ text; resolves label names if a registry is given."""
    stream = _TokenStream(text)
    query = _parse_expr(stream)
    trailing = stream.next()
    if trailing is not None:
        raise QuerySyntaxError(f"unexpected trailing token {trailing[1]!r}", stream.pos)
    if registry is not None:
        query = resolve(query, registry)
    return query


def _parse_expr(stream: _TokenStream) -> CPQ:
    parts = [_parse_term(stream)]
    while True:
        token = stream.peek()
        if token is None or token[0] != "conj":
            break
        stream.next()
        parts.append(_parse_term(stream))
    return conjoin_all(parts)


def _parse_term(stream: _TokenStream) -> CPQ:
    parts = [_parse_factor(stream)]
    while True:
        token = stream.peek()
        if token is None or token[0] != "join":
            break
        stream.next()
        parts.append(_parse_factor(stream))
    return join_all(parts)


def _parse_factor(stream: _TokenStream) -> CPQ:
    token = stream.next()
    if token is None:
        raise QuerySyntaxError("unexpected end of query", stream.pos)
    kind, value = token
    if kind == "lparen":
        inner = _parse_expr(stream)
        stream.expect("rparen")
        return inner
    if kind == "name":
        inverted = False
        for suffix in ("^-", "⁻¹", "⁻"):
            if value.endswith(suffix):
                value = value[: -len(suffix)]
                inverted = True
                break
        if value == "id":
            if inverted:
                raise QuerySyntaxError("id has no inverse", stream.pos)
            return ID
        return EdgeLabel(value, inverted)
    raise QuerySyntaxError(f"unexpected token {value!r}", stream.pos)
