"""CPQ language: algebra, parser, semantics, templates, workloads."""

from repro.query.ast import (
    CPQ,
    ID,
    Conjunction,
    EdgeLabel,
    Identity,
    Join,
    as_label_sequence,
    conjoin_all,
    count_operations,
    is_resolved,
    join_all,
    label,
    label_sequences_in,
    resolve,
    sequence_query,
)
from repro.query.normalize import normalize
from repro.query.parser import parse
from repro.query.semantics import evaluate, is_empty
from repro.query.templates import TEMPLATES, Template, get_template, template_names

__all__ = [
    "CPQ",
    "Conjunction",
    "EdgeLabel",
    "ID",
    "Identity",
    "Join",
    "TEMPLATES",
    "Template",
    "as_label_sequence",
    "conjoin_all",
    "count_operations",
    "evaluate",
    "get_template",
    "is_empty",
    "is_resolved",
    "join_all",
    "label",
    "label_sequences_in",
    "normalize",
    "parse",
    "resolve",
    "sequence_query",
    "template_names",
]
