"""The paper's query templates (Fig. 5) and benchmark query shapes.

Twelve templates drive the main experimental study::

    C2  = l1 ∘ l2                          chain of length 2
    C4  = C2 ∘ C2                          chain of length 4
    T   = C2 ∩ l                           "triangle" (2-path and an edge)
    S   = C2 ∩ C2                          "square" (two parallel 2-paths)
    TT  = T ∩ C2                           triangle + extra 2-path
    TC  = T ∘ l                            triangle then chain
    SC  = S ∘ l                            square then chain
    ST  = S ∘ T                            square then triangle ("flower")
    C2i = C2 ∩ id                          2-cycle
    Ti  = (C2 ∘ l) ∩ id                    3-cycle (triad)
    Si  = C4 ∩ id                          4-cycle
    St  = (l1∘l1⁻) ∩ (l2∘l2⁻) ∩ (l3∘l3⁻) ∩ id   star of 3 out-and-back spokes

Each template is a function from label atoms to a CPQ expression; the
registry in :data:`TEMPLATES` records the arity so workload generators can
sample labels.  The Fig. 9 / Fig. 10 benchmark queries (YAGO2 Y1–Y4,
LUBM L1–L7, WatDiv L1–L5 and S1–S7) are provided as *named queries over
schema predicates*, following the paper's procedure: "we transform them
into CPQs with keeping query shapes and their edge labels" (Sec. VI-A).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.query.ast import CPQ, ID, EdgeLabel, conjoin_all, label


def c2(l1: EdgeLabel, l2: EdgeLabel) -> CPQ:
    """C2 — chain of two labels."""
    return l1 >> l2


def c4(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel) -> CPQ:
    """C4 — chain of four labels, built as C2 ∘ C2 as in Fig. 5."""
    return (l1 >> l2) >> (l3 >> l4)


def t(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel) -> CPQ:
    """T — a 2-path and a parallel edge (open triangle)."""
    return (l1 >> l2) & l3


def s(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel) -> CPQ:
    """S — two parallel 2-paths (a square pattern)."""
    return (l1 >> l2) & (l3 >> l4)


def tt(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel, l5: EdgeLabel) -> CPQ:
    """TT — triangle conjoined with one more 2-path."""
    return t(l1, l2, l3) & (l4 >> l5)


def tc(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel) -> CPQ:
    """TC — triangle followed by a chain edge."""
    return t(l1, l2, l3) >> l4


def sc(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel, l5: EdgeLabel) -> CPQ:
    """SC — square followed by a chain edge."""
    return s(l1, l2, l3, l4) >> l5


def st(
    l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel,
    l5: EdgeLabel, l6: EdgeLabel, l7: EdgeLabel,
) -> CPQ:
    """ST — square joined to a triangle (the "flower" shape)."""
    return s(l1, l2, l3, l4) >> t(l5, l6, l7)


def c2i(l1: EdgeLabel, l2: EdgeLabel) -> CPQ:
    """C2i — 2-cycle: a 2-path returning to its source."""
    return (l1 >> l2) & ID


def ti(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel) -> CPQ:
    """Ti — 3-cycle (the triad pattern of the introduction)."""
    return ((l1 >> l2) >> l3) & ID


def si(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel, l4: EdgeLabel) -> CPQ:
    """Si — 4-cycle."""
    return c4(l1, l2, l3, l4) & ID


def star(l1: EdgeLabel, l2: EdgeLabel, l3: EdgeLabel) -> CPQ:
    """St — three out-and-back spokes around a single center."""
    return conjoin_all([
        l1 >> l1.inverse(),
        l2 >> l2.inverse(),
        l3 >> l3.inverse(),
        ID,
    ])


@dataclass(frozen=True)
class Template:
    """A named query template: arity and builder."""

    name: str
    arity: int
    builder: Callable[..., CPQ]
    has_identity: bool

    def instantiate(self, labels: Sequence[EdgeLabel]) -> CPQ:
        """Build the template query from ``arity`` label atoms."""
        if len(labels) != self.arity:
            raise QuerySyntaxError(
                f"template {self.name} needs {self.arity} labels, got {len(labels)}"
            )
        return self.builder(*labels)


#: The twelve Fig. 5 templates, in the order the figures report them.
TEMPLATES: dict[str, Template] = {
    "T": Template("T", 3, t, False),
    "S": Template("S", 4, s, False),
    "TT": Template("TT", 5, tt, False),
    "St": Template("St", 3, star, True),
    "TC": Template("TC", 4, tc, False),
    "SC": Template("SC", 5, sc, False),
    "ST": Template("ST", 7, st, False),
    "C2": Template("C2", 2, c2, False),
    "C4": Template("C4", 4, c4, False),
    "C2i": Template("C2i", 2, c2i, True),
    "Ti": Template("Ti", 3, ti, True),
    "Si": Template("Si", 4, si, True),
}

#: Templates whose top level contains a conjunction of multi-edge paths —
#: the ones the paper highlights as CPQx's strength (Sec. VI-A).
CONJUNCTIVE_TEMPLATES = ("T", "S", "TT", "St")
#: Join-dominated templates where Path is competitive.
JOIN_TEMPLATES = ("C2", "C4", "Ti", "Si")


def template_names() -> list[str]:
    """All template names in report order."""
    return list(TEMPLATES)


def get_template(name: str) -> Template:
    """Look up a template by name."""
    try:
        return TEMPLATES[name]
    except KeyError:
        raise QuerySyntaxError(
            f"unknown template {name!r}; known: {', '.join(TEMPLATES)}"
        ) from None


# ---------------------------------------------------------------------------
# Benchmark query shapes (Figs. 9 and 10), as CPQs over schema predicates
# ---------------------------------------------------------------------------

def _l(name: str) -> EdgeLabel:
    return label(name)


def yago2_queries() -> dict[str, CPQ]:
    """Y1–Y4 over the YAGO2-like schema (star / triangle / chain shapes).

    The originals are SPARQL BGPs from Harbi et al.; as in the paper we keep
    the shapes (stars over person hubs, a location triangle, an influence
    flower) and use the schema's own predicate names.
    """
    return {
        "Y1": (_l("wasBornIn") >> _l("wasBornIn").inverse())
        & (_l("graduatedFrom") >> _l("graduatedFrom").inverse()),
        "Y2": (_l("livesIn") >> _l("isLocatedIn").inverse()) & _l("worksAt"),
        "Y3": (_l("isMarriedTo") >> _l("livesIn")) & _l("livesIn"),
        "Y4": ((_l("influences") >> _l("influences")) & _l("influences")) >> _l("created"),
    }


def lubm_queries() -> dict[str, CPQ]:
    """L1–L7 over the LUBM-like schema (chains plus two cyclic shapes)."""
    return {
        "L1": _l("takesCourse") >> _l("teacherOf").inverse(),
        "L2": _l("memberOf") >> _l("subOrganizationOf"),
        "L3": _l("advisor") >> _l("worksFor"),
        "L4": (_l("takesCourse") >> _l("teacherOf").inverse()) & _l("advisor"),
        "L5": (_l("memberOf") >> _l("memberOf").inverse())
        & (_l("takesCourse") >> _l("takesCourse").inverse()),
        "L6": _l("publicationAuthor") >> _l("advisor").inverse(),
        "L7": ((_l("advisor") >> _l("worksFor")) & _l("memberOf")) >> _l("subOrganizationOf"),
    }


def watdiv_queries() -> dict[str, CPQ]:
    """WatDiv L1–L5 (linear) and S1–S7 (star/snowflake) shapes."""
    return {
        "L1": _l("purchases") >> _l("hasGenre"),
        "L2": _l("writesReview") >> _l("reviewOf"),
        "L3": _l("follows") >> _l("purchases"),
        "L4": _l("sells") >> _l("hasGenre"),
        "L5": (_l("follows") >> _l("follows")) >> _l("likes"),
        "S1": (_l("purchases") >> _l("purchases").inverse())
        & (_l("likes") >> _l("likes").inverse()),
        "S2": (_l("writesReview") >> _l("reviewOf")) & _l("purchases"),
        "S3": (_l("likes") >> _l("hasGenre")) & (_l("purchases") >> _l("hasGenre")),
        "S4": (_l("follows") >> _l("purchases")) & _l("purchases"),
        "S5": (_l("purchases") >> _l("reviewOf").inverse()) & _l("writesReview"),
        "S6": ((_l("follows") >> _l("follows")) & _l("follows")) >> _l("purchases"),
        "S7": (_l("sells").inverse() >> _l("sells")) & (_l("hasGenre") >> _l("hasGenre").inverse()),
    }
