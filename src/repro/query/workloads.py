"""Random query workload generation (Sec. VI, "Queries").

The paper's procedure, reproduced here:

* "For each template and dataset, we generate ten queries with random
  labels."  — :func:`random_template_queries` samples label atoms
  (uniformly over the extended label set: forward and inverse) for each
  template slot.
* "We only use queries in which all (sub-)paths of length two are
  non-empty" — :func:`subpaths_nonempty` checks every length-≤2 label
  sequence occurring in the instantiated query against the graph.
* For the empty/non-empty experiment (Fig. 7), :func:`split_by_emptiness`
  classifies generated queries with the reference evaluator.

All sampling is driven by an explicit seed for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.digraph import LabeledDigraph
from repro.graph.labels import LabelSeq
from repro.query.ast import CPQ, EdgeLabel, label_sequences_in, resolve
from repro.query.semantics import evaluate
from repro.query.templates import Template, get_template


@dataclass(frozen=True)
class WorkloadQuery:
    """A generated query together with its provenance."""

    template: str
    query: CPQ
    labels: tuple[int, ...]


def _extended_labels(graph: LabeledDigraph) -> list[int]:
    """Extended label population actually used by at least one edge."""
    forward = sorted(graph.labels_used())
    return forward + [-lab for lab in forward]


def subpaths_nonempty(query: CPQ, graph: LabeledDigraph) -> bool:
    """The paper's filter: every length-≤2 sub-sequence matches some path.

    For each maximal label sequence in the query, every window of length 2
    (and every single label) must have a non-empty relation on ``graph``.
    """
    return all(
        all(graph.sequence_relation(seq[i:i + 1]) for i in range(len(seq)))
        and all(graph.sequence_relation(seq[i:i + 2]) for i in range(len(seq) - 1))
        for seq in label_sequences_in(query)
    )


def random_template_queries(
    graph: LabeledDigraph,
    template: str | Template,
    count: int = 10,
    seed: int = 0,
    max_attempts: int = 4000,
    require_nonempty_subpaths: bool = True,
) -> list[WorkloadQuery]:
    """Generate ``count`` random-label instances of a template.

    Falls back to returning fewer queries if the graph is too sparse to
    satisfy the sub-path filter within ``max_attempts`` samples (mirrors
    the paper's note that some answers may still be empty — only the
    *sub-paths* are forced non-empty).
    """
    spec = get_template(template) if isinstance(template, str) else template
    rng = random.Random(seed)
    population = _extended_labels(graph)
    if not population:
        return []
    queries: list[WorkloadQuery] = []
    seen: set[tuple[int, ...]] = set()
    attempts = 0
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        chosen = tuple(rng.choice(population) for _ in range(spec.arity))
        candidate = spec.instantiate([EdgeLabel(lab) for lab in chosen])
        candidate = resolve(candidate, graph.registry)
        if require_nonempty_subpaths and not subpaths_nonempty(candidate, graph):
            continue
        key = (spec.name, *chosen)
        if key in seen:
            continue
        seen.add(key)
        queries.append(WorkloadQuery(spec.name, candidate, chosen))
    return queries


def workload_interests(queries: list, k: int) -> set[LabelSeq]:
    """Interest set induced by a workload (Sec. VI, interest-aware setup).

    "We specify all label sequences in the set of queries as the interests.
    We divide label sequences larger than k length into prefix label
    sequences of length k and the rest."

    Accepts :class:`WorkloadQuery` items or bare (resolved) CPQ expressions.
    """
    interests: set[LabelSeq] = set()
    for item in queries:
        query = item.query if isinstance(item, WorkloadQuery) else item
        for seq in label_sequences_in(query):
            while len(seq) > k:
                interests.add(seq[:k])
                seq = seq[k:]
            if seq:
                interests.add(seq)
    return interests


def split_by_emptiness(
    queries: list[WorkloadQuery],
    graph: LabeledDigraph,
) -> tuple[list[WorkloadQuery], list[WorkloadQuery]]:
    """Partition a workload into (non-empty, empty) answer sets (Fig. 7)."""
    non_empty: list[WorkloadQuery] = []
    empty: list[WorkloadQuery] = []
    for item in queries:
        if evaluate(item.query, graph):
            non_empty.append(item)
        else:
            empty.append(item)
    return non_empty, empty


def mixed_emptiness_workload(
    graph: LabeledDigraph,
    template: str,
    count: int = 10,
    empty_fraction: float = 0.5,
    seed: int = 0,
) -> list[WorkloadQuery]:
    """A workload with a target share of empty-answer queries.

    Reproduces the paper's setup on the knowledge graphs: "queries on Yago,
    Wikidata, and Freebase have 50% non-empty and 50% empty queries except
    for C2".  Falls back to whatever mix is achievable on sparse graphs.
    """
    pool = random_template_queries(graph, template, count * 6, seed=seed)
    non_empty, empty = split_by_emptiness(pool, graph)
    want_empty = int(round(count * empty_fraction))
    want_non_empty = count - want_empty
    chosen = non_empty[:want_non_empty] + empty[:want_empty]
    # top up from whichever pool has leftovers
    shortfall = count - len(chosen)
    if shortfall > 0:
        leftovers = non_empty[want_non_empty:] + empty[want_empty:]
        chosen.extend(leftovers[:shortfall])
    return chosen
