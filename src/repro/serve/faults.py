"""Deterministic fault injection for the fault-tolerance layer.

Every recovery path in this package — worker supervision and restart
(:mod:`repro.serve.supervisor`), query deadlines and retries
(:meth:`repro.db.GraphDatabase.serve_batch`), shard retry / serial
fallback on parallel builds (:mod:`repro.core.parallel`), crash-safe
persistence (:mod:`repro.core.persistence`) — is dead code unless
something actually fails.  :class:`FaultInjector` is the something: a
*seeded, deterministic* source of controlled failures that the chaos
tests (``tests/test_chaos.py``) and ``repro serve-bench --chaos`` use to
kill workers, delay or drop replies, fail shards, and interrupt saves at
reproducible points, making every recovery path exercisable in CI.

Design:

* **per-site PRNG streams** — each fault site (``worker.kill``,
  ``build.shard``, ``persist.rename``...) draws from its own
  ``random.Random`` seeded from ``(seed, site)``, so the decision
  sequence at one site is a pure function of the seed and the call
  count at that site, independent of what other sites do;
* **rate × budget** — a site fires with its configured probability per
  consultation, and ``max_faults`` caps the *total* injected faults so a
  chaos run always drains to success (the recovery ladder is exercised a
  bounded number of times, then the workload completes and the
  ``identical_answers`` assertions run);
* **ambient installation** — :func:`inject` installs an injector
  process-wide (a context manager), and the instrumented modules consult
  :func:`current_injector` at their hook points; worker *processes*
  cannot see the parent's global, so the serving pool and the sharded
  builders ship the injector to workers explicitly (pickled — the
  injector drops its mutex on the way);
* **bookkeeping** — parent-side recovery events are recorded via
  :meth:`FaultInjector.note` (restart counts, shard fallbacks...), which
  the chaos bench reads back for its report.

Faults are raised as :class:`FaultInjected` — deliberately *not* a
:class:`~repro.errors.ReproError`: the recovery paths must treat it like
any foreign failure, and nothing may catch it specially.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from collections.abc import Iterator, Mapping

#: The recognized fault sites (documentation + validation).
FAULT_SITES = (
    "worker.kill",  # serving worker exits hard before replying
    "worker.delay",  # serving worker sleeps before replying
    "worker.drop",  # serving worker swallows the query (no reply)
    "worker.error",  # serving worker raises during evaluation
    "build.shard",  # parallel_map shard task raises worker-side
    "partition.shard",  # partition refinement worker raises
    "persist.fsync",  # save(): fsync fails mid-write
    "persist.rename",  # save(): the atomic rename fails
    "store.open",  # open_store(): mapping a store file fails outright
    "store.delta",  # open_store(): following a delta-chain link fails
)

#: Hard-exit status used by :meth:`FaultInjector.maybe_kill` (visible in
#: the worker's exitcode when debugging a chaos run).
KILL_EXIT_CODE = 17


class FaultInjected(Exception):
    """An injected failure.  Not a ReproError on purpose: recovery code
    must handle it exactly like a genuine foreign exception."""


class FaultInjector:
    """Seeded, deterministic fault source consulted at instrumented sites.

    ``rates`` maps site names (see :data:`FAULT_SITES`) to firing
    probabilities in ``[0, 1]``; unlisted sites never fire.  A rate of
    ``1.0`` fires on every consultation until ``max_faults`` is spent —
    the way to deterministically fault the first N events of a run.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Mapping[str, float] | None = None,
        delay_seconds: float = 0.05,
        max_faults: int | None = None,
    ) -> None:
        rates = dict(rates or {})
        for site, rate in rates.items():
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}; known: {FAULT_SITES}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], got {rate}")
        self.seed = seed
        self.rates = rates
        self.delay_seconds = delay_seconds
        self.max_faults = max_faults
        #: Faults fired so far, per site (this process's copy).
        self.fired: dict[str, int] = {}
        #: Parent-side recovery bookkeeping (see :meth:`note`).
        self.notes: dict[str, int] = {}
        self._streams: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # pickling: the injector ships to spawn-context workers
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The mutex cannot pickle; the streams deliberately don't ship
        # either — a worker-side copy re-derives them from the seed, so
        # its decision sequence is deterministic regardless of how many
        # decisions the parent already drew.
        state.pop("_lock", None)
        state.pop("_streams", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._streams = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def rate(self, site: str) -> float:
        """The configured firing probability for ``site`` (0 if unset)."""
        return self.rates.get(site, 0.0)

    def fire(self, site: str) -> bool:
        """Decide (deterministically) whether ``site`` faults this time."""
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        with self._lock:
            if self.max_faults is not None and sum(self.fired.values()) >= self.max_faults:
                return False
            stream = self._streams.get(site)
            if stream is None:
                # str seeds hash via SHA-512 in CPython — stable across
                # processes and interpreter launches, unlike hash().
                stream = self._streams[site] = random.Random(f"{self.seed}:{site}")
            hit = stream.random() < rate
            if hit:
                self.fired[site] = self.fired.get(site, 0) + 1
            return hit

    def fail(self, site: str) -> None:
        """Raise :class:`FaultInjected` if ``site`` fires."""
        if self.fire(site):
            raise FaultInjected(f"injected fault at {site}")

    def maybe_delay(self, site: str = "worker.delay") -> None:
        """Sleep ``delay_seconds`` if ``site`` fires (a slow worker)."""
        if self.fire(site):
            time.sleep(self.delay_seconds)

    def maybe_kill(self, site: str = "worker.kill") -> None:
        """Hard-exit the current process if ``site`` fires.

        ``os._exit`` (no cleanup, no atexit) models a SIGKILLed or
        segfaulted worker: the parent sees only a closed pipe.
        """
        if self.fire(site):
            os._exit(KILL_EXIT_CODE)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def note(self, event: str, count: int = 1) -> None:
        """Record a parent-side recovery event (for the chaos report)."""
        with self._lock:
            self.notes[event] = self.notes.get(event, 0) + count

    def total_fired(self) -> int:
        """Total faults fired by this copy of the injector."""
        return sum(self.fired.values())

    # ------------------------------------------------------------------
    # file corruption (used directly by tests, not via rates)
    # ------------------------------------------------------------------
    def corrupt_file(self, path: object, skip: int = 0) -> int:
        """Flip one deterministic bit of the file at ``path``.

        The corrupted offset is drawn from the seeded stream over the
        file's body after ``skip`` bytes (letting tests aim past or at a
        header).  Returns the corrupted offset.
        """
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        if len(blob) <= skip:
            raise ValueError(f"{path}: nothing to corrupt past offset {skip}")
        stream = random.Random(f"{self.seed}:corrupt_file")
        offset = stream.randrange(skip, len(blob))
        blob[offset] ^= 1 << stream.randrange(8)
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        return offset

    def __repr__(self) -> str:
        live = {site: rate for site, rate in self.rates.items() if rate > 0}
        return (
            f"FaultInjector(seed={self.seed}, rates={live}, "
            f"fired={self.total_fired()})"
        )


#: The ambient injector (process-wide); ``None`` outside chaos runs.
_ACTIVE: FaultInjector | None = None


def current_injector() -> FaultInjector | None:
    """The ambient :class:`FaultInjector`, or ``None`` (the normal case)."""
    return _ACTIVE


@contextlib.contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` as the ambient fault source for the block.

    The instrumented modules (serving pool, sharded builders, persistence)
    consult :func:`current_injector` at their hook points; worker
    processes get the injector shipped explicitly by their parents.
    Not reentrancy-safe across threads: chaos runs install one injector
    for the whole process.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
