"""Process-based serving subsystem: GIL-free parallel reads.

Public surface of :mod:`repro.serve.procserve` — the engine-snapshot
protocol, the persistent worker pool, and the serve-token helpers used
by :meth:`repro.db.GraphDatabase.serve_batch` with ``mode="process"``.
"""

from repro.serve.procserve import (
    PROCESS_MODE_MIN_QUERIES,
    ProcessServingPool,
    ServeToken,
    session_token,
    snapshot_bytes,
)

__all__ = [
    "PROCESS_MODE_MIN_QUERIES",
    "ProcessServingPool",
    "ServeToken",
    "session_token",
    "snapshot_bytes",
]
