"""Process-based serving subsystem: GIL-free, fault-tolerant parallel reads.

Public surface of the serving stack: the engine-snapshot protocol and
supervised worker pool (:mod:`repro.serve.procserve`), the restartable
worker supervision layer (:mod:`repro.serve.supervisor`), and the
deterministic fault-injection harness (:mod:`repro.serve.faults`) used
by the chaos tests and ``repro serve-bench --chaos``.
"""

from repro.serve.faults import FaultInjected, FaultInjector, current_injector, inject
from repro.serve.procserve import (
    DEFAULT_RETRIES,
    PROCESS_MODE_MIN_QUERIES,
    ProcessServingPool,
    ServeToken,
    session_token,
    snapshot_bytes,
)
from repro.serve.supervisor import ServeFailure, WorkerSupervisor

__all__ = [
    "DEFAULT_RETRIES",
    "PROCESS_MODE_MIN_QUERIES",
    "FaultInjected",
    "FaultInjector",
    "ProcessServingPool",
    "ServeFailure",
    "ServeToken",
    "WorkerSupervisor",
    "current_injector",
    "inject",
    "session_token",
    "snapshot_bytes",
]
