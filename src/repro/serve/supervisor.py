"""Worker supervision: restartable serving workers under a bounded budget.

PR 5's :class:`~repro.core.parallel.WorkerPool` is fail-fast by design:
one dead worker closes its pipe, the dispatcher raises, and the whole
pool is torn down — the session rebuilds it (and re-ships every
snapshot) on the next batch.  That is the right shape for one-shot build
pools, but a long-running serving session needs a *bounded failure
domain*: a crashed worker should cost one query one retry, not the pool.

:class:`WorkerSupervisor` is the replacement substrate for
:class:`repro.serve.ProcessServingPool`:

* each of the ``workers`` slots owns one spawn-context process and its
  duplex pipe, identified by a stable ``worker_id``;
* :meth:`replace` restarts a dead or hung slot's process with
  exponential backoff (``backoff_base * 2**slot.restarts`` capped at
  ``backoff_cap``) under a pool-wide **restart budget** — when the
  budget is exhausted the slot is retired instead, and when every slot
  is retired the caller degrades (the serving pool falls back to
  in-parent evaluation; see ``docs/robustness.md``);
* restart bookkeeping (:attr:`restarts_used`, per-slot
  :attr:`WorkerSlot.restarts`) is exposed for the chaos bench's
  recovery report.

The supervisor only manages process lifecycle; the message protocol on
the pipes belongs to the caller (``procserve``), which also decides what
re-dispatching a dead worker's in-flight query means.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing.connection import Connection

from repro.errors import ServingError


@dataclass
class ServeFailure:
    """A query that failed permanently within one ``serve_batch`` call.

    Surfaced to callers either inside a partial batch
    (``on_error="partial"`` — the slot's :class:`~repro.db.ResultSet`
    re-raises ``error`` on access) or as the batch exception
    (``on_error="raise"``).
    """

    query_index: int
    error: ServingError
    attempts: int


class WorkerSlot:
    """One supervised worker: a stable id, a process, a pipe, a history."""

    __slots__ = ("connection", "process", "restarts", "worker_id")

    def __init__(self, worker_id: int, process: object, connection: Connection) -> None:
        self.worker_id = worker_id
        self.process = process
        self.connection = connection
        #: Times this slot's process has been restarted.
        self.restarts = 0

    def __repr__(self) -> str:
        return f"WorkerSlot(id={self.worker_id}, restarts={self.restarts})"


class WorkerSupervisor:
    """A pool of restartable worker processes with a bounded restart budget.

    ``target(worker_id, connection)`` owns the child side of each pipe
    (the same contract as :class:`~repro.core.parallel.WorkerPool`
    targets); always the ``spawn`` start context, for the same reason —
    supervised pools are constructed and *restarted* at arbitrary points
    of a session's life, including under live reader threads.
    """

    #: Default restart budget per worker slot (pool budget = this × workers).
    DEFAULT_RESTARTS_PER_WORKER = 3

    def __init__(
        self,
        target: Callable,
        workers: int,
        *,
        restart_budget: int | None = None,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        join_timeout: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self._target = target
        self._context = multiprocessing.get_context("spawn")
        self._join_timeout = join_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.restart_budget = (
            self.DEFAULT_RESTARTS_PER_WORKER * workers if restart_budget is None else restart_budget
        )
        #: Pool-wide restarts consumed so far (never decreases).
        self.restarts_used = 0
        self.closed = False
        self.slots: list[WorkerSlot] = []
        try:
            for worker_id in range(workers):
                self.slots.append(self._spawn(worker_id))
        except Exception:  # pragma: no cover - spawn failure is environmental
            self.close()
            raise

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> WorkerSlot:
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=self._target, args=(worker_id, child_end), daemon=True
        )
        process.start()
        child_end.close()
        return WorkerSlot(worker_id, process, parent_end)

    def live_slots(self) -> list[WorkerSlot]:
        """The slots currently backed by a process (retired ones drop out)."""
        return list(self.slots)

    @property
    def connections(self) -> list[Connection]:
        """The live slots' parent-side pipe ends, in slot order."""
        return [slot.connection for slot in self.slots]

    @property
    def processes(self) -> list:
        """The live slots' processes, in slot order."""
        return [slot.process for slot in self.slots]

    def slot_for(self, connection: Connection) -> WorkerSlot:
        """The slot owning ``connection`` (which must be live)."""
        for slot in self.slots:
            if slot.connection is connection:
                return slot
        raise ServingError("connection does not belong to a live worker slot")

    def budget_left(self) -> int:
        """Restarts still available under the pool-wide budget."""
        return max(0, self.restart_budget - self.restarts_used)

    def replace(self, slot: WorkerSlot) -> WorkerSlot | None:
        """Retire ``slot``'s process and restart it, if budget allows.

        Returns the restarted slot (same ``worker_id``, fresh process and
        pipe, ``restarts`` incremented) or ``None`` when the restart
        budget is exhausted — the slot is then retired permanently and
        the caller is expected to degrade once no live slots remain.
        Applies exponential backoff before respawning so a crash-looping
        worker (bad host state, OOM killer) cannot spin the pool.
        """
        self._retire(slot)
        if self.restarts_used >= self.restart_budget:
            return None
        self.restarts_used += 1
        delay = min(self.backoff_base * (2**slot.restarts), self.backoff_cap)
        if delay > 0:
            time.sleep(delay)
        replacement = self._spawn(slot.worker_id)
        replacement.restarts = slot.restarts + 1
        self.slots.append(replacement)
        return replacement

    def _retire(self, slot: WorkerSlot) -> None:
        with contextlib.suppress(ValueError):
            self.slots.remove(slot)
        with contextlib.suppress(OSError):
            slot.connection.close()
        process = slot.process
        if process.is_alive():  # type: ignore[attr-defined]
            process.terminate()  # type: ignore[attr-defined]
        process.join(timeout=self._join_timeout)  # type: ignore[attr-defined]

    def close(self) -> None:
        """Retire every slot; idempotent."""
        self.closed = True
        for slot in list(self.slots):
            self._retire(slot)

    def __enter__(self) -> WorkerSupervisor:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        return (
            f"WorkerSupervisor(slots={len(self.slots)}, "
            f"restarts={self.restarts_used}/{self.restart_budget})"
        )
