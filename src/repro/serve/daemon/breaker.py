"""Circuit breaker around the process-serving pool.

The session already degrades on its own (restart-budget exhaustion
arms a cooldown that demotes ``mode="auto"`` to threads), but the
daemon needs the decision to be *observable* and *probed*: operators
read the breaker state from ``/stats``, and recovery is an explicit
half-open probe batch instead of a silent retry.

States (the classic three):

* ``closed`` — healthy; batches route at the configured mode.
* ``open`` — :attr:`CircuitBreaker.threshold` consecutive serving
  failures (degradation events, pool-level errors, non-timeout
  ``ServingError`` slots) tripped it; batches route to the thread
  fallback until :attr:`CircuitBreaker.cooldown` elapses.
* ``half_open`` — cooldown expired; the next batch runs as an explicit
  ``mode="process"`` probe (which builds a fresh pool with a fresh
  restart budget).  Success closes the breaker, failure re-opens it
  and re-arms the cooldown.

The state transition on cooldown expiry happens lazily, on
observation — there is no timer task to leak.
"""

from __future__ import annotations

import time

#: Breaker states (string-valued for direct /stats reporting).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown-gated probe."""

    def __init__(self, threshold: int = 3, cooldown: float = 5.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self._opened_until = 0.0
        self._open = False
        #: Lifetime transition counters (for /stats and the chaos bench).
        self.times_opened = 0
        self.probes = 0

    @property
    def state(self) -> str:
        if not self._open:
            return CLOSED
        if time.monotonic() >= self._opened_until:
            return HALF_OPEN
        return OPEN

    def route(self, configured_mode: str) -> str:
        """The serving mode for the next batch.

        ``configured_mode`` is what the daemon was launched with; a
        breaker only matters when that mode can reach the process pool.
        """
        if configured_mode == "thread":
            return "thread"
        state = self.state
        if state == OPEN:
            return "thread"
        if state == HALF_OPEN:
            self.probes += 1
            return "process"
        return configured_mode

    def record_success(self) -> None:
        """A healthy batch: closes a half-open breaker, clears the count."""
        self.failures = 0
        self._open = False

    def record_failure(self) -> None:
        """A serving failure: trips at the threshold, re-opens a probe."""
        self.failures += 1
        if self._open or self.failures >= self.threshold:
            if not self._open:
                self.times_opened += 1
            self._open = True
            self._opened_until = time.monotonic() + self.cooldown

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown,
            "times_opened": self.times_opened,
            "probes": self.probes,
        }
