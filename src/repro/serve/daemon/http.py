"""A minimal asyncio HTTP/1.1 front for the serving daemon.

Stdlib-only by design (the project adds no dependencies): enough
HTTP/1.1 to serve JSON over keep-alive connections from load
generators and probes — request line, headers, ``Content-Length``
bodies, nothing else (no chunked encoding, no TLS; front a real proxy
with it in anger).

Routes::

    GET  /healthz   liveness (200 while the process runs)
    GET  /readyz    readiness (503 before warmup and while draining)
    GET  /stats     counters, queue depth, breaker state, percentiles
    POST /query     {"query": str, "timeout"?: s, "limit"?: n}
    POST /update    {"add_edges": [[v,u,label],...], ...} — hot swap
    POST /reload    {"path": str} — hot-swap from a saved index file
    POST /pause     test hook: pause batch dispatch
    POST /resume    test hook: resume batch dispatch
    POST /shutdown  begin the graceful drain (SIGTERM equivalent)

Every response is JSON; error responses carry a structured ``error``
kind (``overloaded``, ``draining``, ``deadline``, ``serving``,
``parse``) so clients can tell shed from failure without string
matching.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.serve.daemon.admission import Response

if TYPE_CHECKING:
    from repro.serve.daemon.lifecycle import ServingDaemon

#: Reason phrases for the statuses the daemon emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Bound on one request head+body (a front door should not buffer
#: arbitrarily large payloads into memory).
MAX_BODY_BYTES = 4 * 1024 * 1024


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {line!r}")
    method, target, _version = parts
    length = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length > MAX_BODY_BYTES:
        raise ValueError(f"request body too large: {length} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, body


def _write_response(writer: asyncio.StreamWriter, status: int, payload: dict) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)


async def _route(daemon: ServingDaemon, method: str, target: str, body: bytes) -> Response:
    """Dispatch one parsed request to the daemon."""
    if method == "GET":
        if target == "/healthz":
            return 200, {"ok": True, "draining": daemon.draining}
        if target == "/readyz":
            if daemon.ready and not daemon.draining:
                return 200, {"ready": True}
            return 503, {"ready": False, "draining": daemon.draining}
        if target == "/stats":
            return 200, daemon.stats_snapshot()
        return 404, {"error": "not_found", "target": target}
    if method != "POST":
        return 405, {"error": "method_not_allowed", "method": method}
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return 400, {"error": "bad_json", "detail": str(exc)}
    if not isinstance(payload, dict):
        return 400, {"error": "bad_json", "detail": "body must be a JSON object"}
    if target == "/query":
        return await daemon.submit(
            payload.get("query", ""), payload.get("timeout"), payload.get("limit")
        )
    if target == "/update":
        return await daemon.apply_update(payload)
    if target == "/reload":
        return await daemon.reload_index(payload.get("path"))
    if target == "/pause":
        daemon.dispatch_gate.clear()
        return 200, {"paused": True}
    if target == "/resume":
        daemon.dispatch_gate.set()
        return 200, {"paused": False}
    if target == "/shutdown":
        daemon.request_stop()
        return 200, {"stopping": True}
    return 404, {"error": "not_found", "target": target}


async def _handle_connection(
    daemon: ServingDaemon, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one keep-alive connection until it closes or errors."""
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                _write_response(writer, 400, {"error": "bad_request", "detail": str(exc)})
                await writer.drain()
                break
            if parsed is None:
                break
            method, target, body = parsed
            status, payload = await _route(daemon, method, target, body)
            _write_response(writer, status, payload)
            await writer.drain()
    except (ConnectionError, OSError, asyncio.CancelledError):
        # The peer vanished (or the server is closing): nothing to
        # answer and nobody to answer it to.
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # CancelledError included: handler tasks cancelled at event-
            # loop shutdown must still end *normally* — on 3.11 the
            # streams callback calls task.exception() on the finished
            # handler, which raises (and noisily logs) for a task that
            # ends cancelled.
            pass


async def start_http_server(daemon: ServingDaemon) -> asyncio.AbstractServer:
    """Bind and start serving; the caller owns the returned server."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        await _handle_connection(daemon, reader, writer)

    return await asyncio.start_server(handler, daemon.config.host, daemon.config.port)
