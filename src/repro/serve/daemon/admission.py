"""Admission control for the serving daemon: bounded queue, shed, stats.

The daemon's first robustness rule is that *waiting is bounded*: a
request either gets a seat in the admission queue immediately or is
shed with a structured ``overloaded`` reject — the queue never grows
without bound, so a traffic spike degrades into fast rejections
instead of unbounded memory growth and collapse (the
admission → deadline → breaker → drain ladder in
``docs/robustness.md``).

:class:`Request` is one admitted query: the resolved AST, its absolute
deadline, and the :class:`asyncio.Future` the HTTP handler awaits.
Every request resolves to a ``(status, payload)`` pair — success and
every failure mode alike — so the transport layer never has to map
exceptions to responses.

:class:`LatencyRecorder` keeps a bounded ring of completion latencies
for the ``/stats`` percentiles; :class:`DaemonStats` is the counter
bundle every layer of the daemon increments.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.query.ast import CPQ

#: Response payloads are JSON-ready dicts; a request resolves to
#: ``(http status, payload)``.
Response = tuple[int, dict]


class Request:
    """One admitted query waiting for (or in) a micro-batch."""

    __slots__ = ("deadline", "enqueued_at", "future", "limit", "query", "text")

    def __init__(
        self,
        query: CPQ,
        text: str,
        deadline: float | None,
        limit: int | None,
        future: asyncio.Future,
    ) -> None:
        self.query = query
        self.text = text
        #: Absolute monotonic deadline (``None`` = no deadline).
        self.deadline = deadline
        self.limit = limit
        self.future = future
        self.enqueued_at = time.monotonic()

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (``None`` when there is none)."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def resolve(self, status: int, payload: dict) -> None:
        """Settle the waiting handler (idempotent: late resolutions of an
        already-settled request — e.g. after a drain force-fail — drop)."""
        if not self.future.done():
            self.future.set_result((status, payload))


#: Queue sentinel: consumed by the batch loop to finish draining.
STOP = object()


class AdmissionQueue:
    """A bounded asyncio queue that sheds instead of blocking.

    ``offer`` is the only producer entry point and it *never waits*:
    over-capacity requests return ``False`` and the caller rejects them
    immediately.  The consumer side (the batch coalescer) uses ``get``
    / ``get_nowait`` as usual.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        #: High-water mark of the queue depth (the shed-boundedness
        #: assertion in the bench reads this).
        self.max_depth = 0

    def offer(self, request: Request) -> bool:
        """Seat ``request`` or report the queue full — never blocks."""
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            return False
        self.max_depth = max(self.max_depth, self._queue.qsize())
        return True

    async def put_stop(self) -> None:
        """Enqueue the drain sentinel (may wait for a seat: the consumer
        is draining the queue, so a seat always frees up)."""
        await self._queue.put(STOP)

    async def get(self) -> object:
        return await self._queue.get()

    def get_nowait(self) -> object:
        return self._queue.get_nowait()

    def depth(self) -> int:
        return self._queue.qsize()

    def drain_pending(self) -> list[Request]:
        """Empty the queue (forced-drain path), returning real requests."""
        pending: list[Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return pending
            if item is not STOP:
                pending.append(item)  # type: ignore[arg-type]


class LatencyRecorder:
    """Bounded ring of request latencies with cheap percentiles."""

    def __init__(self, window: int = 4096) -> None:
        self._window: deque[float] = deque(maxlen=window)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1

    def percentile(self, p: float) -> float | None:
        """The ``p``-th percentile (0..100) over the window, or ``None``."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        p50 = self.percentile(50)
        p99 = self.percentile(99)
        return {
            "count": self.count,
            "p50_ms": None if p50 is None else round(1000 * p50, 3),
            "p99_ms": None if p99 is None else round(1000 * p99, 3),
        }


class DaemonStats:
    """The daemon's counter bundle (everything ``/stats`` reports)."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.expired = 0
        self.batches = 0
        self.swaps = 0
        self.latency = LatencyRecorder()

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "expired": self.expired,
            "batches": self.batches,
            "swaps": self.swaps,
            "latency": self.latency.snapshot(),
        }
