"""The resilient serving daemon (``repro serve``).

A long-running asyncio front end over one
:class:`~repro.db.GraphDatabase`: bounded admission with explicit load
shedding, per-request deadlines, micro-batch coalescing into
``serve_batch``, a circuit breaker around the process pool, graceful
SIGTERM drain, and hot index swap over the serve-token handshake.

Layering:

* :mod:`repro.serve.daemon.admission` — the bounded queue, requests,
  latency/counter bookkeeping;
* :mod:`repro.serve.daemon.breaker` — the circuit breaker;
* :mod:`repro.serve.daemon.batching` — micro-batch coalescing and the
  ``serve_batch`` glue;
* :mod:`repro.serve.daemon.lifecycle` — :class:`ServingDaemon` itself
  (start, drain, swap, stats);
* :mod:`repro.serve.daemon.http` — the stdlib HTTP/1.1 transport;
* :mod:`repro.serve.daemon.client` — a blocking client for benches,
  tests, and the CI smoke script.

See the "Serving daemon" section of ``docs/robustness.md`` for the
admission → deadline → breaker → drain ladder and the breaker state
diagram.
"""

from repro.serve.daemon.admission import AdmissionQueue, DaemonStats, LatencyRecorder, Request
from repro.serve.daemon.breaker import CircuitBreaker
from repro.serve.daemon.client import DaemonClient
from repro.serve.daemon.lifecycle import DaemonConfig, ServingDaemon

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "DaemonClient",
    "DaemonConfig",
    "DaemonStats",
    "LatencyRecorder",
    "Request",
    "ServingDaemon",
]
