"""The serving daemon: lifecycle, admission, drain, and hot swap.

:class:`ServingDaemon` owns one :class:`~repro.db.GraphDatabase` and
runs the full robustness ladder over it (``docs/robustness.md``):

* **admission** — :meth:`submit` seats a request in the bounded queue
  or sheds it immediately with a structured ``overloaded`` reject;
* **deadlines** — every request carries one (its own, or the
  configured default), enforced before dispatch (expired requests are
  never served) and inside ``serve_batch(timeout=)``;
* **breaker** — the :class:`~repro.serve.daemon.breaker.CircuitBreaker`
  routes batches away from a failing process pool and probes it back;
* **drain** — :meth:`request_stop` (wired to SIGTERM) stops admission,
  lets the batch loop finish everything already admitted under
  :attr:`DaemonConfig.drain_deadline`, then force-fails the remainder
  — the daemon never exits holding unanswered futures;
* **hot swap** — :meth:`apply_update` / :meth:`reload_index` move the
  index under the session's writer lock; the serve-token handshake
  retires shipped worker snapshots, so in-flight queries finish on the
  old generation and new admissions see the new one, with no torn
  reads in between.

The daemon is transport-agnostic: :mod:`repro.serve.daemon.http` puts
a minimal HTTP/1.1 front on it, and tests drive :meth:`submit`
directly on the event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from dataclasses import dataclass

from repro.core import kernels
from repro.db.session import GraphDatabase
from repro.errors import ReproError
from repro.serve.daemon.admission import AdmissionQueue, DaemonStats, Request, Response
from repro.serve.daemon.batching import batch_loop
from repro.serve.daemon.breaker import CircuitBreaker
from repro.serve.procserve import DEFAULT_RETRIES


@dataclass
class DaemonConfig:
    """Knobs for one daemon instance (CLI flags map onto these 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in ServingDaemon.port
    capacity: int = 64  # admission queue bound (beyond it: shed)
    batch_window: float = 0.01  # coalescing window, seconds
    max_batch: int = 32  # cap on one coalesced batch
    workers: int = 4  # serve_batch worker count
    mode: str = "auto"  # serving mode under a closed breaker
    default_deadline: float | None = 10.0  # per-request deadline when unspecified
    drain_deadline: float = 10.0  # SIGTERM → forced-exit budget
    retries: int = DEFAULT_RETRIES
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0


class ServingDaemon:
    """A long-running server over one session (see module docstring)."""

    def __init__(self, db: GraphDatabase, config: DaemonConfig | None = None) -> None:
        self.db = db
        self.config = config or DaemonConfig()
        self.stats = DaemonStats()
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        # One cooldown story: the session's auto-mode demotion window
        # follows the breaker's, so the half-open probe is also the
        # session's successful-probe reset.
        self.db.degraded_cooldown = self.config.breaker_cooldown
        self.queue = AdmissionQueue(self.config.capacity)
        #: Test/bench hook: cleared to pause the batch loop (admissions
        #: then pile into the bounded queue deterministically).
        self.dispatch_gate = asyncio.Event()
        self.dispatch_gate.set()
        self.ready = False
        self.draining = False
        #: Set by :meth:`drain`: ``True`` when every admitted request was
        #: answered within the drain deadline, ``False`` on a forced exit.
        self.drained_clean: bool | None = None
        self._stop_event = asyncio.Event()
        self._batch_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        #: The bound TCP port once the HTTP front is up.
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the HTTP front, start the batch loop, flip readiness."""
        from repro.serve.daemon.http import start_http_server

        if not self.db.is_built:
            await asyncio.to_thread(self.db.build_index)
        self._batch_task = asyncio.create_task(batch_loop(self), name="repro-batch-loop")
        self._server = await start_http_server(self)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self.ready = True

    def request_stop(self) -> None:
        """Begin the graceful drain (idempotent; wired to SIGTERM/SIGINT)."""
        self.draining = True
        self._stop_event.set()

    async def run(self) -> None:
        """Serve until :meth:`request_stop`, then drain and exit."""
        await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # noqa: PERF203
                break  # non-unix event loop: rely on /shutdown
        try:
            await self._stop_event.wait()
            await self.drain()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.close()

    async def drain(self) -> None:
        """Finish admitted work under the drain deadline, then force-exit.

        New admissions are already rejected (``draining`` flips in
        :meth:`request_stop`); this pushes the STOP sentinel behind the
        queued requests and waits for the batch loop to serve everything
        up to it.  Past the deadline the loop is cancelled and whatever
        is still queued is failed fast with structured ``draining``
        errors — never silently dropped.
        """
        deadline = time.monotonic() + self.config.drain_deadline
        self.draining = True
        self.dispatch_gate.set()  # a paused daemon must still drain
        clean = True
        try:
            await asyncio.wait_for(
                self.queue.put_stop(), max(0.05, deadline - time.monotonic())
            )
            if self._batch_task is not None:
                await asyncio.wait_for(
                    self._batch_task, max(0.05, deadline - time.monotonic())
                )
        except TimeoutError:
            clean = False
            if self._batch_task is not None:
                self._batch_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._batch_task
        for request in self.queue.drain_pending():
            self.stats.failed += 1
            request.resolve(503, {"error": "draining", "detail": "daemon is shutting down"})
        self.drained_clean = clean

    async def close(self) -> None:
        """Tear down the HTTP front and the session's serving pool."""
        self.ready = False
        if self._server is not None:
            self._server.close()
            # Python 3.12's wait_closed also waits for handler tasks; a
            # peer holding a keep-alive connection open must not be able
            # to wedge shutdown, so the wait is bounded.
            with contextlib.suppress(TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), 5.0)
            self._server = None
        if self._batch_task is not None and not self._batch_task.done():
            self._batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._batch_task
        await asyncio.to_thread(self.db.close)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def submit(
        self,
        text: str,
        timeout: float | None = None,
        limit: int | None = None,
    ) -> Response:
        """Admit one query and await its answer (the /query entry point).

        Returns a ``(status, payload)`` response for every outcome:
        ``200`` answers, ``400`` parse errors, ``503`` shed/draining,
        ``504`` deadline, ``500`` serving failure.
        """
        if self.draining:
            return 503, {"error": "draining", "detail": "daemon is shutting down"}
        if not self.ready:
            return 503, {"error": "not_ready"}
        try:
            query = await asyncio.to_thread(self.db._resolve, text)
        except ReproError as exc:
            return 400, {"error": "parse", "detail": str(exc)}
        budget = self.config.default_deadline if timeout is None else timeout
        deadline = None if budget is None else time.monotonic() + budget
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = Request(query, text, deadline, limit, future)
        if not self.queue.offer(request):
            self.stats.shed += 1
            return 503, {
                "error": "overloaded",
                "detail": "admission queue is full",
                "queue_depth": self.queue.depth(),
                "capacity": self.queue.capacity,
            }
        self.stats.admitted += 1
        return await future

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    async def apply_update(self, payload: dict) -> Response:
        """Apply graph updates in place (the /update entry point).

        Runs :meth:`GraphDatabase.update` off-loop; the session's writer
        lock drains in-flight evaluations first and the serve token
        moves, so the swap is atomic from every reader's point of view.
        """
        try:
            add_edges = [tuple(edge) for edge in payload.get("add_edges", ())]
            remove_edges = [tuple(edge) for edge in payload.get("remove_edges", ())]
            add_vertices = list(payload.get("add_vertices", ()))
            remove_vertices = list(payload.get("remove_vertices", ()))
            await asyncio.to_thread(
                self.db.update,
                add_edges=add_edges,
                remove_edges=remove_edges,
                add_vertices=add_vertices,
                remove_vertices=remove_vertices,
            )
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": "update", "detail": str(exc)}
        self.stats.swaps += 1
        return 200, {
            "generation": self.db._engine_gen,
            "graph_version": self.db.graph.version,
        }

    async def reload_index(self, path: str | None) -> Response:
        """Hot-swap the whole index from a saved file (the /reload entry)."""
        if not path:
            return 400, {"error": "reload", "detail": "missing 'path'"}
        try:
            await asyncio.to_thread(self.db.reload, path)
        except (ReproError, OSError) as exc:
            return 400, {"error": "reload", "detail": str(exc)}
        self.stats.swaps += 1
        return 200, {
            "generation": self.db._engine_gen,
            "graph_version": self.db.graph.version,
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Everything ``/stats`` reports, as one JSON-ready dict."""
        snapshot = self.stats.snapshot()
        snapshot["ready"] = self.ready
        snapshot["draining"] = self.draining
        snapshot["queue"] = {
            "depth": self.queue.depth(),
            "capacity": self.queue.capacity,
            "max_depth": self.queue.max_depth,
        }
        snapshot["breaker"] = self.breaker.snapshot()
        snapshot["index"] = {
            "engine": self.db.engine_name,
            "generation": self.db._engine_gen,
            "graph_version": self.db.graph.version,
            "process_degraded": self.db._process_degraded,
            "kernels": kernels.active_backend(),
        }
        pool = self.db._proc_pool
        snapshot["pool"] = {
            "restarts_used": 0 if pool is None else pool.restarts_used,
            "map_failures": 0 if pool is None else pool.map_failures,
            "degraded": pool is not None and pool.degraded,
        }
        return snapshot
