"""Micro-batch coalescing: fuse queued requests into one ``serve_batch``.

The daemon's throughput story is *inherited*, not reinvented: requests
arriving within :attr:`DaemonConfig.batch_window` of each other are
fused into a single :meth:`GraphDatabase.serve_batch` call, so the
parallel read path (thread or process pools, deadlines, retries,
zero-copy shipping) serves the HTTP front end exactly as it serves the
embedded API.  One batch is in flight at a time; the admission queue
buffers (boundedly) behind it.

Per-request deadlines compose with the batch deadline: requests whose
deadline already passed are answered ``504`` without being served, and
the batch's ``serve_batch(timeout=)`` is the *smallest* remaining
per-request deadline — a batch never outlives its most urgent member.
Failures come back per-slot (``on_error="partial"``), so one poisoned
query cannot fail its batch-mates.

The circuit breaker is consulted once per batch for the serving mode
and fed the batch outcome: non-timeout serving failures and session
degradation count against it, timeouts do not (a slow query is not a
broken pool).
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from repro.core.persistence import encode_vertex
from repro.errors import QueryTimeoutError
from repro.serve.daemon.admission import STOP, Request

if TYPE_CHECKING:
    from repro.serve.daemon.lifecycle import ServingDaemon

#: Floor on the fused batch deadline: a batch admitted with (say) 2 ms
#: left still gets a serveable timeout instead of an instant expiry.
MIN_BATCH_TIMEOUT = 0.05


def encode_answers(pairs, limit: int | None) -> list:
    """JSON-encode an answer set: sorted ``[source, target]`` rows.

    Sorted (by stable repr — vertex types may be mixed) so two daemons
    serving the same engine return byte-identical bodies; ``limit``
    truncates after sorting, which keeps the truncation deterministic
    too.
    """
    encoded = sorted(
        ([encode_vertex(source), encode_vertex(target)] for source, target in pairs),
        key=repr,
    )
    if limit is not None:
        encoded = encoded[:limit]
    return encoded


async def batch_loop(daemon: ServingDaemon) -> None:
    """Consume the admission queue forever, one coalesced batch at a time.

    Ends when the drain sentinel (:data:`~repro.serve.daemon.admission.STOP`)
    is consumed — anything coalesced alongside it is still served first,
    so SIGTERM never abandons an admitted request inside the window.
    """
    queue = daemon.queue
    loop = asyncio.get_running_loop()
    stopping = False
    while not stopping:
        await daemon.dispatch_gate.wait()
        item = await queue.get()
        if item is STOP:
            break
        batch = [item]
        window_end = loop.time() + daemon.config.batch_window
        while len(batch) < daemon.config.max_batch:
            remaining = window_end - loop.time()
            if remaining <= 0:
                break
            try:
                extra = await asyncio.wait_for(queue.get(), remaining)
            except TimeoutError:  # noqa: PERF203 - window expiry, per iteration
                break
            if extra is STOP:
                stopping = True
                break
            batch.append(extra)
        await serve_requests(daemon, [request for request in batch if isinstance(request, Request)])


async def serve_requests(daemon: ServingDaemon, batch: list[Request]) -> None:
    """Serve one coalesced batch and settle every request in it."""
    now = time.monotonic()
    live: list[Request] = []
    for request in batch:
        remaining = request.remaining(now)
        if remaining is not None and remaining <= 0:
            daemon.stats.expired += 1
            request.resolve(
                504, {"error": "deadline", "detail": "deadline expired before dispatch"}
            )
        else:
            live.append(request)
    if not live:
        return
    daemon.stats.batches += 1
    mode = daemon.breaker.route(daemon.config.mode)
    budgets = [request.remaining(now) for request in live]
    finite = [budget for budget in budgets if budget is not None]
    timeout = max(MIN_BATCH_TIMEOUT, min(finite)) if finite else None

    try:
        result = await asyncio.to_thread(
            daemon.db.serve_batch,
            [request.query for request in live],
            workers=daemon.config.workers,
            mode=mode,
            timeout=timeout,
            retries=daemon.config.retries,
            on_error="partial",
        )
    except asyncio.CancelledError:
        # Forced drain: the batch loop is being cancelled past the drain
        # deadline.  The serving thread cannot be interrupted (its result
        # is simply discarded), but the waiting handlers must still get
        # answers — a daemon never exits holding unresolved futures.
        for request in live:
            daemon.stats.failed += 1
            request.resolve(503, {"error": "draining", "detail": "daemon is shutting down"})
        raise
    except Exception as exc:
        # serve_batch(on_error="partial") only raises for batch-level
        # breakage (a deterministic library error, a closed session);
        # the batch fails as a unit and the breaker hears about it.
        detail = f"{type(exc).__name__}: {exc}"
        daemon.breaker.record_failure()
        for request in live:
            daemon.stats.failed += 1
            request.resolve(500, {"error": "serving", "detail": detail})
        return

    settled_at = time.monotonic()
    generation = daemon.db._engine_gen
    serving_failures = 0
    for request, slot in zip(live, result.results, strict=True):
        if slot.failed:
            if isinstance(slot.error, QueryTimeoutError):
                daemon.stats.timed_out += 1
                request.resolve(504, {"error": "deadline", "detail": str(slot.error)})
            else:
                serving_failures += 1
                daemon.stats.failed += 1
                request.resolve(500, {"error": "serving", "detail": str(slot.error)})
        else:
            answers = encode_answers(slot.pairs(), request.limit)
            daemon.stats.completed += 1
            daemon.stats.latency.record(settled_at - request.enqueued_at)
            request.resolve(
                200,
                {
                    "answers": answers,
                    "count": len(answers),
                    "generation": generation,
                    "batched": len(live),
                },
            )
    if serving_failures or (mode != "thread" and daemon.db._process_degraded):
        daemon.breaker.record_failure()
    else:
        daemon.breaker.record_success()
