"""A small blocking client for the serving daemon.

Used by the daemon bench's load generator, the CI smoke script, and
tests — anything that needs to talk to a running ``repro serve``
without pulling in an HTTP library.  One connection per call (the
daemon handles keep-alive, but a fresh connection keeps the client
trivially safe to use from many threads at once: the load generator
runs one client per worker thread).

Every method returns ``(status, payload)`` — the daemon's structured
responses pass through unmapped, so callers branch on
``payload.get("error")`` (``overloaded``, ``draining``, ``deadline``,
``serving``) exactly as documented in :mod:`repro.serve.daemon.http`.
"""

from __future__ import annotations

import http.client
import json
import time

#: A client call resolves to ``(http status, decoded JSON payload)``.
ClientResponse = tuple[int, dict]


class DaemonClient:
    """Blocking JSON-over-HTTP client for one daemon address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> ClientResponse:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def healthz(self) -> ClientResponse:
        return self._request("GET", "/healthz")

    def readyz(self) -> ClientResponse:
        return self._request("GET", "/readyz")

    def stats(self) -> dict:
        _, payload = self._request("GET", "/stats")
        return payload

    def wait_ready(self, deadline_seconds: float = 30.0) -> bool:
        """Poll ``/readyz`` until it answers 200 (or the deadline passes)."""
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            try:
                status, _ = self.readyz()
            except OSError:
                status = 0
            if status == 200:
                return True
            time.sleep(0.05)
        return False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(
        self,
        text: str,
        timeout: float | None = None,
        limit: int | None = None,
    ) -> ClientResponse:
        payload: dict = {"query": text}
        if timeout is not None:
            payload["timeout"] = timeout
        if limit is not None:
            payload["limit"] = limit
        return self._request("POST", "/query", payload)

    def update(self, **changes) -> ClientResponse:
        """Hot-swap via graph updates: ``add_edges=[...]``, etc."""
        return self._request("POST", "/update", dict(changes))

    def reload(self, path: str) -> ClientResponse:
        return self._request("POST", "/reload", {"path": path})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def pause(self) -> ClientResponse:
        return self._request("POST", "/pause")

    def resume(self) -> ClientResponse:
        return self._request("POST", "/resume")

    def shutdown(self) -> ClientResponse:
        return self._request("POST", "/shutdown")
