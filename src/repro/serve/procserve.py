"""Process-based query serving — a GIL-free read path over engine snapshots.

The thread-pool serving path (``GraphDatabase.serve_batch`` with
``mode="thread"``) is correct under concurrency but CPU-bound evaluation
throughput stays GIL-bounded: N reader threads time-slice one
interpreter.  Related structural-index work (Riveros et al.'s structural
indexing for free-connex acyclic CQs, Fletcher & Beck's secondary-memory
RDF indexing) treats a built index as an **immutable artifact served by
independent readers** — exactly the shape that lets evaluation fan out
across worker *processes* instead.

This module is that fan-out:

* an **engine snapshot** — the engine pickled *minus* its lock-bearing
  memo caches (``EngineBase.__getstate__`` drops them; they are pure
  caches, rebuilt lazily worker-side) — ships once per worker over the
  persistent pipe-connected machinery of
  :class:`repro.core.parallel.WorkerPool`;
* a **work-queue dispatcher** (:meth:`ProcessServingPool.serve`) hands
  resolved queries to idle workers one at a time and reassembles the
  answers in submission order, so a process-served batch returns exactly
  the serial ``execute_batch`` answers;
* a **version-token handshake** keeps snapshots fresh: every snapshot
  and every query carries the session's serve token
  (:func:`session_token` — engine generation, graph version, engine
  epoch).  The dispatcher re-ships the snapshot to a worker whose last
  shipped token is out of date, and the worker *independently* rejects a
  query whose token does not match its snapshot (replying ``stale``,
  which triggers a re-ship and a retry) — so even an invalidation the
  parent's bookkeeping missed cannot serve answers computed against an
  older engine;
* **worker failures surface, never hang**: an evaluation error is
  shipped back as a traceback and re-raised parent-side as
  :class:`~repro.errors.ServingError`; a worker that dies without
  reporting closes its pipe, which the dispatcher turns into a
  ``ServingError`` after tearing the pool down (the session then builds
  a fresh pool on the next process-mode batch).

The pool is constructed lazily by the session on the first
``serve_batch(..., mode="process")`` call and reused across batches —
worker processes are the expensive part, snapshots are the cheap part —
and ``GraphDatabase.update()`` invalidates shipped snapshots under the
session's exclusive lock (draining in-flight readers first).

See ``docs/concurrency.md`` ("Process-based serving") for the protocol
diagram and the thread-vs-process decision guide.
"""

from __future__ import annotations

import contextlib
import pickle
import threading
from collections import deque
from collections.abc import Sequence
from multiprocessing.connection import Connection, wait
from typing import cast

from repro.core.executor import ExecutionStats
from repro.core.parallel import WorkerPool
from repro.errors import ServingError
from repro.graph.digraph import Pair
from repro.query.ast import CPQ

#: ``mode="auto"`` only picks process serving for batches at least this
#: large: below it, snapshot shipping and pipe round-trips dominate any
#: parallel gain even on a many-core host.
PROCESS_MODE_MIN_QUERIES = 8

#: A serve token: ``(engine generation, graph version, engine epoch)``.
#: Equality means "the same engine state"; any update, rebuild, or
#: engine swap moves at least one component.
ServeToken = tuple[int, int, int]

#: One served query's outcome: the answer set plus its operator counters.
ServeOutcome = tuple[frozenset[Pair], ExecutionStats]


def session_token(engine: object, generation: int) -> ServeToken:
    """The freshness token for ``engine`` as the ``generation``-th engine
    adopted by its session.

    Extends the engine-level ``(graph version, epoch)`` memo token with
    the session's adoption counter: a rebuild on an unchanged graph
    swaps the engine object without moving either engine-level
    component, and only the generation tells the two apart.
    """
    graph = getattr(engine, "graph", None)
    return (
        generation,
        getattr(graph, "version", 0),
        getattr(engine, "_cache_epoch", 0),
    )


def snapshot_bytes(engine: object) -> bytes:
    """Pickle ``engine`` as a shippable snapshot.

    Relies on the snapshot invariant: every registered engine pickles
    after build once its lock-bearing memo caches are dropped
    (``EngineBase.__getstate__``; the graph likewise drops its interned
    adjacency snapshot).  Guarded by the per-engine round-trip test in
    ``tests/test_procserve.py``.  An engine that breaks the invariant —
    a third-party engine left at the default
    ``EngineSpec(process_servable=True)`` while holding unpicklable
    state — surfaces here as :class:`~repro.errors.ServingError` with
    the fix spelled out, not as a raw pickling ``TypeError``.
    """
    try:
        return pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ServingError(
            f"engine {type(engine).__name__!r} cannot be snapshotted for "
            f"process serving ({exc}); register it with "
            f"EngineSpec(process_servable=False) or serve with "
            f"mode='thread'"
        ) from exc


def _serve_worker(task: int, conn: Connection) -> None:
    """Worker-process loop: install snapshots, answer queries.

    Messages from the parent: ``("snapshot", blob, token)`` installs a
    new engine snapshot; ``("query", job, query, limit, token)``
    evaluates — answered with ``("result", job, answers, stats)``,
    ``("stale", job)`` when ``token`` does not match the installed
    snapshot (the handshake's worker-side check), or ``("error", job,
    reason)`` when evaluation raises; ``("stop",)`` (or a closed pipe)
    ends the loop.  The memo caches the snapshot was stripped of rebuild
    here lazily, so repeated queries within one worker still hit the
    engine's cross-query LRUs.
    """
    import traceback

    engine: object | None = None
    token: ServeToken | None = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # noqa: PERF203 - per-message shutdown guard
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "snapshot":
                engine = pickle.loads(message[1])
                token = message[2]
            elif kind == "query":
                _, job, query, limit, expected = message
                if engine is None or token != expected:
                    conn.send(("stale", job))
                    continue
                try:
                    run = ExecutionStats()
                    evaluate = engine.evaluate  # type: ignore[attr-defined]
                    answers = evaluate(query, stats=run, limit=limit)
                    conn.send(("result", job, frozenset(answers), run))
                except Exception:  # noqa: PERF203 - per-query fault isolation
                    conn.send(("error", job, traceback.format_exc()))
            else:  # pragma: no cover - protocol misuse guard
                conn.send(("error", None, f"unknown message kind {kind!r}"))
    except Exception:  # pragma: no cover - crash-path reporting
        import traceback as _tb

        with contextlib.suppress(OSError):
            conn.send(("error", None, _tb.format_exc()))
    finally:
        conn.close()


class ProcessServingPool:
    """A persistent pool of serving worker processes for one session.

    Wraps a :class:`~repro.core.parallel.WorkerPool` (``spawn`` context,
    so construction is safe under live reader threads) with the
    snapshot-shipping dispatcher described in the module docstring.
    One batch runs at a time (an internal mutex serializes concurrent
    :meth:`serve` calls); the session's RWLock already serializes
    batches against updates.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = WorkerPool(_serve_worker, list(range(workers)))
        self._lock = threading.Lock()
        #: Last token shipped to each worker connection.
        self._worker_tokens: dict[Connection, ServeToken] = {}
        self._snapshot_token: ServeToken | None = None
        self._snapshot_blob: bytes | None = None
        self.closed = False

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def _snapshot(self, engine: object, token: ServeToken) -> bytes:
        """The pickled snapshot for ``token``, serialized at most once."""
        if self._snapshot_token != token or self._snapshot_blob is None:
            self._snapshot_blob = snapshot_bytes(engine)
            self._snapshot_token = token
        return self._snapshot_blob

    def invalidate(self) -> None:
        """Retire every shipped snapshot (the update-side hook).

        Called by ``GraphDatabase.update()`` under the exclusive lock —
        after in-flight readers drained — so the next batch re-ships
        fresh snapshots even before any token comparison runs, and the
        stale blob's memory is released immediately.
        """
        self._snapshot_token = None
        self._snapshot_blob = None
        self._worker_tokens.clear()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def serve(
        self,
        engine: object,
        token: ServeToken,
        queries: Sequence[CPQ],
        limit: int | None = None,
    ) -> list[ServeOutcome]:
        """Evaluate ``queries`` across the workers; outcomes keep input order.

        A work-queue dispatcher: every idle worker holds exactly one
        in-flight query, finished workers immediately draw the next one,
        so a slow query never stalls the rest of the batch behind a
        static pre-partition.  Any failure tears the pool down before
        the :class:`~repro.errors.ServingError` propagates — a broken
        pipe cannot be rejoined mid-batch — and the owning session
        simply builds a fresh pool on its next process-mode batch.
        """
        with self._lock:
            if self.closed:
                raise ServingError("serving pool is closed")
            try:
                return self._serve_locked(engine, token, queries, limit)
            except BaseException:
                self._close_locked()
                raise

    def _serve_locked(
        self,
        engine: object,
        token: ServeToken,
        queries: Sequence[CPQ],
        limit: int | None,
    ) -> list[ServeOutcome]:
        jobs = deque(enumerate(queries))
        outcomes: list[ServeOutcome | None] = [None] * len(queries)
        in_flight: dict[Connection, tuple[int, CPQ]] = {}

        def dispatch(conn: Connection, job: tuple[int, CPQ]) -> None:
            if self._worker_tokens.get(conn) != token:
                conn.send(("snapshot", self._snapshot(engine, token), token))
                self._worker_tokens[conn] = token
            conn.send(("query", job[0], job[1], limit, token))
            in_flight[conn] = job

        try:
            for conn in self._pool.connections:
                if not jobs:
                    break
                dispatch(conn, jobs.popleft())
            while in_flight:
                for ready in wait(list(in_flight)):
                    conn = cast(Connection, ready)
                    job = in_flight.pop(conn)
                    message = conn.recv()
                    kind = message[0]
                    if kind == "result":
                        outcomes[message[1]] = (message[2], message[3])
                        if jobs:
                            dispatch(conn, jobs.popleft())
                    elif kind == "stale":
                        # The worker-side token check tripped: its
                        # snapshot predates ours.  Forget what we think
                        # we shipped, re-ship, retry the same query.
                        self._worker_tokens.pop(conn, None)
                        dispatch(conn, job)
                    else:
                        reason = message[2] if kind == "error" else f"bad message {kind!r}"
                        raise ServingError(f"serving worker failed on query {job[1]!r}:\n{reason}")
        except (EOFError, OSError):
            raise ServingError(
                "serving worker exited unexpectedly (killed or crashed); "
                "the pool has been shut down"
            ) from None
        # Every job was dispatched and either resolved or raised.
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _close_locked(self) -> None:
        if not self.closed:
            self.closed = True
            for conn in self._pool.connections:
                with contextlib.suppress(OSError):
                    conn.send(("stop",))
            self._pool.close()
            self.invalidate()

    def close(self) -> None:
        """Stop and join every worker; idempotent."""
        with self._lock:
            self._close_locked()

    def __enter__(self) -> ProcessServingPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"ProcessServingPool(workers={self.workers}, {state})"
