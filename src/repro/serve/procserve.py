"""Process-based query serving — a GIL-free, fault-tolerant read path.

The thread-pool serving path (``GraphDatabase.serve_batch`` with
``mode="thread"``) is correct under concurrency but CPU-bound evaluation
throughput stays GIL-bounded: N reader threads time-slice one
interpreter.  Related structural-index work (Riveros et al.'s structural
indexing for free-connex acyclic CQs, Fletcher & Beck's secondary-memory
RDF indexing) treats a built index as an **immutable artifact served by
independent readers** — exactly the shape that lets evaluation fan out
across worker *processes* instead.

This module is that fan-out:

* workers receive the engine one of two ways.  The preferred path
  (PR 8) ships only a **(path, token) pair**: the session writes the
  engine as a zero-copy store generation (:mod:`repro.store`) and each
  worker ``mmap``-opens it — per-worker shipped bytes collapse from the
  engine pickle (~14.3 MB in BENCH_PR5) to the length of a path string,
  and the mapped pages are shared across workers instead of unpickled N
  times.  The fallback path ships an **engine snapshot** — the engine
  pickled *minus* its lock-bearing memo caches
  (``EngineBase.__getstate__`` drops them; they are pure caches,
  rebuilt lazily worker-side) — used for engines without store support.
  Both travel over the supervised pipe-connected machinery of
  :class:`repro.serve.supervisor.WorkerSupervisor`;
* a **work-queue dispatcher** (:meth:`ProcessServingPool.serve`) hands
  resolved queries to idle workers one at a time and reassembles the
  answers in submission order, so a process-served batch returns exactly
  the serial ``execute_batch`` answers for every query that succeeds;
* a **version-token handshake** keeps snapshots fresh: every snapshot
  or map message and every query carries the session's serve token
  (:func:`session_token` — engine generation, graph version, engine
  epoch).  The dispatcher re-ships to a worker whose last shipped token
  is out of date (for mapped serving that usually means a new *delta*
  generation path — or the same path again when only the token moved,
  which the worker installs without re-opening anything), and the
  worker *independently* rejects a query whose token does not match its
  installed engine (replying ``stale``, which triggers a re-ship and a
  retry) — so even an invalidation the parent's bookkeeping missed
  cannot serve answers computed against an older engine.  A worker that
  fails to *open* a shipped path reports it through the normal
  per-query error path, so a corrupt generation file fails queries
  under the bounded retry budget instead of wedging the pool;
* **bounded failure domains** (PR 7): a worker that dies mid-query is
  restarted by the supervisor (exponential backoff, bounded restart
  budget) and its in-flight query re-dispatched with backoff up to a
  per-query retry budget; a query that exceeds its **deadline**
  (``timeout=``) gets its worker killed, restarted, and the query
  retried or surfaced as :class:`~repro.errors.QueryTimeoutError`; an
  evaluation error ships back as a traceback and is retried, then
  surfaced as a structured :class:`~repro.errors.ServingError`.
  Permanent failures come back as
  :class:`~repro.serve.supervisor.ServeFailure` slots — the *batch*
  never raises for a single query's sake, and the pool survives for the
  next batch.  When the restart budget is exhausted the pool **degrades
  gracefully**: remaining queries evaluate serially in the parent (same
  answers, no parallelism), ``degraded`` is set, and the session routes
  future ``auto``-mode batches to threads.

Chaos testing hooks: :meth:`ProcessServingPool.serve` accepts a
:class:`~repro.serve.faults.FaultInjector`, shipped to workers inside
the snapshot message, which kills/delays/drops at controlled seeded
rates (``tests/test_chaos.py``, ``repro serve-bench --chaos``).

See ``docs/concurrency.md`` for the protocol diagram and
``docs/robustness.md`` for the failure-domain table and degradation
ladder.
"""

from __future__ import annotations

import contextlib
import pickle
import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from multiprocessing.connection import Connection, wait
from typing import cast

from repro.core.executor import ExecutionStats
from repro.errors import CorruptIndexError, QueryTimeoutError, ServingError
from repro.graph.digraph import Pair
from repro.query.ast import CPQ
from repro.serve.faults import FaultInjector
from repro.serve.supervisor import ServeFailure, WorkerSupervisor

#: ``mode="auto"`` only picks process serving for batches at least this
#: large: below it, snapshot shipping and pipe round-trips dominate any
#: parallel gain even on a many-core host.
PROCESS_MODE_MIN_QUERIES = 8

#: Default per-query re-dispatch budget (``serve_batch(retries=...)``).
DEFAULT_RETRIES = 2

#: Exponential backoff between re-dispatches of one query: the n-th
#: retry sleeps ``min(BASE * 2**(n-1), CAP)`` seconds.
RETRY_BACKOFF_BASE = 0.02
RETRY_BACKOFF_CAP = 0.5

#: Deadline applied when no ``timeout=`` was given but the batch runs
#: under an injector that drops replies — a dropped message would
#: otherwise hang the batch forever.
CHAOS_DROP_TIMEOUT = 5.0

#: Extra allowance on a query's deadline when its dispatch had to
#: (re-)ship the engine snapshot.  The worker acks the install
#: (``snapshot_ok``), which restarts the deadline clock at the plain
#: ``timeout`` — this grace only bounds a worker that hangs *during*
#: install, so unpickling a large snapshot (the state every ``update()``
#: leaves behind) cannot eat the query's budget and kill-loop the pool.
SNAPSHOT_INSTALL_GRACE = 30.0

#: A serve token: ``(engine generation, graph version, engine epoch)``.
#: Equality means "the same engine state"; any update, rebuild, or
#: engine swap moves at least one component.
ServeToken = tuple[int, int, int]

#: One served query's outcome: the answer set plus its operator counters.
ServeOutcome = tuple[frozenset[Pair], ExecutionStats]


def session_token(engine: object, generation: int) -> ServeToken:
    """The freshness token for ``engine`` as the ``generation``-th engine
    adopted by its session.

    Extends the engine-level ``(graph version, epoch)`` memo token with
    the session's adoption counter: a rebuild on an unchanged graph
    swaps the engine object without moving either engine-level
    component, and only the generation tells the two apart.
    """
    graph = getattr(engine, "graph", None)
    return (
        generation,
        getattr(graph, "version", 0),
        getattr(engine, "_cache_epoch", 0),
    )


def snapshot_bytes(engine: object) -> bytes:
    """Pickle ``engine`` as a shippable snapshot.

    Relies on the snapshot invariant: every registered engine pickles
    after build once its lock-bearing memo caches are dropped
    (``EngineBase.__getstate__``; the graph likewise drops its interned
    adjacency snapshot).  Guarded by the per-engine round-trip test in
    ``tests/test_procserve.py``.  An engine that breaks the invariant —
    a third-party engine left at the default
    ``EngineSpec(process_servable=True)`` while holding unpicklable
    state — surfaces here as :class:`~repro.errors.ServingError` with
    the fix spelled out, not as a raw pickling ``TypeError``.
    """
    try:
        return pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ServingError(
            f"engine {type(engine).__name__!r} cannot be snapshotted for "
            f"process serving ({exc}); register it with "
            f"EngineSpec(process_servable=False) or serve with "
            f"mode='thread'"
        ) from exc


def _serve_worker(worker_id: int, conn: Connection) -> None:
    """Worker-process loop: install snapshots or mapped stores, answer queries.

    Messages from the parent: ``("snapshot", blob, token, injector)``
    installs a new engine snapshot (``injector`` is ``None`` outside
    chaos runs) — acknowledged with ``("snapshot_ok", token)`` once the
    blob is unpickled, so the parent can start the in-flight query's
    deadline *after* the install instead of letting a large snapshot
    eat the query's budget; ``("map", path, token, injector)`` is the
    zero-copy analogue — the worker ``mmap``-opens the store file at
    ``path`` (skipping the open entirely when ``path`` matches the
    engine it already holds: a token-only move, or a parent that merely
    forgot what it shipped), acked with the same ``("snapshot_ok",
    token)``; ``("query", job, query, limit, token)`` evaluates —
    answered with ``("result", job, answers, stats)``, ``("stale",
    job)`` when ``token`` does not match the installed engine (the
    handshake's worker-side check), ``("error", job, reason)`` when
    evaluation raises, or ``("map_error", job, path, reason, trace)``
    when the preceding map failed to open (a corrupt or missing
    generation file fails its queries under the bounded retry budget,
    with the parent demoting the batch to snapshot shipping — it never
    wedges the pool); ``("stop",)`` (or a closed pipe) ends the loop.
    The memo caches the snapshot was stripped of rebuild here lazily, so
    repeated queries within one worker still hit the engine's
    cross-query LRUs.

    Under an injector, each query consults the worker fault sites before
    evaluating: ``worker.kill`` hard-exits (the parent sees EOF),
    ``worker.delay`` sleeps, ``worker.drop`` swallows the query without
    replying (the parent's deadline recovers it), and ``worker.error``
    raises into the normal evaluation-error path.
    """
    import traceback

    engine: object | None = None
    engine_path: str | None = None
    map_error: tuple[str, str, str] | None = None
    token: ServeToken | None = None
    injector: FaultInjector | None = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # noqa: PERF203 - per-message shutdown guard
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "snapshot":
                engine = pickle.loads(message[1])
                engine_path = None
                map_error = None
                token = message[2]
                injector = message[3]
                conn.send(("snapshot_ok", token))
            elif kind == "map":
                path = message[1]
                token = message[2]
                injector = message[3]
                if engine is None or engine_path != path:
                    try:
                        from repro.serve.faults import inject
                        from repro.store import open_store

                        if injector is not None:
                            # Ambient install so the reader's store.open /
                            # store.delta hook points fire worker-side.
                            with inject(injector):
                                engine = open_store(path)
                        else:
                            engine = open_store(path)
                        engine_path = path
                        map_error = None
                    except Exception as exc:
                        # Surfaced per query below: every query against the
                        # unopenable store answers ("map_error", job, ...).
                        engine = None
                        engine_path = None
                        reason = str(getattr(exc, "reason", None) or exc)
                        map_error = (str(path), reason, traceback.format_exc())
                conn.send(("snapshot_ok", token))
            elif kind == "query":
                _, job, query, limit, expected = message
                if token != expected or (engine is None and map_error is None):
                    conn.send(("stale", job))
                    continue
                if engine is None:
                    assert map_error is not None
                    conn.send(("map_error", job, *map_error))
                    continue
                if injector is not None:
                    injector.maybe_kill("worker.kill")
                    injector.maybe_delay("worker.delay")
                    if injector.fire("worker.drop"):
                        continue
                try:
                    if injector is not None:
                        injector.fail("worker.error")
                    run = ExecutionStats()
                    evaluate = engine.evaluate  # type: ignore[attr-defined]
                    answers = evaluate(query, stats=run, limit=limit)
                    conn.send(("result", job, frozenset(answers), run))
                except Exception:  # noqa: PERF203 - per-query fault isolation
                    conn.send(("error", job, traceback.format_exc()))
            else:  # pragma: no cover - protocol misuse guard
                conn.send(("error", None, f"unknown message kind {kind!r}"))
    except Exception:  # pragma: no cover - crash-path reporting
        import traceback as _tb

        with contextlib.suppress(OSError):
            conn.send(("error", None, _tb.format_exc()))
    finally:
        conn.close()


#: One not-yet-resolved query: ``(batch index, query, attempts so far)``.
_Job = tuple[int, CPQ, int]


class ProcessServingPool:
    """A persistent, supervised pool of serving worker processes.

    Wraps a :class:`~repro.serve.supervisor.WorkerSupervisor` (``spawn``
    context, so construction is safe under live reader threads) with the
    snapshot-shipping dispatcher described in the module docstring.
    One batch runs at a time (an internal mutex serializes concurrent
    :meth:`serve` calls); the session's RWLock already serializes
    batches against updates.

    Unlike the PR 5 pool, worker failure does **not** close the pool:
    the supervisor restarts workers under its budget, queries are
    retried, and permanent failures surface as per-query
    :class:`~repro.serve.supervisor.ServeFailure` slots.  Only budget
    exhaustion changes the pool's shape — it flips :attr:`degraded` and
    finishes in-parent.
    """

    def __init__(self, workers: int, *, restart_budget: int | None = None) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = WorkerSupervisor(_serve_worker, workers, restart_budget=restart_budget)
        self._lock = threading.Lock()
        #: Last token shipped to each worker connection.
        self._worker_tokens: dict[Connection, ServeToken] = {}
        self._snapshot_token: ServeToken | None = None
        self._snapshot_blob: bytes | None = None
        #: The injector shipped with the last batch; workers only learn
        #: about a new one through a snapshot message, so an identity
        #: change retires the shipped snapshots (see :meth:`serve`).
        self._last_injector: FaultInjector | None = None
        self.closed = False
        #: Set when the restart budget ran out and the pool fell back to
        #: in-parent evaluation; the session reads this to route future
        #: ``auto`` batches to threads.
        self.degraded = False
        #: Lifetime shipping accounting (the storage bench reads these):
        #: bytes actually sent to install engines in workers — pickled
        #: blobs for snapshot ships, just the path string for map ships.
        self.shipped_bytes = 0
        self.snapshot_ships = 0
        self.map_ships = 0
        #: Batches in which a worker failed to open a shipped store path
        #: (corrupt or missing generation).  The session reads this after
        #: every mapped batch and re-spools a fresh generation chain when
        #: it grew — see ``GraphDatabase._serve_batch_process``.
        self.map_failures = 0

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def _snapshot(self, engine: object, token: ServeToken) -> bytes:
        """The pickled snapshot for ``token``, serialized at most once."""
        if self._snapshot_token != token or self._snapshot_blob is None:
            self._snapshot_blob = snapshot_bytes(engine)
            self._snapshot_token = token
        return self._snapshot_blob

    def invalidate(self) -> None:
        """Retire every shipped snapshot (the update-side hook).

        Called by ``GraphDatabase.update()`` under the exclusive lock —
        after in-flight readers drained — so the next batch re-ships
        fresh snapshots even before any token comparison runs, and the
        stale blob's memory is released immediately.
        """
        self._snapshot_token = None
        self._snapshot_blob = None
        self._worker_tokens.clear()

    @property
    def restarts_used(self) -> int:
        """Worker restarts consumed over the pool's lifetime (chaos bench)."""
        return self._pool.restarts_used

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def serve(
        self,
        engine: object,
        token: ServeToken,
        queries: Sequence[CPQ],
        limit: int | None = None,
        *,
        timeout: float | None = None,
        retries: int = DEFAULT_RETRIES,
        injector: FaultInjector | None = None,
        store_path: str | None = None,
    ) -> list[ServeOutcome | ServeFailure]:
        """Evaluate ``queries`` across the workers; outcomes keep input order.

        ``store_path`` switches engine shipping to the zero-copy path:
        workers that need a (re-)install receive ``(store_path, token)``
        and ``mmap``-open the store generation themselves — ``engine``
        is then only used for the degraded in-parent tail.  Without it,
        workers receive the pickled snapshot as before.

        A work-queue dispatcher: every idle worker holds exactly one
        in-flight query, finished workers immediately draw the next one,
        so a slow query never stalls the rest of the batch behind a
        static pre-partition.  Each slot of the returned list is either
        a ``(answers, stats)`` outcome or a
        :class:`~repro.serve.supervisor.ServeFailure` for a query that
        exhausted its ``retries`` budget; the caller
        (``GraphDatabase.serve_batch``) decides whether failures raise
        or surface as partial results.

        ``timeout`` is a hard per-query deadline: a worker that has not
        replied within it is killed and restarted, and the query retried
        (each expiry consumes an attempt) before surfacing as
        :class:`~repro.errors.QueryTimeoutError`.
        """
        with self._lock:
            if self.closed:
                raise ServingError("serving pool is closed")
            if injector is not self._last_injector:
                # Workers adopt an injector (or drop one) only through a
                # snapshot message — force a re-ship on the next dispatch
                # so a warm pool cannot silently ignore a chaos run.
                self._worker_tokens.clear()
                self._last_injector = injector
            try:
                return self._serve_locked(
                    engine, token, queries, limit, timeout, retries, injector, store_path
                )
            except BaseException:
                # Per-query failures never land here (they become
                # ServeFailure slots); anything that does escape means
                # the dispatch protocol itself is broken mid-exchange,
                # and a half-spoken pipe cannot be rejoined.
                self._close_locked()
                raise

    def _serve_locked(
        self,
        engine: object,
        token: ServeToken,
        queries: Sequence[CPQ],
        limit: int | None,
        timeout: float | None,
        retries: int,
        injector: FaultInjector | None,
        store_path: str | None,
    ) -> list[ServeOutcome | ServeFailure]:
        jobs: deque[_Job] = deque((index, query, 0) for index, query in enumerate(queries))
        outcomes: list[ServeOutcome | ServeFailure | None] = [None] * len(queries)
        #: conn -> (index, query, attempts consumed, deadline or None)
        in_flight: dict[Connection, tuple[int, CPQ, int, float | None]] = {}
        if timeout is None and injector is not None and injector.rate("worker.drop") > 0:
            # A dropped reply with no deadline would hang the batch.
            timeout = CHAOS_DROP_TIMEOUT

        def resolve(index: int, query: CPQ, attempts: int, error: ServingError) -> None:
            """Retry ``query`` with backoff, or record its permanent failure."""
            if attempts <= retries:
                time.sleep(min(RETRY_BACKOFF_BASE * (2 ** (attempts - 1)), RETRY_BACKOFF_CAP))
                jobs.append((index, query, attempts))
                if injector is not None:
                    injector.note("query.retried")
            else:
                outcomes[index] = ServeFailure(index, error, attempts)
                if injector is not None:
                    injector.note("query.failed")

        def worker_down(conn: Connection, reason: str) -> None:
            """Replace a dead worker and re-dispatch its in-flight query."""
            slot = self._pool.slot_for(conn)
            self._worker_tokens.pop(conn, None)
            replacement = self._pool.replace(slot)
            if injector is not None:
                injector.note("worker.restarted" if replacement else "worker.retired")
            job = in_flight.pop(conn, None)
            if job is not None:
                index, query, attempts, _ = job
                resolve(
                    index,
                    query,
                    attempts,
                    ServingError(
                        reason,
                        worker_id=slot.worker_id,
                        query_index=index,
                        attempts=attempts,
                    ),
                )

        def dispatch(conn: Connection, job: _Job) -> None:
            index, query, attempts = job
            shipping = self._worker_tokens.get(conn) != token
            if shipping:
                if store_path is not None:
                    self.shipped_bytes += len(store_path.encode("utf-8"))
                    self.map_ships += 1
                    conn.send(("map", store_path, token, injector))
                else:
                    blob = self._snapshot(engine, token)
                    self.shipped_bytes += len(blob)
                    self.snapshot_ships += 1
                    conn.send(("snapshot", blob, token, injector))
                self._worker_tokens[conn] = token
            conn.send(("query", index, query, limit, token))
            deadline = None
            if timeout is not None:
                # The install grace is retired by the worker's
                # ``snapshot_ok`` ack, which resets the deadline to the
                # plain timeout.
                grace = SNAPSHOT_INSTALL_GRACE if shipping else 0.0
                deadline = time.monotonic() + timeout + grace
            in_flight[conn] = (index, query, attempts + 1, deadline)

        while jobs or in_flight:
            # Fill every idle live worker from the queue.
            for slot in self._pool.live_slots():
                if not jobs:
                    break
                if slot.connection in in_flight:
                    continue
                job = jobs.popleft()
                try:
                    dispatch(slot.connection, job)
                except OSError:
                    # The worker died between batches (or mid-handshake);
                    # the dispatch was never received, so re-queue at no
                    # attempt cost and replace the worker.
                    jobs.appendleft(job)
                    worker_down(
                        slot.connection, "serving worker exited unexpectedly (killed or crashed)"
                    )
            if not in_flight:
                if jobs and not self._pool.live_slots():
                    self._finish_in_parent(engine, jobs, outcomes, limit, injector)
                continue
            deadlines = [d for (_, _, _, d) in in_flight.values() if d is not None]
            wait_for = None if not deadlines else max(0.0, min(deadlines) - time.monotonic())
            ready = wait(list(in_flight), wait_for)
            if not ready:
                self._expire_deadlines(in_flight, timeout, resolve, worker_down)
                continue
            for ready_conn in ready:
                conn = cast(Connection, ready_conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    worker_down(conn, "serving worker exited unexpectedly (killed or crashed)")
                    continue
                if message[0] == "snapshot_ok":
                    # The worker finished installing a (re-)shipped
                    # snapshot: restart the in-flight query's deadline —
                    # unpickling a large engine must not eat the query's
                    # budget, or a tight deadline would kill-loop every
                    # worker after an update moved the serve token.
                    job = in_flight.get(conn)
                    if job is not None and timeout is not None:
                        index, query, attempts, _ = job
                        in_flight[conn] = (index, query, attempts, time.monotonic() + timeout)
                    continue
                index, query, attempts, _ = in_flight.pop(conn)
                kind = message[0]
                if kind == "result":
                    outcomes[message[1]] = (message[2], message[3])
                elif kind == "stale":
                    # The worker-side token check tripped: its snapshot
                    # predates ours.  Forget what we think we shipped,
                    # re-queue at no attempt cost; the re-dispatch
                    # re-ships the snapshot first.
                    self._worker_tokens.pop(conn, None)
                    jobs.appendleft((index, query, attempts - 1))
                elif kind == "map_error":
                    # The worker could not mmap-open the shipped store
                    # generation (missing or corrupt file, broken delta
                    # chain).  Correctness never depends on the store:
                    # demote the *batch* to pickled-snapshot shipping so
                    # the retry lands on a working install path, and give
                    # the caller a typed cause for any slot that already
                    # spent its budget.  The session checks
                    # :attr:`map_failures` afterwards and re-spools a
                    # fresh generation chain for the next batch.
                    _, _, bad_path, why, trace = message
                    self._worker_tokens.pop(conn, None)
                    self.map_failures += 1
                    store_path = None
                    if injector is not None:
                        injector.note("store.map_failed")
                    error = ServingError(
                        f"serving worker could not open mapped index {bad_path}:\n{trace}",
                        worker_id=self._pool.slot_for(conn).worker_id,
                        query_index=index,
                        attempts=attempts,
                    )
                    error.__cause__ = CorruptIndexError(bad_path, why)
                    resolve(index, query, attempts, error)
                else:
                    reason = message[2] if kind == "error" else f"bad message {kind!r}"
                    worker_id = self._pool.slot_for(conn).worker_id
                    resolve(
                        index,
                        query,
                        attempts,
                        ServingError(
                            f"serving worker failed on query {query!r}:\n{reason}",
                            worker_id=worker_id,
                            query_index=index,
                            attempts=attempts,
                        ),
                    )
        # Every job was dispatched and resolved to an outcome or failure.
        return cast("list[ServeOutcome | ServeFailure]", outcomes)

    def _expire_deadlines(
        self,
        in_flight: dict[Connection, tuple[int, CPQ, int, float | None]],
        timeout: float | None,
        resolve: Callable[[int, CPQ, int, ServingError], None],
        worker_down: Callable[[Connection, str], None],
    ) -> None:
        """Kill and replace workers whose in-flight query blew its deadline."""
        now = time.monotonic()
        for conn, (index, query, attempts, deadline) in list(in_flight.items()):
            if deadline is None or deadline > now:
                continue
            # The worker is hung (or the reply was dropped): the only
            # safe recovery is to kill the process — its pipe may later
            # emit a reply for the abandoned dispatch, which a fresh
            # process cannot.
            worker_id = self._pool.slot_for(conn).worker_id
            del in_flight[conn]
            worker_down(conn, "deadline bookkeeping")
            resolve(
                index,
                query,
                attempts,
                QueryTimeoutError(
                    timeout=timeout,
                    worker_id=worker_id,
                    query_index=index,
                    attempts=attempts,
                ),
            )

    def _finish_in_parent(
        self,
        engine: object,
        jobs: deque[_Job],
        outcomes: list[ServeOutcome | ServeFailure | None],
        limit: int | None,
        injector: FaultInjector | None,
    ) -> None:
        """Degraded tail: no live workers remain, evaluate serially here.

        The answers are the serial answers by construction (same engine,
        same ``evaluate``); only the parallelism is lost.  Deadlines
        cannot be enforced in-parent (there is no process to kill), so
        the degraded tail runs without them — documented in
        ``docs/robustness.md``.
        """
        self.degraded = True
        if injector is not None:
            injector.note("pool.degraded")
        while jobs:
            index, query, attempts = jobs.popleft()
            try:
                run = ExecutionStats()
                evaluate = engine.evaluate  # type: ignore[attr-defined]
                answers = evaluate(query, stats=run, limit=limit)
                outcomes[index] = (frozenset(answers), run)
            except Exception as exc:  # noqa: PERF203 - per-query fault isolation
                error = ServingError(
                    f"query evaluation failed in degraded (in-parent) serving: {exc}",
                    query_index=index,
                    attempts=attempts + 1,
                )
                error.__cause__ = exc
                outcomes[index] = ServeFailure(index, error, attempts + 1)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _close_locked(self) -> None:
        if not self.closed:
            self.closed = True
            for slot in self._pool.live_slots():
                with contextlib.suppress(OSError):
                    slot.connection.send(("stop",))
            self._pool.close()
            self.invalidate()

    def close(self) -> None:
        """Stop and join every worker; idempotent."""
        with self._lock:
            self._close_locked()

    def __enter__(self) -> ProcessServingPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "degraded" if self.degraded else "open"
        return f"ProcessServingPool(workers={self.workers}, {state})"
