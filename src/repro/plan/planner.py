"""CPQ expression → logical plan translation (Sec. IV-D).

The planner applies the paper's three optimizations:

1. ``q ∘ id = q`` — literal identity factors in joins are removed;
2. only ``q ∩ id`` is handled as IDENTITY — a conjunction with a literal
   ``id`` is fused into the sibling operator's ``with_identity`` flag
   (Algorithm 4's \\*ID variants);
3. maximal label-sequence chains are recognized and split into LOOKUP
   leaves of length at most ``k`` (Fig. 4: ``l1∘l2∘l3`` with ``k = 2``
   becomes ``Lookup(⟨l1,l2⟩) ⋈ Lookup(⟨l3⟩)``).

Splitting is pluggable: CPQx splits greedily at length ``k``; iaCPQx
splits at the boundaries of its interest set (Sec. V-B: "we divide label
sequences into sub-label sequences if the label sequences are not included
in the given label sequences").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import QueryDiameterError, QuerySyntaxError
from repro.graph.labels import LabelSeq
from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup, PlanNode
from repro.query.ast import CPQ, Conjunction, EdgeLabel, Identity, Join, as_label_sequence

#: A splitter maps a label sequence to LOOKUP-able chunks (len ≥ 1 each).
Splitter = Callable[[LabelSeq], list[LabelSeq]]


def greedy_splitter(k: int) -> Splitter:
    """Split a sequence into prefix chunks of length ``k`` (the default)."""
    if k < 1:
        raise QueryDiameterError(f"index parameter k must be >= 1, got {k}")

    def split(seq: LabelSeq) -> list[LabelSeq]:
        return [seq[i:i + k] for i in range(0, len(seq), k)]

    return split


def interest_splitter(interests: frozenset[LabelSeq], k: int) -> Splitter:
    """Split into the longest prefixes found in ``interests``.

    Falls back to single labels, which are always interests by
    construction (Sec. V-A: all length-1 sequences are in ``Lq``).
    """
    max_len = max((len(seq) for seq in interests), default=1)
    limit = min(k, max_len)

    def split(seq: LabelSeq) -> list[LabelSeq]:
        chunks: list[LabelSeq] = []
        position = 0
        while position < len(seq):
            take = 1
            for width in range(min(limit, len(seq) - position), 1, -1):
                if seq[position:position + width] in interests:
                    take = width
                    break
            chunks.append(seq[position:position + take])
            position += take
        return chunks

    return split


def build_plan(query: CPQ, splitter: Splitter) -> PlanNode:
    """Translate a resolved CPQ expression into a logical plan."""
    stripped = _strip_identity_joins(query)
    return _build(stripped, splitter, with_identity=False)


def _strip_identity_joins(query: CPQ) -> CPQ:
    """Apply ``q ∘ id = q`` bottom-up."""
    if isinstance(query, Join):
        left = _strip_identity_joins(query.left)
        right = _strip_identity_joins(query.right)
        if isinstance(left, Identity):
            return right
        if isinstance(right, Identity):
            return left
        return Join(left, right)
    if isinstance(query, Conjunction):
        return Conjunction(
            _strip_identity_joins(query.left),
            _strip_identity_joins(query.right),
        )
    return query


def _build(query: CPQ, splitter: Splitter, with_identity: bool) -> PlanNode:
    if isinstance(query, Identity):
        return IdentityAll()
    sequence = as_label_sequence(query)
    if sequence is not None:
        return _sequence_plan(sequence, splitter, with_identity)
    if isinstance(query, Conjunction):
        if isinstance(query.left, Identity) and isinstance(query.right, Identity):
            return IdentityAll()
        if isinstance(query.right, Identity):
            return _build(query.left, splitter, with_identity=True)
        if isinstance(query.left, Identity):
            return _build(query.right, splitter, with_identity=True)
        return ConjNode(
            _build(query.left, splitter, with_identity=False),
            _build(query.right, splitter, with_identity=False),
            with_identity=with_identity,
        )
    if isinstance(query, Join):
        return JoinNode(
            _build(query.left, splitter, with_identity=False),
            _build(query.right, splitter, with_identity=False),
            with_identity=with_identity,
        )
    if isinstance(query, EdgeLabel):  # unreachable: handled by as_label_sequence
        return Lookup((query.label_id(),), with_identity)
    raise QuerySyntaxError(f"cannot plan CPQ node {query!r}")


def _sequence_plan(seq: LabelSeq, splitter: Splitter, with_identity: bool) -> PlanNode:
    chunks = splitter(seq)
    if not chunks or any(not chunk for chunk in chunks):
        raise QueryDiameterError(f"splitter produced invalid chunks for {seq}")
    if tuple(chunk for chunk in chunks) and sum(len(c) for c in chunks) != len(seq):
        raise QueryDiameterError(f"splitter lost labels for {seq}")
    if len(chunks) == 1:
        return Lookup(chunks[0], with_identity)
    plan: PlanNode = Lookup(chunks[0])
    for chunk in chunks[1:-1]:
        plan = JoinNode(plan, Lookup(chunk))
    return JoinNode(plan, Lookup(chunks[-1]), with_identity=with_identity)
