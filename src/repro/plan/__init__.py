"""Logical plans and the CPQ planner (Sec. IV-D)."""

from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup, PlanNode, plan_lookups
from repro.plan.optimizer import (
    disable_optimizer,
    enable_optimizer,
    index_estimator,
    optimal_split,
    optimizing_splitter,
)
from repro.plan.planner import Splitter, build_plan, greedy_splitter, interest_splitter

__all__ = [
    "ConjNode",
    "IdentityAll",
    "JoinNode",
    "Lookup",
    "PlanNode",
    "Splitter",
    "build_plan",
    "disable_optimizer",
    "enable_optimizer",
    "greedy_splitter",
    "index_estimator",
    "interest_splitter",
    "optimal_split",
    "optimizing_splitter",
    "plan_lookups",
]
