"""Logical query-plan nodes (the parse tree of Sec. IV-D, Fig. 4).

A plan is a tree of four node kinds mirroring the paper's operations:

* :class:`Lookup` — fetch the result of a label sequence of length ≤ k
  from the index (leaf);
* :class:`JoinNode` — relational composition of two sub-plans;
* :class:`ConjNode` — intersection of two sub-plans;
* :class:`IdentityAll` — the bare ``id`` query (all loops in the graph).

Each non-leaf node carries a ``with_identity`` flag implementing the
paper's fused operators (LOOK UP ID, JOIN ID, CONJUNCTION ID in
Algorithm 4): a trailing ``∩ id`` is executed inside the operator instead
of materializing non-loop pairs first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.labels import LabelSeq


class PlanNode:
    """Abstract base of plan nodes."""

    __slots__ = ()

    def describe(self) -> str:
        """Single-line plan rendering for logs and tests."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Lookup(PlanNode):
    """Index lookup of a label sequence (LOOK UP / LOOK UP ID)."""

    seq: LabelSeq
    with_identity: bool = False

    def describe(self) -> str:
        suffix = "∩id" if self.with_identity else ""
        return f"Lookup({list(self.seq)}){suffix}"


@dataclass(frozen=True, slots=True)
class JoinNode(PlanNode):
    """Composition of two sub-plans (JOIN / JOIN ID)."""

    left: PlanNode
    right: PlanNode
    with_identity: bool = False

    def describe(self) -> str:
        suffix = "∩id" if self.with_identity else ""
        return f"Join({self.left.describe()}, {self.right.describe()}){suffix}"


@dataclass(frozen=True, slots=True)
class ConjNode(PlanNode):
    """Intersection of two sub-plans (CONJUNCTION / CONJUNCTION ID)."""

    left: PlanNode
    right: PlanNode
    with_identity: bool = False

    def describe(self) -> str:
        suffix = "∩id" if self.with_identity else ""
        return f"Conj({self.left.describe()}, {self.right.describe()}){suffix}"


@dataclass(frozen=True, slots=True)
class IdentityAll(PlanNode):
    """The bare ``id`` query: every vertex paired with itself."""

    def describe(self) -> str:
        return "IdentityAll"


def plan_lookups(plan: PlanNode) -> list[Lookup]:
    """All Lookup leaves of a plan, left to right (testing helper)."""
    if isinstance(plan, Lookup):
        return [plan]
    if isinstance(plan, (JoinNode, ConjNode)):
        return plan_lookups(plan.left) + plan_lookups(plan.right)
    return []
