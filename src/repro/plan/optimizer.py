"""Cost-based label-sequence splitting (the Sec. IV-D optimization hook).

The paper splits label sequences longer than ``k`` greedily into prefix
chunks and notes "further query optimization is an interesting rich topic
for future research".  This module implements the first such optimization:
**cardinality-aware splitting** — choose the chunk boundaries that
minimize the estimated materialized size of the join chain, using the
index's own statistics as the estimator.

For a sequence of length ``n`` and bound ``k``, the dynamic program
considers every split of the suffix ``seq[i:]`` into a first chunk of
length 1..k followed by an optimal split of the rest, scoring a split by
the sum of the estimated result sizes of its chunks (a proxy for join
input cost).  ``O(n·k)`` states, trivially cheap next to execution.

Correctness is split-independent — any split evaluates to the same answer
(join associativity) — so the optimizer can never change results, only
costs; the test-suite checks both.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable

from repro.graph.labels import LabelSeq
from repro.plan.planner import Splitter, greedy_splitter

#: An estimator maps a candidate chunk to an estimated result size.
CardinalityEstimator = Callable[[LabelSeq], int]


def index_estimator(index) -> CardinalityEstimator:
    """Estimate a chunk's result size from an index's own lookup.

    For class-based indexes (CPQx, iaCPQx) the estimate is the summed
    class sizes; for pair-based indexes it is the posting length.  Unknown
    chunks (not indexed / outside interests) are treated as very large so
    the optimizer avoids them when alternatives exist.  Estimates are
    memoized per chunk — planning must stay negligible next to execution.
    """
    cache: dict[LabelSeq, int] = {}

    def estimate(chunk: LabelSeq) -> int:
        cached = cache.get(chunk)
        if cached is not None:
            return cached
        try:
            result = index.lookup(chunk)
        except Exception:
            cache[chunk] = 1 << 30
            return 1 << 30
        if result.classes is None:
            size = len(result.pairs or ())
        elif hasattr(index, "class_size"):
            size = sum(index.class_size(class_id) for class_id in result.classes)
        else:
            size = sum(
                len(index.pairs_of_class(class_id))
                for class_id in result.classes
            )
        cache[chunk] = size
        return size

    return estimate


def optimal_split(
    seq: LabelSeq,
    k: int,
    estimate: CardinalityEstimator,
    allowed: Callable[[LabelSeq], bool] | None = None,
) -> list[LabelSeq]:
    """Minimum-total-cardinality split of ``seq`` into chunks of length ≤ k.

    ``allowed`` restricts usable chunks (iaCPQx: multi-label chunks must be
    interests); single-label chunks are always allowed as the fallback.
    """
    n = len(seq)
    best_cost: list[float] = [float("inf")] * (n + 1)
    best_take: list[int] = [0] * (n + 1)
    best_cost[n] = 0.0
    for start in range(n - 1, -1, -1):
        for take in range(1, min(k, n - start) + 1):
            chunk = seq[start:start + take]
            if take > 1 and allowed is not None and not allowed(chunk):
                continue
            cost = estimate(chunk) + best_cost[start + take]
            if cost < best_cost[start]:
                best_cost[start] = cost
                best_take[start] = take
    chunks: list[LabelSeq] = []
    position = 0
    while position < n:
        take = best_take[position] or 1
        chunks.append(seq[position:position + take])
        position += take
    return chunks


def optimizing_splitter(
    index,
    k: int,
    allowed: Callable[[LabelSeq], bool] | None = None,
) -> Splitter:
    """A :class:`Splitter` that picks cost-optimal chunk boundaries."""
    estimate = index_estimator(index)

    def split(seq: LabelSeq) -> list[LabelSeq]:
        if len(seq) <= k and (allowed is None or len(seq) == 1 or allowed(seq)):
            return [seq]
        return optimal_split(seq, k, estimate, allowed)

    return split


def enable_optimizer(index) -> None:
    """Switch an index engine to cardinality-aware splitting in place.

    Works for CPQx (all chunks allowed) and iaCPQx (multi-label chunks
    restricted to the interest set).  ``disable_optimizer`` restores the
    engine's stock splitter.
    """
    interests = getattr(index, "interests", None)
    allowed = None if interests is None else (lambda chunk: chunk in interests)
    optimized = optimizing_splitter(index, index.k, allowed)
    index.splitter = lambda: optimized  # type: ignore[method-assign]


def disable_optimizer(index) -> None:
    """Undo :func:`enable_optimizer` (restore the class's splitter)."""
    with contextlib.suppress(AttributeError):
        del index.splitter


def split_cost(chunks: list[LabelSeq], estimate: CardinalityEstimator) -> int:
    """Total estimated cardinality of a split (exposed for tests/benches)."""
    return sum(estimate(chunk) for chunk in chunks)


def greedy_split_cost(seq: LabelSeq, k: int, estimate: CardinalityEstimator) -> int:
    """Cost of the paper's default greedy split (baseline for the ablation)."""
    return split_cost(greedy_splitter(k)(seq), estimate)
