"""Sharded parallel index construction along the source-vertex axis.

The paper reports CPQx construction as the dominant cost (Table IV), and
the per-source batched ``L≤k`` derivation of
:func:`repro.core.paths.sequence_targets_from_source` made every builder
in this package embarrassingly parallel along one axis: **the interned
source-vertex id**.  Each s-t pair, label-sequence posting, and
representative ``L≤k`` derivation is anchored at exactly one source, so
partitioning the source ids partitions the work with no shared state —
the same axis secondary-memory RDF indexing shards on.

The scheme:

1. the parent partitions sorted source ids round-robin into
   ``workers × SHARDS_PER_WORKER`` shards (round-robin balances degree
   skew better than contiguous ranges);
2. a ``multiprocessing`` pool receives the graph once per worker
   (pickled through the pool initializer, the interned adjacency
   snapshot rebuilt worker-side) and maps the shard tasks;
3. workers ship back per-shard results keyed by class id or label
   sequence, with pair codes packed in ``array('q')`` columns — flat
   64-bit buffers that pickle to raw bytes, not object graphs;
4. the parent merges: shards anchor disjoint source ids, so per-key
   columns concatenate duplicate-free and one C-level sort over the
   pre-sorted runs restores the canonical sorted-column form.

Merging is deterministic, so a sharded build is **pair-for-pair
identical** to the serial build — asserted by ``bench-concurrent`` and
property-tested in ``tests/test_parallel_build.py``.  Engines opt in
through a ``workers`` build argument (default 1 = serial, ``"auto"`` =
one worker per CPU), plumbed through
:meth:`repro.db.GraphDatabase.build_index`, the engine registry, and the
CLI.

Workers select the same kernel backend as the parent: backend choice
is exported through ``os.environ[REPRO_KERNELS]``
(:func:`repro.core.kernels.set_backend`), which both spawn- and
fork-started children read at their own ``repro.core.kernels`` import —
a sharded build never mixes merge-loop and vectorized shards by
accident.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
from array import array
from collections.abc import Callable, Iterable, Iterator, Sequence
from contextlib import contextmanager
from multiprocessing.connection import Connection
from typing import TypeVar

from repro.core import kernels
from repro.core.pairset import PairSet
from repro.core.paths import sequence_codes_from_sources, sequence_targets_from_source
from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph
from repro.graph.interner import ID_BITS, InternedView
from repro.graph.labels import LabelSeq

#: Shards handed out per worker — over-decomposition so a worker that
#: drew a low-degree shard picks up another instead of idling.
SHARDS_PER_WORKER = 4


def _start_method() -> str:
    """Pool start method for a :func:`parallel_map` build, chosen per call.

    ``fork`` ships the parent's state to workers for free, but forking
    a multi-threaded process is a deadlock hazard (and deprecated on
    Python 3.12+) — e.g. an ``update()``-triggered parallel rebuild
    while ``serve_batch`` reader threads are alive.  In that case fall
    back to ``spawn`` (always available), which re-imports the package
    in each worker and pickles the graph through the initializer.

    The thread-count check is inherently racy (a reader thread may start
    between the check and the fork), so this heuristic is only used for
    the one-shot build pools, which sessions construct under the
    exclusive side of their RWLock — never with readers in flight.
    :class:`WorkerPool`, which *is* constructed under live readers by
    the process-serving path, always uses ``spawn`` instead.
    """
    if (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    ):
        return "fork"
    return "spawn"


_T = TypeVar("_T")


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` build argument to a positive int.

    ``None``/``1`` mean serial, ``"auto"`` means one worker per CPU.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise IndexBuildError(f"workers must be a positive int or 'auto', got {workers!r}")
        return os.cpu_count() or 1
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise IndexBuildError(f"workers must be a positive int or 'auto', got {workers!r}")
    return workers


def shard_round_robin(items: Sequence[_T], num_shards: int) -> list[list[_T]]:
    """Deal ``items`` round-robin into at most ``num_shards`` shards.

    Input order should be deterministic (callers pass sorted ids);
    empty shards are dropped so every task does work.
    """
    if num_shards < 1:
        raise IndexBuildError(f"num_shards must be >= 1, got {num_shards}")
    shards = [list(items[offset::num_shards]) for offset in range(num_shards)]
    return [shard for shard in shards if shard]


def merge_code_columns(parts: Iterable[array]) -> array:
    """Concatenate disjoint shard columns and sort into one column.

    Shards anchor disjoint source ids, so the concatenation is
    duplicate-free; the single sort (C Timsort over pre-sorted runs, or
    the numpy backend's vectorized twin) restores the canonical form
    :class:`PairSet` stores.
    """
    return kernels.concat_sorted(list(parts))


# ---------------------------------------------------------------------------
# worker-side state and task functions (top level: they must pickle)
# ---------------------------------------------------------------------------

#: The build graph, installed once per worker by the pool initializer.
_WORKER_GRAPH: LabeledDigraph | None = None

#: The chaos-run fault injector, if any (``None`` in production builds).
_WORKER_INJECTOR: object | None = None


def _init_worker(graph: LabeledDigraph, injector: object | None = None) -> None:
    global _WORKER_GRAPH, _WORKER_INJECTOR
    _WORKER_GRAPH = graph
    _WORKER_INJECTOR = injector


def _worker_view() -> InternedView:
    if _WORKER_GRAPH is None:  # pragma: no cover - initializer always ran
        raise IndexBuildError("parallel build worker has no graph installed")
    return _WORKER_GRAPH.interned()


def derive_class_sequences(
    view: InternedView,
    k: int,
    anchored_by_source: Iterable[tuple[int, Iterable[tuple[int, int]]]],
) -> dict[int, frozenset[LabelSeq]]:
    """CPQx representative ``L≤k`` derivation (Algorithm 2's loop).

    ``anchored_by_source`` lists, per source vertex, the classes whose
    representative pair is anchored there with the representative's
    target id.  One per-source BFS table serves every class anchored at
    that source (Def. 4.2 uniformity).  The single implementation
    behind both the serial build (:meth:`CPQxIndex.build`) and the
    sharded workers — the sharded == serial contract depends on them
    never diverging.
    """
    sequences: dict[int, frozenset[LabelSeq]] = {}
    for source, anchored in anchored_by_source:
        table = sequence_targets_from_source(view, source, k)
        rows = table.items()
        for class_id, target in anchored:
            sequences[class_id] = frozenset(seq for seq, ids in rows if target in ids)
    return sequences


def _class_sequences_shard(
    task: tuple[int, list[tuple[int, list[tuple[int, int]]]]],
) -> dict[int, tuple[LabelSeq, ...]]:
    """Worker wrapper over :func:`derive_class_sequences` for one shard.

    Task: ``(k, [(source, [(class_id, target), ...]), ...])``; the
    frozensets are shipped back as tuples (smaller pickles).
    """
    k, anchored_by_source = task
    derived = derive_class_sequences(_worker_view(), k, anchored_by_source)
    return {class_id: tuple(seqs) for class_id, seqs in derived.items()}


def _sequence_postings_shard(
    task: tuple[int, list[int]],
) -> dict[LabelSeq, array]:
    """Path-index enumeration for one shard of source ids.

    Task: ``(k, sources)``.  Returns sequence → column of pair codes
    anchored at the shard's sources (each source's targets are a set,
    and sources are disjoint across shards, so columns concatenate
    duplicate-free in the parent).
    """
    k, sources = task
    view = _worker_view()
    columns: dict[LabelSeq, array] = {}
    for source in sources:
        v_high = source << ID_BITS
        for seq, targets in sequence_targets_from_source(view, source, k).items():
            column = columns.get(seq)
            if column is None:
                column = columns[seq] = array("q")
            # Shard-local order is irrelevant: merge_code_columns sorts
            # and dedupes every merged column before assembly.
            column.extend(v_high | target for target in targets)  # repro-lint: disable=RPR004
    return columns


def _interest_relations_shard(
    task: tuple[tuple[LabelSeq, ...], list[int]],
) -> dict[LabelSeq, array]:
    """iaCPQx/iaPath relation sweep for one shard of source ids.

    Task: ``(interest sequences, sources)``.  Returns each interest's
    relation column restricted to the shard's sources, via the same
    traversal the serial sweep uses
    (:func:`repro.core.paths.sequence_codes_from_sources`).
    """
    seqs, sources = task
    view = _worker_view()
    out: dict[LabelSeq, array] = {}
    for seq in seqs:
        column = sequence_codes_from_sources(view, sources, seq)
        if column:
            out[seq] = column
    return out


def _run_shard(payload: tuple[Callable, object]) -> tuple[str, object]:
    """Worker-side wrapper: run one shard task, ship a tagged outcome.

    A shard failure must not abort the whole build — the PR 7
    fault-tolerance contract is that a fault costs one shard one retry,
    never the build — so exceptions are tagged (``("err", traceback)``)
    instead of propagating through ``Pool.map``, and the parent decides
    between in-pool retry and serial recomputation
    (:func:`parallel_map`).  Under a chaos-run injector the
    ``build.shard`` site fires here, upstream of the real task.
    """
    import traceback

    worker, task = payload
    try:
        if _WORKER_INJECTOR is not None:
            _WORKER_INJECTOR.fail("build.shard")  # type: ignore[attr-defined]
        return ("ok", worker(task))
    except Exception:
        return ("err", traceback.format_exc())


def _recompute_serially(
    graph: LabeledDigraph,
    worker: Callable,
    task: object,
    shard: int,
    attempts: int,
    reason: object,
) -> object:
    """Last-resort serial recomputation of one failed shard, in-parent.

    Installs the graph under the worker-state global the shard task
    functions read (restoring it afterwards) and runs the task with no
    fault injection — the recovery of last resort must not itself be
    chaos-tested away.  Since the task function is the same code the
    pool ran, the recomputed shard is value-identical to a successful
    parallel run, preserving the sharded == serial fingerprint contract.
    """
    global _WORKER_GRAPH, _WORKER_INJECTOR
    previous_graph, previous_injector = _WORKER_GRAPH, _WORKER_INJECTOR
    _WORKER_GRAPH, _WORKER_INJECTOR = graph, None
    try:
        return worker(task)
    except Exception as exc:
        raise IndexBuildError(
            f"shard failed in the worker pool and its serial recomputation "
            f"also failed; pool-side failure was:\n{reason}",
            shard=shard,
            attempts=attempts + 1,
        ) from exc
    finally:
        _WORKER_GRAPH, _WORKER_INJECTOR = previous_graph, previous_injector


# ---------------------------------------------------------------------------
# parent-side drivers
# ---------------------------------------------------------------------------

#: In-pool re-dispatches per failed shard before the serial fallback.
SHARD_RETRIES = 1


def parallel_map(
    graph: LabeledDigraph,
    worker: Callable,
    tasks: list,
    workers: int,
) -> list:
    """Map shard ``tasks`` over a worker pool sharing ``graph``.

    The graph ships once per worker through the pool initializer (its
    interned snapshot is dropped from the pickle and rebuilt
    worker-side); results come back in task order, so downstream merges
    are deterministic.

    Fault tolerance (PR 7): tasks run through the tagged
    :func:`_run_shard` wrapper, so a shard that raises worker-side does
    not abort the build — it is retried in the pool
    (:data:`SHARD_RETRIES` times) and then recomputed serially in the
    parent, which by construction yields the same value a healthy worker
    would have (asserted fingerprint-identical by the chaos tests).
    Only a shard that fails *serially too* raises, as a structured
    :class:`~repro.errors.IndexBuildError` chaining the original
    worker-side traceback.
    """
    from repro.serve.faults import current_injector

    injector = current_injector()
    payloads = [(worker, task) for task in tasks]
    context = multiprocessing.get_context(_start_method())
    with context.Pool(
        processes=min(workers, len(tasks)) or 1,
        initializer=_init_worker,
        initargs=(graph, injector),
    ) as pool:
        tagged = pool.map(_run_shard, payloads)
        results: list = []
        for shard, (tag, value) in enumerate(tagged):
            attempts = 1
            while tag == "err" and attempts <= SHARD_RETRIES:
                if injector is not None:
                    injector.note("shard.retried")
                tag, value = pool.apply(_run_shard, (payloads[shard],))
                attempts += 1
            if tag == "err":
                if injector is not None:
                    injector.note("shard.serial_fallback")
                value = _recompute_serially(graph, worker, tasks[shard], shard, attempts, value)
            results.append(value)
        return results


class WorkerPool:
    """Persistent pipe-connected worker processes, safe under live readers.

    The reusable machinery behind both level-synchronized builds
    (:func:`shard_processes`, used by the parallel k-path-bisimulation
    refinement of :func:`repro.core.partition.compute_partition_codes`)
    and the process-based serving pool
    (:class:`repro.serve.ProcessServingPool`): one **persistent**
    process per task (each task ships once, through the process
    arguments) with a duplex pipe per worker, in task order, over which
    the caller runs its message exchange.

    ``target(task, connection)`` owns the child side; it must close the
    connection when done (and should ship failures through it — an
    unexpectedly closed pipe surfaces parent-side as ``EOFError``).

    The pool always uses the ``spawn`` start context, explicitly: it is
    constructed at arbitrary points of a session's life — including
    under live ``serve_batch`` reader threads — where forking a
    multi-threaded process would be a deadlock hazard, and any
    thread-count heuristic (see :func:`_start_method`) is racy.
    ``spawn`` re-imports the package in each worker and pickles the
    task through the process arguments, which is deterministic and
    fork-safe everywhere.

    :meth:`close` (or exiting the context manager) closes the parent
    pipe ends first, so workers still blocked in ``recv`` unblock with
    ``EOFError`` instead of deadlocking, then joins every process (and
    terminates stragglers after a grace period).
    """

    def __init__(
        self,
        target: Callable,
        tasks: Sequence[object],
        join_timeout: float = 10.0,
    ) -> None:
        self._join_timeout = join_timeout
        context = multiprocessing.get_context("spawn")
        #: One duplex parent-side connection per worker, in task order.
        self.connections: list[Connection] = []
        self._processes: list = []
        try:
            for task in tasks:
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(target=target, args=(task, child_end), daemon=True)
                process.start()
                child_end.close()
                self.connections.append(parent_end)
                self._processes.append(process)
        except Exception:  # pragma: no cover - spawn failure is environmental
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._processes)

    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return all(process.is_alive() for process in self._processes)

    def close(self) -> None:
        """Unblock, join, and (if need be) terminate every worker."""
        for connection in self.connections:
            with contextlib.suppress(OSError):  # close is best-effort
                connection.close()
        for process in self._processes:
            process.join(timeout=self._join_timeout)
        for process in self._processes:  # pragma: no cover - crash-path cleanup
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def shard_processes(
    worker: Callable,
    tasks: list,
) -> Iterator[list[Connection]]:
    """Persistent pipe-connected shard workers for level-synchronized maps.

    Where :func:`parallel_map` fits one-shot shard tasks, some
    algorithms — the parallel k-path-bisimulation refinement
    (:func:`repro.core.partition.compute_partition_codes`) — alternate
    per-level local work with a global merge, and re-shipping worker
    state every level would swamp the compute it saves.  A thin
    context-manager view over :class:`WorkerPool` yielding the duplex
    pipes, one per worker, in task order.
    """
    pool = WorkerPool(worker, tasks)
    try:
        yield pool.connections
    finally:
        pool.close()


def _enumeration_sources(view: InternedView) -> list[int]:
    """Live source ids with at least one extended out-edge, sorted."""
    out = view.out
    return [vid for vid in view.live_ids if out[vid]]


def derive_class_sequences_parallel(
    graph: LabeledDigraph,
    k: int,
    by_source: dict[int, list[tuple[int, int]]],
    workers: int,
) -> dict[int, frozenset[LabelSeq]]:
    """Sharded CPQx ``class_sequences`` derivation (Algorithm 2's loop).

    ``by_source`` groups ``(class_id, representative target)`` anchors
    by representative source, exactly as the serial builder does; the
    shards partition those groups.  Content-identical to the serial
    loop: each class's sequences come from the same per-source table.
    """
    anchored = sorted((source, anchors) for source, anchors in by_source.items())
    shards = shard_round_robin(anchored, min(workers * SHARDS_PER_WORKER, len(anchored)))
    results = parallel_map(graph, _class_sequences_shard, [(k, shard) for shard in shards], workers)
    merged: dict[int, frozenset[LabelSeq]] = {}
    for part in results:
        for class_id, seqs in part.items():
            merged[class_id] = frozenset(seqs)
    return merged


def enumerate_sequences_codes_parallel(
    graph: LabeledDigraph, k: int, workers: int
) -> dict[LabelSeq, PairSet]:
    """Sharded :func:`repro.core.paths.enumerate_sequences_codes`.

    Every (sequence, pair) posting is anchored at the pair's source
    vertex, so the union over per-source BFS tables equals the serial
    frontier-extension enumeration, pair for pair.
    """
    view = graph.interned()
    sources = _enumeration_sources(view)
    if not sources:
        return {}
    shards = shard_round_robin(sources, min(workers * SHARDS_PER_WORKER, len(sources)))
    parts = parallel_map(graph, _sequence_postings_shard, [(k, shard) for shard in shards], workers)
    columns: dict[LabelSeq, list[array]] = {}
    for part in parts:
        for seq, column in part.items():
            columns.setdefault(seq, []).append(column)
    interner = graph.interner
    return {
        seq: PairSet.from_sorted_codes(merge_code_columns(cols), interner)
        for seq, cols in columns.items()
    }


def interest_relations_parallel(
    graph: LabeledDigraph,
    interests: Iterable[LabelSeq],
    workers: int,
) -> dict[LabelSeq, array]:
    """Sharded per-interest relation sweep for the ia* builders.

    Returns each interest's full relation as a sorted code column —
    byte-identical to ``sequence_relation_codes(graph, seq).codes`` —
    assembled from per-shard columns restricted to disjoint source sets.
    """
    view = graph.interned()
    sources = _enumeration_sources(view)
    seqs = tuple(sorted(interests))
    if not sources or not seqs:
        return {}
    shards = shard_round_robin(sources, min(workers * SHARDS_PER_WORKER, len(sources)))
    parts = parallel_map(
        graph,
        _interest_relations_shard,
        [(seqs, shard) for shard in shards],
        workers,
    )
    columns: dict[LabelSeq, list[array]] = {}
    for part in parts:
        for seq, column in part.items():
            columns.setdefault(seq, []).append(column)
    return {seq: merge_code_columns(cols) for seq, cols in columns.items()}


# ---------------------------------------------------------------------------
# build-equivalence fingerprinting (bench + property tests)
# ---------------------------------------------------------------------------


def index_fingerprint(engine: object) -> tuple:
    """A canonical, id-independent fingerprint of a built index.

    Two builds of the same graph fingerprint equal iff they store the
    same postings: class-based engines compare the *set* of classes
    (member code column, uniform sequence set, loop flag) plus the
    sequence → member-columns map, so renumbered-but-identical class
    ids still compare equal; Path-family engines compare the sequence →
    code-column map directly.
    """
    entries = getattr(engine, "_entries", None)
    if entries is not None:  # Path / iaPath
        return (
            "path",
            engine.k,  # type: ignore[attr-defined]
            tuple(sorted((seq, tuple(stored.codes)) for seq, stored in entries.items())),
        )
    ic2p = getattr(engine, "_ic2p", None)
    if ic2p is None:
        raise IndexBuildError(f"cannot fingerprint engine {type(engine).__name__}")
    sequences = engine._class_sequences  # type: ignore[attr-defined]
    loops = engine._loop_classes  # type: ignore[attr-defined]
    classes = frozenset(
        (
            tuple(members.codes),
            tuple(sorted(sequences[class_id])),
            class_id in loops,
        )
        for class_id, members in ic2p.items()
    )
    il2c = frozenset(
        (seq, frozenset(tuple(ic2p[c].codes) for c in posted))
        for seq, posted in engine._il2c.items()  # type: ignore[attr-defined]
    )
    return ("classes", engine.k, classes, il2c)  # type: ignore[attr-defined]
