"""Query processing over path indexes (Algorithms 3 and 4).

The paper evaluates a plan bottom-up where every intermediate result is
either a set of **class identifiers** (cheap, the language-aware fast
path) or a set of **s-t pairs** (after a JOIN forces materialization).
:class:`Result` is that tagged union; :func:`execute_plan` is Algorithm 3;
the per-operator logic mirrors Algorithm 4:

* CONJUNCTION of two class-results intersects class-id sets without
  touching any pair (Prop. 4.1) — the paper's headline optimization;
* IDENTITY on class-results keeps only loop classes, decided per class
  (all pairs of a class agree on loop-ness, Def. 4.1 cond. 1);
* JOIN materializes both sides and composes them.

The executor is generic over a :class:`LookupProvider`, so one
implementation serves CPQx, iaCPQx, and the pair-returning engines
(Path, iaPath, BFS) — realizing the paper's "we used the same query plans
for all methods" protocol.  Engines share :class:`EngineBase`, whose
``evaluate`` runs plan construction + execution and optionally collects
:class:`ExecutionStats` (the Table III pruning-power counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.errors import QuerySyntaxError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.graph.labels import LabelSeq
from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup, PlanNode
from repro.plan.planner import Splitter, build_plan
from repro.query.ast import CPQ, is_resolved, resolve


@dataclass
class ExecutionStats:
    """Operation counters collected during one query evaluation.

    ``classes_touched`` / ``pairs_touched`` back Table III: the number of
    class identifiers (language-aware engines) or s-t pairs (unaware
    engines) flowing through lookups and conjunctions.
    """

    lookups: int = 0
    classes_touched: int = 0
    pairs_touched: int = 0
    class_conjunctions: int = 0
    pair_conjunctions: int = 0
    joins: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another run's counters into this one."""
        self.lookups += other.lookups
        self.classes_touched += other.classes_touched
        self.pairs_touched += other.pairs_touched
        self.class_conjunctions += other.class_conjunctions
        self.pair_conjunctions += other.pair_conjunctions
        self.joins += other.joins


@dataclass(frozen=True, slots=True)
class Result:
    """Tagged union of Algorithm 3's ``(P, C)`` intermediate results.

    Exactly one of ``pairs`` / ``classes`` is non-None.
    """

    pairs: frozenset[Pair] | None = None
    classes: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if (self.pairs is None) == (self.classes is None):
            raise QuerySyntaxError("Result must carry exactly one of pairs/classes")

    @staticmethod
    def of_pairs(pairs: Iterable[Pair]) -> "Result":
        """Wrap a pair set."""
        return Result(pairs=frozenset(pairs))

    @staticmethod
    def of_classes(classes: Iterable[int]) -> "Result":
        """Wrap a class-id set."""
        return Result(classes=frozenset(classes))


@runtime_checkable
class LookupProvider(Protocol):
    """What the executor needs from an index / engine."""

    graph: LabeledDigraph

    def lookup(self, seq: LabelSeq) -> Result:
        """Result of a label-sequence LOOKUP (classes or pairs)."""

    def expand_classes(self, classes: frozenset[int]) -> frozenset[Pair]:
        """Union of ``Ic2p(c)`` over ``classes`` (pair engines never call this)."""

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        """Subset of ``classes`` whose pairs are loops (IDENTITY on classes)."""


def execute_plan(
    plan: PlanNode,
    provider: LookupProvider,
    stats: ExecutionStats | None = None,
    limit: int | None = None,
) -> frozenset[Pair]:
    """Run Algorithm 3: evaluate ``plan`` and materialize the root result.

    ``limit`` enables first-answer mode (Fig. 7): root materialization
    stops after ``limit`` pairs, which skips expanding the remaining
    classes — the same early-exit the paper grants TurboHom++.
    """
    result = _execute(plan, provider, stats)
    return _materialize(result, provider, stats, limit)


def _execute(
    plan: PlanNode,
    provider: LookupProvider,
    stats: ExecutionStats | None,
) -> Result:
    if isinstance(plan, Lookup):
        result = provider.lookup(plan.seq)
        if stats is not None:
            stats.lookups += 1
            if result.classes is not None:
                stats.classes_touched += len(result.classes)
            else:
                stats.pairs_touched += len(result.pairs or ())
        if plan.with_identity:
            result = _identity_filter(result, provider)
        return result

    if isinstance(plan, IdentityAll):
        return Result.of_pairs((v, v) for v in provider.graph.vertices())

    if isinstance(plan, JoinNode):
        left = _materialize(_execute(plan.left, provider, stats), provider, stats, None)
        right = _materialize(_execute(plan.right, provider, stats), provider, stats, None)
        if stats is not None:
            stats.joins += 1
            stats.pairs_touched += len(left) + len(right)
        joined = _compose(left, right, loops_only=plan.with_identity)
        return Result.of_pairs(joined)

    if isinstance(plan, ConjNode):
        left = _execute(plan.left, provider, stats)
        right = _execute(plan.right, provider, stats)
        if left.classes is not None and right.classes is not None:
            if stats is not None:
                stats.class_conjunctions += 1
                stats.classes_touched += len(left.classes) + len(right.classes)
            classes = left.classes & right.classes
            result = Result(classes=classes)
        else:
            left_pairs = _materialize(left, provider, stats, None)
            right_pairs = _materialize(right, provider, stats, None)
            if stats is not None:
                stats.pair_conjunctions += 1
                stats.pairs_touched += len(left_pairs) + len(right_pairs)
            result = Result.of_pairs(left_pairs & right_pairs)
        if plan.with_identity:
            result = _identity_filter(result, provider)
        return result

    raise QuerySyntaxError(f"unknown plan node {plan!r}")


def _identity_filter(result: Result, provider: LookupProvider) -> Result:
    """Apply ``∩ id`` to a result (Algorithm 4's \\*ID variants)."""
    if result.classes is not None:
        return Result(classes=provider.loop_classes_of(result.classes))
    assert result.pairs is not None
    return Result.of_pairs((v, u) for v, u in result.pairs if v == u)


def _materialize(
    result: Result,
    provider: LookupProvider,
    stats: ExecutionStats | None,
    limit: int | None,
) -> frozenset[Pair]:
    """Turn a result into explicit pairs (root of Algorithm 3)."""
    if result.pairs is not None:
        pairs = result.pairs
        if limit is not None and len(pairs) > limit:
            return frozenset(list(pairs)[:limit])
        return pairs
    assert result.classes is not None
    if limit is None:
        expanded = provider.expand_classes(result.classes)
        if stats is not None:
            stats.pairs_touched += len(expanded)
        return expanded
    collected: list[Pair] = []
    for class_id in sorted(result.classes):
        for pair in provider.expand_classes(frozenset((class_id,))):
            collected.append(pair)
            if len(collected) >= limit:
                return frozenset(collected)
    return frozenset(collected)


def _compose(
    left: frozenset[Pair], right: frozenset[Pair], loops_only: bool
) -> set[Pair]:
    """Sort/hash-join of two pair sets on the shared middle vertex."""
    by_source: dict[object, list[object]] = {}
    for m, u in right:
        by_source.setdefault(m, []).append(u)
    if loops_only:
        return {
            (v, u)
            for v, m in left
            for u in by_source.get(m, ())
            if v == u
        }
    return {
        (v, u)
        for v, m in left
        for u in by_source.get(m, ())
    }


class EngineBase:
    """Shared high-level evaluation entry point for all engines.

    Subclasses provide ``graph``, ``lookup`` (and for class-based engines
    ``expand_classes`` / ``loop_classes_of``), plus a :meth:`splitter`
    describing how label sequences decompose into LOOKUPs.
    """

    #: Human-readable engine name used by the benchmark harness.
    name: str = "engine"
    graph: LabeledDigraph

    def splitter(self) -> Splitter:
        """The sequence splitter used when planning queries."""
        raise NotImplementedError

    def plan(self, query: CPQ) -> PlanNode:
        """Plan a (possibly name-form) CPQ against this engine."""
        if not is_resolved(query):
            query = resolve(query, self.graph.registry)
        return build_plan(query, self.splitter())

    def evaluate(
        self,
        query: CPQ,
        stats: ExecutionStats | None = None,
        limit: int | None = None,
        source_filter=None,
        target_filter=None,
    ) -> frozenset[Pair]:
        """Evaluate a CPQ, returning its s-t pair answer set.

        ``source_filter`` / ``target_filter`` are optional predicates on
        the vertex's local-data dict (Sec. VII's extension: "study
        practical extensions ... for supporting CPQ combined with querying
        local data").  They post-filter the answers; e.g.
        ``target_filter=lambda d: d.get("age", 0) > 30``.
        """
        answers = execute_plan(self.plan(query), self, stats=stats, limit=limit)
        if source_filter is None and target_filter is None:
            return answers
        graph = self.graph
        filtered = []
        for v, u in answers:
            if source_filter is not None and not source_filter(graph.vertex_data(v)):
                continue
            if target_filter is not None and not target_filter(graph.vertex_data(u)):
                continue
            filtered.append((v, u))
        return frozenset(filtered)

    def count(self, query: CPQ, stats: ExecutionStats | None = None) -> int:
        """Answer cardinality, avoiding materialization where possible.

        When the plan's root result is a set of class identifiers
        (conjunction-only queries — the paper's T/S/TT/St shapes), the
        count is the sum of the class sizes read off ``Ic2p``: no s-t
        pair is ever touched.  COUNT aggregation is thus another consumer
        of the CPQ-equivalence structure, beyond Prop. 4.1's membership
        pruning.  Join-bearing plans fall back to materialized counting.
        """
        plan = self.plan(query)
        result = _execute(plan, self, stats)
        if result.classes is not None and hasattr(self, "pairs_of_class"):
            return sum(
                len(self.pairs_of_class(class_id)) for class_id in result.classes
            )
        return len(_materialize(result, self, stats, None))

    def explain(self, query: CPQ) -> str:
        """Describe how this engine would run ``query``.

        Combines the logical plan (Sec. IV-D), one profiled execution's
        operator counters, and — for class-based indexes — the Theorem 4.5
        work estimate.  Returns a human-readable multi-line report.
        """
        plan = self.plan(query)
        stats = ExecutionStats()
        answers = execute_plan(plan, self, stats=stats)
        lines = [
            f"engine: {self.name}",
            f"plan:   {plan.describe()}",
            f"answers: {len(answers)}",
            (
                f"profile: lookups={stats.lookups} joins={stats.joins} "
                f"class-conj={stats.class_conjunctions} "
                f"pair-conj={stats.pair_conjunctions} "
                f"classes-touched={stats.classes_touched} "
                f"pairs-touched={stats.pairs_touched}"
            ),
        ]
        if hasattr(self, "expand_classes") and hasattr(self, "num_classes"):
            try:
                from repro.core.costmodel import query_estimate

                estimate = query_estimate(query, self)
                lines.append(
                    f"thm-4.5 estimate: work≈{estimate.work:.0f} "
                    f"(α1={estimate.inputs['alpha1']}, "
                    f"α2={estimate.inputs['alpha2']})"
                )
            except QuerySyntaxError:
                pass
        return "\n".join(lines)

    # Default implementations for pair-based engines; class-based engines
    # (CPQx, iaCPQx) override all three.
    def lookup(self, seq: LabelSeq) -> Result:  # pragma: no cover - abstract
        raise NotImplementedError

    def expand_classes(self, classes: frozenset[int]) -> frozenset[Pair]:
        raise QuerySyntaxError(f"{self.name} is not a class-based engine")

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        raise QuerySyntaxError(f"{self.name} is not a class-based engine")
