"""Query processing over path indexes (Algorithms 3 and 4).

The paper evaluates a plan bottom-up where every intermediate result is
either a set of **class identifiers** (cheap, the language-aware fast
path) or a set of **s-t pairs** (after a JOIN forces materialization).
:class:`Result` is that tagged union; :func:`execute_plan` is Algorithm 3;
the per-operator logic mirrors Algorithm 4:

* CONJUNCTION of two class-results intersects class-id sets without
  touching any pair (Prop. 4.1) — the paper's headline optimization;
* IDENTITY on class-results keeps only loop classes, decided per class
  (all pairs of a class agree on loop-ness, Def. 4.1 cond. 1);
* JOIN materializes both sides and composes them.

Pair-level intermediates are columnar
(:class:`repro.core.pairset.PairSet`): conjunctions merge sorted code
columns, JOIN runs the sort-merge composition, and the IDENTITY filter
scans codes — original vertex tuples only reappear when the plan root
materializes.  Engines that still produce plain tuple sets (the BFS /
TurboHom / Tentris baselines) keep working: every operator falls back to
the seed's set-of-tuples algorithms when an operand is not columnar.

Two memoization layers sit on top:

* **per-evaluation subplan memo** — :func:`execute_plan` caches each
  plan node's result within one evaluation, so a repeated subexpression
  in a conjunctive query (plan nodes are frozen dataclasses comparing
  structurally) is computed once;
* **cross-query LRU** — :class:`EngineBase` memoizes whole
  ``evaluate``/``count`` answers in a bounded LRU keyed on the resolved
  query, guarded by a ``(graph version, engine epoch)`` freshness token:
  any graph mutation (including lazy maintenance) or engine-side change
  (e.g. interest insertion) moves the token and drops the cache.

The executor is generic over a :class:`LookupProvider`, so one
implementation serves CPQx, iaCPQx, and the pair-returning engines
(Path, iaPath, BFS) — realizing the paper's "we used the same query plans
for all methods" protocol.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Iterable
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

from repro.core.cache import LRUCache
from repro.core.pairset import PairSet
from repro.errors import QuerySyntaxError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.graph.interner import ID_BITS
from repro.graph.labels import LabelSeq
from repro.plan.nodes import ConjNode, IdentityAll, JoinNode, Lookup, PlanNode
from repro.plan.planner import Splitter, build_plan
from repro.query.ast import CPQ, is_resolved, resolve


@dataclass
class ExecutionStats:
    """Operation counters collected during one query evaluation.

    ``classes_touched`` / ``pairs_touched`` back Table III: the number of
    class identifiers (language-aware engines) or s-t pairs (unaware
    engines) flowing through lookups and conjunctions.  Counters are
    *logical*: a memo hit replays the subtree's recorded delta, so the
    numbers read as if every subexpression had executed — identical
    whether a result came from work or from memory.
    """

    lookups: int = 0
    classes_touched: int = 0
    pairs_touched: int = 0
    class_conjunctions: int = 0
    pair_conjunctions: int = 0
    joins: int = 0

    def merge(self, other: ExecutionStats) -> None:
        """Accumulate another run's counters into this one."""
        self.lookups += other.lookups
        self.classes_touched += other.classes_touched
        self.pairs_touched += other.pairs_touched
        self.class_conjunctions += other.class_conjunctions
        self.pair_conjunctions += other.pair_conjunctions
        self.joins += other.joins

    def snapshot(self) -> ExecutionStats:
        """An independent copy (cached alongside memoized results)."""
        return replace(self)


@dataclass(frozen=True, slots=True)
class Result:
    """Tagged union of Algorithm 3's ``(P, C)`` intermediate results.

    Exactly one of ``pairs`` / ``classes`` is non-None.  ``pairs`` holds
    either a columnar :class:`PairSet` (migrated engines) or a plain
    frozenset of vertex tuples (legacy producers) — both satisfy the
    same length/iteration/set-operator surface.
    """

    pairs: frozenset[Pair] | PairSet | None = None
    classes: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if (self.pairs is None) == (self.classes is None):
            raise QuerySyntaxError("Result must carry exactly one of pairs/classes")

    @staticmethod
    def of_pairs(pairs: Iterable[Pair]) -> Result:
        """Wrap a pair collection (kept columnar if already a PairSet)."""
        if isinstance(pairs, PairSet):
            return Result(pairs=pairs)
        return Result(pairs=frozenset(pairs))

    @staticmethod
    def of_classes(classes: Iterable[int]) -> Result:
        """Wrap a class-id set."""
        return Result(classes=frozenset(classes))


@runtime_checkable
class LookupProvider(Protocol):
    """What the executor needs from an index / engine."""

    graph: LabeledDigraph

    def lookup(self, seq: LabelSeq) -> Result:
        """Result of a label-sequence LOOKUP (classes or pairs)."""

    def expand_classes(self, classes: frozenset[int]) -> frozenset[Pair] | PairSet:
        """Union of ``Ic2p(c)`` over ``classes`` (pair engines never call this)."""

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        """Subset of ``classes`` whose pairs are loops (IDENTITY on classes)."""


#: A memo table for plan-node results: the per-evaluation dict or the
#: engine's cross-query LRU — both map plan node → (Result, stats delta).
Memo = dict | LRUCache


def execute_plan(
    plan: PlanNode,
    provider: LookupProvider,
    stats: ExecutionStats | None = None,
    limit: int | None = None,
    memo: Memo | None = None,
) -> frozenset[Pair]:
    """Run Algorithm 3: evaluate ``plan`` and materialize the root result.

    ``limit`` enables first-answer mode (Fig. 7): root materialization
    stops after ``limit`` pairs, which skips expanding the remaining
    classes — the same early-exit the paper grants TurboHom++.

    ``memo`` carries subplan results between plan nodes: by default a
    fresh per-evaluation dict (repeated subexpressions inside one query
    run once); engines pass their token-guarded LRU here so subplans
    recur across queries too.  A memo hit replays the recorded operator
    counters into ``stats``, keeping the Table III accounting identical
    whether a subtree was executed or remembered.
    """
    if memo is None:
        memo = {}
    result = _execute(plan, provider, stats, memo)
    pairs = _materialize(result, provider, stats, limit)
    if isinstance(pairs, PairSet):
        if limit is not None and len(pairs) > limit:
            return frozenset(pairs.first_pairs(limit))
        return pairs.to_set()
    return pairs


#: Shared zero-delta for unprofiled per-evaluation memo entries (never
#: mutated: merge() only writes into its receiver).
_NO_STATS = ExecutionStats()


def _execute(
    plan: PlanNode,
    provider: LookupProvider,
    stats: ExecutionStats | None,
    memo: Memo | None = None,
) -> Result:
    if memo is not None:
        hit = memo.get(plan)
        if hit is not None:
            result, delta = hit
            if stats is not None:
                stats.merge(delta)
            return result
        if stats is None and type(memo) is dict:
            # Unprofiled one-shot evaluation: the memo dies with this
            # call, so skip the per-node counter bookkeeping entirely.
            result = _execute_uncached(plan, provider, None, memo)
            memo[plan] = (result, _NO_STATS)
            return result
        run = ExecutionStats()
        result = _execute_uncached(plan, provider, run, memo)
        memo[plan] = (result, run.snapshot())
        if stats is not None:
            stats.merge(run)
        return result
    return _execute_uncached(plan, provider, stats, memo)


def _execute_uncached(
    plan: PlanNode,
    provider: LookupProvider,
    stats: ExecutionStats | None,
    memo: Memo | None,
) -> Result:
    if isinstance(plan, Lookup):
        result = provider.lookup(plan.seq)
        if stats is not None:
            stats.lookups += 1
            if result.classes is not None:
                stats.classes_touched += len(result.classes)
            else:
                stats.pairs_touched += len(result.pairs or ())
        if plan.with_identity:
            result = _identity_filter(result, provider)
        return result

    if isinstance(plan, IdentityAll):
        return Result(pairs=_all_loops(provider.graph))

    if isinstance(plan, JoinNode):
        left = _materialize(_execute(plan.left, provider, stats, memo), provider, stats, None)
        right = _materialize(_execute(plan.right, provider, stats, memo), provider, stats, None)
        if stats is not None:
            stats.joins += 1
            stats.pairs_touched += len(left) + len(right)
        joined = _compose(left, right, loops_only=plan.with_identity)
        return Result.of_pairs(joined)

    if isinstance(plan, ConjNode):
        left = _execute(plan.left, provider, stats, memo)
        right = _execute(plan.right, provider, stats, memo)
        if left.classes is not None and right.classes is not None:
            if stats is not None:
                stats.class_conjunctions += 1
                stats.classes_touched += len(left.classes) + len(right.classes)
            classes = left.classes & right.classes
            result = Result(classes=classes)
        else:
            left_pairs = _materialize(left, provider, stats, None)
            right_pairs = _materialize(right, provider, stats, None)
            if stats is not None:
                stats.pair_conjunctions += 1
                stats.pairs_touched += len(left_pairs) + len(right_pairs)
            # PairSet.__and__/__rand__ dispatch every operand mix: two
            # columns merge/hash in code space, mixed operands decode.
            result = Result.of_pairs(left_pairs & right_pairs)
        if plan.with_identity:
            result = _identity_filter(result, provider)
        return result

    raise QuerySyntaxError(f"unknown plan node {plan!r}")


def _all_loops(graph: LabeledDigraph) -> PairSet:
    """The identity relation over live vertices, columnar."""
    id_of = graph.interner.id_of
    return PairSet.from_codes(
        ((vid := id_of(v)) << ID_BITS | vid for v in graph.vertices()),
        graph.interner,
    )


def _identity_filter(result: Result, provider: LookupProvider) -> Result:
    """Apply ``∩ id`` to a result (Algorithm 4's \\*ID variants)."""
    if result.classes is not None:
        return Result(classes=provider.loop_classes_of(result.classes))
    pairs = result.pairs
    assert pairs is not None
    if isinstance(pairs, PairSet):
        return Result(pairs=pairs.loops())
    return Result.of_pairs((v, u) for v, u in pairs if v == u)


def _materialize(
    result: Result,
    provider: LookupProvider,
    stats: ExecutionStats | None,
    limit: int | None,
) -> frozenset[Pair] | PairSet:
    """Turn a result into explicit pairs (root of Algorithm 3).

    Returns a columnar :class:`PairSet` whenever the producing engine is
    columnar; :func:`execute_plan` decodes at the plan root.
    """
    if result.pairs is not None:
        pairs = result.pairs
        if limit is not None and len(pairs) > limit:
            if isinstance(pairs, PairSet):
                return frozenset(pairs.first_pairs(limit))
            return frozenset(list(pairs)[:limit])
        return pairs
    assert result.classes is not None
    if limit is None:
        expanded = provider.expand_classes(result.classes)
        if stats is not None:
            stats.pairs_touched += len(expanded)
        return expanded
    collected: list[Pair] = []
    for class_id in sorted(result.classes):
        for pair in provider.expand_classes(frozenset((class_id,))):
            collected.append(pair)
            if len(collected) >= limit:
                return frozenset(collected)
    return frozenset(collected)


def _compose(
    left: frozenset[Pair] | PairSet,
    right: frozenset[Pair] | PairSet,
    loops_only: bool,
) -> set[Pair] | PairSet:
    """Join two pair collections on the shared middle vertex.

    Columnar operands run the O(n log n + m + output) sort-merge of
    :meth:`PairSet.compose`; tuple-set operands (or mixed pairs, which
    only arise with non-columnar engines) fall back to the seed's
    hash-join with its per-call dict build.
    """
    if isinstance(left, PairSet) and isinstance(right, PairSet):
        return left.compose(right, loops_only=loops_only)
    by_source: dict[object, list[object]] = {}
    for m, u in right:
        by_source.setdefault(m, []).append(u)
    if loops_only:
        return {(v, u) for v, m in left for u in by_source.get(m, ()) if v == u}
    return {(v, u) for v, m in left for u in by_source.get(m, ())}


#: Guards lazy attachment/replacement of per-engine memo caches.
#: Module-wide (EngineBase has no ``__init__`` to own a per-instance
#: lock): contention is limited to the instant a freshness token moves,
#: never the memo hit path, which locks per cache instead.
_CACHE_ATTACH_LOCK = threading.Lock()


class EngineBase:
    """Shared high-level evaluation entry point for all engines.

    Subclasses provide ``graph``, ``lookup`` (and for class-based engines
    ``expand_classes`` / ``loop_classes_of``), plus a :meth:`splitter`
    describing how label sequences decompose into LOOKUPs.

    ``evaluate`` and ``count`` memoize their answers in a bounded LRU
    (per engine instance, lazily created) so a production session
    serving repeated queries pays for each distinct query once.  The
    cache key is the resolved query (plus limit); freshness is enforced
    by a ``(graph version, engine epoch)`` token — any graph mutation
    or :meth:`invalidate_cache` call retires every cached answer.
    Benchmark harnesses that need honest per-run timings can switch the
    layer off with :meth:`set_result_caching`.
    """

    #: Human-readable engine name used by the benchmark harness.
    name: str = "engine"
    graph: LabeledDigraph

    #: Bound on memoized whole-query answers per engine instance.
    result_cache_capacity: int = 256
    #: Bound on memoized subplan results shared across queries.
    subplan_cache_capacity: int = 1024

    def splitter(self) -> Splitter:
        """The sequence splitter used when planning queries."""
        raise NotImplementedError

    def __getstate__(self) -> dict:
        """Pickle without the lock-bearing memo caches — the **engine
        snapshot** invariant.

        The cross-query LRUs (:class:`repro.core.cache.LRUCache`) carry
        per-instance mutexes, which cannot cross a process boundary; and
        they are pure caches, rebuilt lazily (and token-checked) on first
        use.  Dropping them makes every engine picklable after build,
        which is what lets the process-based serving path
        (:mod:`repro.serve`) ship an engine snapshot to its worker
        processes — guarded by ``tests/test_procserve.py``'s round-trip
        test over every registered engine.
        """
        state = self.__dict__.copy()
        state.pop("_memo_results", None)
        state.pop("_memo_subplans", None)
        return state

    def plan(self, query: CPQ) -> PlanNode:
        """Plan a (possibly name-form) CPQ against this engine."""
        if not is_resolved(query):
            query = resolve(query, self.graph.registry)
        return build_plan(query, self.splitter())

    # ------------------------------------------------------------------
    # result memoization
    # ------------------------------------------------------------------
    def _cache_token(self) -> tuple[int, int]:
        return (
            getattr(self.graph, "version", 0),
            getattr(self, "_cache_epoch", 0),
        )

    def _token_cache(self, attr: str, capacity: int) -> LRUCache:
        """The named LRU for this engine, rebuilt whenever the token moved.

        Staleness is handled copy-on-write style: the outdated cache is
        *replaced*, never cleared, so a reader that already fetched it
        keeps a consistent snapshot whose results simply stop being
        shared.  The replacement itself runs under a lock (double
        checked) so concurrent readers racing past a token bump install
        exactly one fresh cache between them.
        """
        token = self._cache_token()
        cache: LRUCache | None = getattr(self, attr, None)
        if cache is None or cache.token != token:
            with _CACHE_ATTACH_LOCK:
                cache = getattr(self, attr, None)
                if cache is None or cache.token != token:
                    cache = LRUCache(capacity, token)
                    setattr(self, attr, cache)
        return cache

    def _result_cache(self) -> LRUCache:
        return self._token_cache("_memo_results", self.result_cache_capacity)

    def _subplan_cache(self) -> LRUCache:
        return self._token_cache("_memo_subplans", self.subplan_cache_capacity)

    def invalidate_cache(self) -> None:
        """Retire every memoized answer (bumps the engine epoch).

        Called by engine-side mutations that change answers without
        touching the graph (e.g. iaCPQx interest insertion/deletion);
        graph mutations invalidate implicitly through the version token.
        """
        self._cache_epoch = getattr(self, "_cache_epoch", 0) + 1

    def set_result_caching(self, enabled: bool) -> None:
        """Enable/disable the cross-query evaluate/count/subplan LRUs.

        With caching off, evaluation still memoizes repeated
        subexpressions *within* one query (a fresh per-evaluation memo),
        but remembers nothing between calls — the mode benchmark
        harnesses use for honest per-run timings.
        """
        self._result_caching = enabled
        if not enabled:
            self._memo_results = None
            self._memo_subplans = None

    def _caching_enabled(self) -> bool:
        return getattr(self, "_result_caching", True)

    def _evaluate_cached(
        self, query: CPQ, stats: ExecutionStats | None, limit: int | None
    ) -> frozenset[Pair]:
        if not self._caching_enabled():
            return execute_plan(self.plan(query), self, stats=stats, limit=limit)
        if not is_resolved(query):
            query = resolve(query, self.graph.registry)
        cache = self._result_cache()
        key = (query, limit)
        hit = cache.get(key)
        if hit is not None:
            answers, snapshot = hit
            if stats is not None:
                stats.merge(snapshot)
            return answers
        run = ExecutionStats()
        answers = execute_plan(
            self.plan(query),
            self,
            stats=run,
            limit=limit,
            memo=self._subplan_cache(),
        )
        if stats is not None:
            stats.merge(run)
        cache.put(key, (answers, run.snapshot()))
        return answers

    # ------------------------------------------------------------------
    # evaluation API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: CPQ,
        stats: ExecutionStats | None = None,
        limit: int | None = None,
        source_filter=None,
        target_filter=None,
    ) -> frozenset[Pair]:
        """Evaluate a CPQ, returning its s-t pair answer set.

        ``source_filter`` / ``target_filter`` are optional predicates on
        the vertex's local-data dict (Sec. VII's extension: "study
        practical extensions ... for supporting CPQ combined with querying
        local data").  They post-filter the answers; e.g.
        ``target_filter=lambda d: d.get("age", 0) > 30``.
        """
        answers = self._evaluate_cached(query, stats, limit)
        if source_filter is None and target_filter is None:
            return answers
        graph = self.graph
        return frozenset(
            (v, u)
            for v, u in answers
            if (source_filter is None or source_filter(graph.vertex_data(v)))
            and (target_filter is None or target_filter(graph.vertex_data(u)))
        )

    def count(self, query: CPQ, stats: ExecutionStats | None = None) -> int:
        """Answer cardinality, avoiding materialization where possible.

        When the plan's root result is a set of class identifiers
        (conjunction-only queries — the paper's T/S/TT/St shapes), the
        count is the sum of the class sizes read off ``Ic2p``: no s-t
        pair is ever touched.  COUNT aggregation is thus another consumer
        of the CPQ-equivalence structure, beyond Prop. 4.1's membership
        pruning.  Join-bearing plans fall back to materialized counting.
        Counts are memoized alongside evaluate results.
        """
        caching = self._caching_enabled()
        if caching:
            if not is_resolved(query):
                query = resolve(query, self.graph.registry)
            cache = self._result_cache()
            key = ("#count", query)
            hit = cache.get(key)
            if hit is not None:
                counted, snapshot = hit
                if stats is not None:
                    stats.merge(snapshot)
                return counted
        run = ExecutionStats() if caching else stats
        plan = self.plan(query)
        memo = self._subplan_cache() if caching else {}
        result = _execute(plan, self, run, memo)
        class_size = getattr(self, "class_size", None)
        pairs_of_class = getattr(self, "pairs_of_class", None)
        if result.classes is not None and class_size is not None:
            counted = sum(class_size(class_id) for class_id in result.classes)
        elif result.classes is not None and pairs_of_class is not None:
            counted = sum(len(pairs_of_class(class_id)) for class_id in result.classes)
        else:
            counted = len(_materialize(result, self, run, None))
        if caching:
            assert run is not None
            if stats is not None:
                stats.merge(run)
            cache.put(key, (counted, run.snapshot()))
        return counted

    def explain(self, query: CPQ) -> str:
        """Describe how this engine would run ``query``.

        Combines the logical plan (Sec. IV-D), one profiled execution's
        operator counters, and — for class-based indexes — the Theorem 4.5
        work estimate.  Returns a human-readable multi-line report.
        """
        plan = self.plan(query)
        stats = ExecutionStats()
        answers = execute_plan(plan, self, stats=stats)
        lines = [
            f"engine: {self.name}",
            f"plan:   {plan.describe()}",
            f"answers: {len(answers)}",
            (
                f"profile: lookups={stats.lookups} joins={stats.joins} "
                f"class-conj={stats.class_conjunctions} "
                f"pair-conj={stats.pair_conjunctions} "
                f"classes-touched={stats.classes_touched} "
                f"pairs-touched={stats.pairs_touched}"
            ),
        ]
        if hasattr(self, "expand_classes") and hasattr(self, "num_classes"):
            with contextlib.suppress(QuerySyntaxError):
                from repro.core.costmodel import query_estimate

                estimate = query_estimate(query, self)
                lines.append(
                    f"thm-4.5 estimate: work≈{estimate.work:.0f} "
                    f"(α1={estimate.inputs['alpha1']}, "
                    f"α2={estimate.inputs['alpha2']})"
                )
        return "\n".join(lines)

    # Default implementations for pair-based engines; class-based engines
    # (CPQx, iaCPQx) override all three.
    def lookup(self, seq: LabelSeq) -> Result:  # pragma: no cover - abstract
        raise NotImplementedError

    def expand_classes(self, classes: frozenset[int]) -> frozenset[Pair]:
        raise QuerySyntaxError(f"{self.name} is not a class-based engine")

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        raise QuerySyntaxError(f"{self.name} is not a class-based engine")
