"""The paper's analytical cost model (Theorems 4.2–4.6).

Implements the complexity formulas of Sec. IV as executable estimators, so
deployments can predict index size, construction cost, query cost, and
maintenance cost *before* paying for them:

* Thm. 4.2 — CPQx size ``O(γ|C| + |P≤k|)`` vs the language-unaware
  index's ``O(γ|P≤k|)``;
* Thm. 4.3 — construction time
  ``O(k(d|P≤k| + |P≤k| log |P≤k|) + γ|C| log γ|C|)``;
* Thm. 4.5 — query time, driven by the join/conjunction counts ``α1/α2``
  and the per-lookup cardinalities ``|Pq|`` / ``|Cq|``;
* Thm. 4.6 — edge-update time ``O(d|Pu| + |Pu| log |P≤k| + |C| log |C|)``.

The estimators return *unit-less work scores* (operation counts under the
paper's RAM model), not seconds; the tests check the orderings the paper
derives from them (e.g. conjunction-only queries are estimated far below
join queries on the same index — the Fig. 6 story).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.plan.planner import greedy_splitter
from repro.query.ast import CPQ, count_operations, is_resolved, label_sequences_in, resolve


def _log2(value: float) -> float:
    return math.log2(value) if value > 1 else 1.0


@dataclass(frozen=True)
class CostEstimate:
    """A predicted work score with its model inputs, for reporting."""

    work: float
    inputs: dict

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.work


def index_size_estimate(gamma: float, num_classes: int, num_pairs: int) -> CostEstimate:
    """Thm. 4.2: ``γ|C| + |P≤k|`` (CPQx) — compare with ``γ|P≤k|`` (Path)."""
    work = gamma * num_classes + num_pairs
    return CostEstimate(work, {
        "gamma": gamma, "classes": num_classes, "pairs": num_pairs,
        "path_index_equivalent": gamma * num_pairs,
    })


def construction_estimate(
    k: int, max_degree: int, num_pairs: int, gamma: float, num_classes: int
) -> CostEstimate:
    """Thm. 4.3: ``k(d|P| + |P| log |P|) + γ|C| log γ|C|``."""
    partition_work = k * (max_degree * num_pairs + num_pairs * _log2(num_pairs))
    assembly = gamma * num_classes * _log2(gamma * num_classes)
    return CostEstimate(partition_work + assembly, {
        "k": k, "d": max_degree, "pairs": num_pairs,
        "partition_work": partition_work, "assembly_work": assembly,
    })


def query_estimate(query: CPQ, index) -> CostEstimate:
    """Thm. 4.5 applied to a concrete query and index.

    ``α1``/``α2`` are counted on the *plan-level* operations (sequence
    chunks longer than k add joins, as the planner will split them);
    ``|Pq|`` / ``|Cq|`` are measured as the maximum lookup result sizes.
    The theorem's two regimes are reproduced literally:

    * ``α1 = 0`` (conjunction-only): ``O(α2 |Cq|)`` — class-id work only;
    * ``α1 > 0``: sort-merge work on up to ``(dk)^α1 |Pq|`` pairs.
    """
    if not is_resolved(query):
        query = resolve(query, index.graph.registry)
    alpha1, alpha2 = count_operations(query)
    # joins introduced by splitting long sequences
    split = greedy_splitter(index.k)
    sequences = label_sequences_in(query)
    join_atoms = 0
    for seq in sequences:
        chunks = split(seq)
        join_atoms += len(chunks) - 1
        # joins *inside* a recognized sequence were already counted in α1;
        # remove the label-level joins the lookup absorbs
        alpha1 -= len(seq) - 1
    alpha1 = max(0, alpha1) + join_atoms

    max_pairs = 1
    max_classes = 1
    for seq in sequences:
        for chunk in split(seq):
            result = index.lookup(chunk)
            if result.classes is not None:
                max_classes = max(max_classes, len(result.classes))
                expanded = index.expand_classes(result.classes)
                max_pairs = max(max_pairs, len(expanded))
            else:
                max_pairs = max(max_pairs, len(result.pairs or ()))

    d = max(2, index.graph.max_degree())
    num_vertices = max(2, index.graph.num_vertices)
    if alpha1 == 0:
        work = float(max(1, alpha2) * max_classes)
    else:
        blowup = min((d * index.k) ** alpha1 * max_pairs, num_vertices ** 2)
        work = (alpha1 + alpha2) * blowup * _log2(blowup)
    return CostEstimate(work, {
        "alpha1": alpha1, "alpha2": alpha2,
        "max_lookup_pairs": max_pairs, "max_lookup_classes": max_classes,
    })


def update_estimate(
    max_degree: int, affected_pairs: int, num_pairs: int, num_classes: int
) -> CostEstimate:
    """Thm. 4.6: ``d|Pu| + |Pu| log |P≤k| + |C| log |C|``."""
    work = (
        max_degree * affected_pairs
        + affected_pairs * _log2(num_pairs)
        + num_classes * _log2(num_classes)
    )
    return CostEstimate(work, {
        "d": max_degree, "affected": affected_pairs,
        "pairs": num_pairs, "classes": num_classes,
    })


def explain_index(index) -> dict:
    """All model inputs measured from a built index, plus size estimates."""
    gamma = index.gamma()
    size = index_size_estimate(gamma, index.num_classes, index.num_pairs)
    construction = construction_estimate(
        index.k, index.graph.max_degree(), index.num_pairs, gamma,
        index.num_classes,
    )
    return {
        "gamma": gamma,
        "classes": index.num_classes,
        "pairs": index.num_pairs,
        "size_score": size.work,
        "path_size_score": size.inputs["path_index_equivalent"],
        "construction_score": construction.work,
    }
