"""The paper's primary contribution: CPQx, iaCPQx, and their machinery."""

from repro.core.advisor import InterestRecommendation, advise_k, recommend_interests, sequence_frequencies
from repro.core.bisimulation import bisimulation_classes, k_path_bisimilar
from repro.core.cache import LRUCache
from repro.core.concurrency import RWLock
from repro.core.costmodel import (
    construction_estimate,
    explain_index,
    index_size_estimate,
    query_estimate,
    update_estimate,
)
from repro.core.cpqx import CPQxIndex
from repro.core.cq import ConjunctiveQuery, TriplePattern, collapse_chains, evaluate_cq, parse_bgp
from repro.core.executor import EngineBase, ExecutionStats, Result, execute_plan
from repro.core.interest import InterestAwareIndex
from repro.core.pairset import PairSet
from repro.core.parallel import index_fingerprint, resolve_workers
from repro.core.partition import (
    CodePartition,
    PathPartition,
    compute_partition,
    compute_partition_codes,
    level1_classes,
    refines,
)
from repro.core.paths import (
    enumerate_sequences,
    enumerate_sequences_codes,
    gamma,
    invert_sequences,
    invert_sequences_codes,
    label_sequences_for_pair,
    reachable_codes,
    reachable_pairs,
    sequence_relation_codes,
)
from repro.core.persistence import PersistenceError, load_index, save_index
from repro.core.stats import (
    DatasetStats,
    IndexStats,
    build_with_stats,
    dataset_stats,
    format_bytes,
    stats_of,
)
from repro.core.validate import ValidationReport, quick_verify, verify_index

__all__ = [
    "CPQxIndex",
    "CodePartition",
    "ConjunctiveQuery",
    "DatasetStats",
    "EngineBase",
    "ExecutionStats",
    "IndexStats",
    "InterestAwareIndex",
    "InterestRecommendation",
    "LRUCache",
    "PairSet",
    "PathPartition",
    "PersistenceError",
    "RWLock",
    "Result",
    "TriplePattern",
    "ValidationReport",
    "advise_k",
    "bisimulation_classes",
    "collapse_chains",
    "construction_estimate",
    "evaluate_cq",
    "explain_index",
    "index_size_estimate",
    "parse_bgp",
    "query_estimate",
    "quick_verify",
    "update_estimate",
    "verify_index",
    "k_path_bisimilar",
    "load_index",
    "recommend_interests",
    "save_index",
    "sequence_frequencies",
    "build_with_stats",
    "compute_partition",
    "compute_partition_codes",
    "dataset_stats",
    "enumerate_sequences",
    "enumerate_sequences_codes",
    "execute_plan",
    "format_bytes",
    "gamma",
    "index_fingerprint",
    "resolve_workers",
    "invert_sequences",
    "invert_sequences_codes",
    "label_sequences_for_pair",
    "level1_classes",
    "reachable_codes",
    "reachable_pairs",
    "refines",
    "sequence_relation_codes",
    "stats_of",
]
