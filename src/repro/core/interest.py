"""The interest-aware index **iaCPQx** (Sec. V).

iaCPQx partitions s-t pairs by *interest-aware path-equivalence*
(Def. 5.1): ``(v,u) ≈ (x,y)`` iff they agree on loop-ness and on
``L≤k ∩ Lq``, where ``Lq`` is the user's set of interesting label
sequences.  All length-1 sequences are always included in ``Lq``
(Sec. V-A), so *every* CPQ remains answerable: the planner splits
non-interest sequences into interest-covered chunks
(:func:`repro.plan.planner.interest_splitter`).

Because only the interest sequences are evaluated during construction —
never the full ``L≤k`` enumeration — build time and size shrink roughly
with ``|Lq| / |L≤k|`` (Thm. 5.1), which is the paper's scalability story:
the graphs whose full CPQx ran out of memory in Table IV all get an
iaCPQx here.

Like CPQx, the class postings are columnar
(:class:`repro.core.pairset.PairSet` code columns) and the pair→class
map is keyed on packed pair codes; the construction sweep enumerates
each interest's relation directly in code space.

Maintenance covers the paper's four update kinds: edge insertion/deletion
(like CPQx, restricted to interest sequences) and interest (label
sequence) insertion/deletion (Sec. V-C).
"""

from __future__ import annotations

from repro.core.executor import EngineBase, Result
from repro.core.maintenance import affected_pairs
from repro.core.pairset import PairSet
from repro.core.parallel import interest_relations_parallel, resolve_workers
from repro.core.paths import sequence_relation_codes
from repro.errors import IndexBuildError, MaintenanceError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex
from repro.graph.interner import ID_BITS, ID_MASK
from repro.graph.labels import LabelSeq
from repro.plan.planner import Splitter, interest_splitter


def _single_label_interests(graph: LabeledDigraph) -> set[LabelSeq]:
    """All length-1 sequences over labels used in the graph (fwd + inverse)."""
    singles: set[LabelSeq] = set()
    for label in graph.labels_used():
        singles.add((label,))
        singles.add((-label,))
    return singles


def _pair_matches(graph: LabeledDigraph, pair: Pair, seq: LabelSeq) -> bool:
    """Does some path from pair[0] to pair[1] spell ``seq``?  ``O(d^|seq|)``."""
    frontier = {pair[0]}
    for label in seq:
        next_frontier: set[Vertex] = set()
        for vertex in frontier:
            next_frontier.update(graph.successors(vertex, label))
        if not next_frontier:
            return False
        frontier = next_frontier
    return pair[1] in frontier


class InterestAwareIndex(EngineBase):
    """iaCPQx: the interest-aware CPQ index of Sec. V."""

    name = "iaCPQx"

    def __init__(
        self,
        graph: LabeledDigraph,
        k: int,
        interests: frozenset[LabelSeq],
        il2c: dict[LabelSeq, set[int]],
        ic2p: dict[int, PairSet] | dict[int, list[Pair]],
        class_of: dict[int, int] | dict[Pair, int] | None,
        class_sequences: dict[int, frozenset[LabelSeq]],
        loop_classes: set[int],
    ) -> None:
        from repro.core.cpqx import _adopt_class_of, _adopt_ic2p

        self.graph = graph
        self.k = k
        self.interests = interests
        self._il2c = il2c
        self._ic2p = _adopt_ic2p(ic2p, graph)
        # ``class_of=None`` defers the pair→class inversion exactly like
        # CPQxIndex (see its ``_class_of`` property) — store-opened
        # engines build it on first maintenance/introspection access.
        self._class_of_map: dict[int, int] | None = (
            None if class_of is None else _adopt_class_of(class_of, graph)
        )
        self._class_sequences = class_sequences
        self._loop_classes = loop_classes
        self._next_class = max(ic2p, default=-1) + 1

    @property
    def _class_of(self) -> dict[int, int]:
        """Lazily materialized pair-code → class map (see CPQxIndex)."""
        mapping = self._class_of_map
        if mapping is None:
            mapping = {
                code: class_id
                for class_id, members in self._ic2p.items()
                for code in members.iter_codes()
            }
            self._class_of_map = mapping
        return mapping

    @_class_of.setter
    def _class_of(self, value: dict[int, int] | dict[Pair, int]) -> None:
        from repro.core.cpqx import _adopt_class_of

        self._class_of_map = _adopt_class_of(value, self.graph)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledDigraph,
        k: int = 2,
        interests: set[LabelSeq] | frozenset[LabelSeq] = frozenset(),
        workers: int | str = 1,
    ) -> InterestAwareIndex:
        """Build iaCPQx for the given interest sequences.

        Length-1 sequences are added automatically; interests longer than
        ``k`` are rejected (the paper instead registers their length-k
        prefixes — do that at workload level, see
        :func:`repro.query.workloads.workload_interests`).

        ``workers`` > 1 (or ``"auto"``) shards the per-interest relation
        sweep across a process pool by source vertex; the sharded
        relation columns merge to exactly the serial sweep's sorted
        columns, so the classing that follows is byte-identical.
        """
        if k < 1:
            raise IndexBuildError(f"k must be >= 1, got {k}")
        num_workers = resolve_workers(workers)
        for seq in interests:
            if not seq:
                raise IndexBuildError("empty interest sequence")
            if len(seq) > k:
                raise IndexBuildError(
                    f"interest {seq} longer than k={k}; register its k-prefix instead"
                )
        full_interests = frozenset(set(interests) | _single_label_interests(graph))

        if num_workers > 1 and full_interests:
            relations = interest_relations_parallel(
                graph, full_interests, num_workers
            )

            def relation_codes(seq: LabelSeq):
                return relations.get(seq, ())
        else:

            def relation_codes(seq: LabelSeq):
                return sequence_relation_codes(graph, seq).iter_codes()

        code_seqs: dict[int, set[LabelSeq]] = {}
        # Sorted so class ids (assigned first-seen below) are identical
        # across runs regardless of set hash order.
        for seq in sorted(full_interests):
            for code in relation_codes(seq):
                entry = code_seqs.get(code)
                if entry is None:
                    code_seqs[code] = {seq}
                else:
                    entry.add(seq)

        signature_ids: dict[tuple[bool, frozenset[LabelSeq]], int] = {}
        il2c: dict[LabelSeq, set[int]] = {}
        members_by_class: dict[int, list[int]] = {}
        class_of: dict[int, int] = {}
        class_sequences: dict[int, frozenset[LabelSeq]] = {}
        loop_classes: set[int] = set()
        for code, seqs in code_seqs.items():
            signature = ((code >> ID_BITS) == (code & ID_MASK), frozenset(seqs))
            class_id = signature_ids.setdefault(signature, len(signature_ids))
            bucket = members_by_class.get(class_id)
            if bucket is None:
                members_by_class[class_id] = [code]
                class_sequences[class_id] = signature[1]
                if signature[0]:
                    loop_classes.add(class_id)
                for seq in sorted(signature[1]):
                    il2c.setdefault(seq, set()).add(class_id)
            else:
                bucket.append(code)
            class_of[code] = class_id
        interner = graph.interner
        ic2p = {
            class_id: PairSet.from_codes(codes, interner)
            for class_id, codes in members_by_class.items()
        }
        return cls(
            graph=graph,
            k=k,
            interests=full_interests,
            il2c=il2c,
            ic2p=ic2p,
            class_of=class_of,
            class_sequences=class_sequences,
            loop_classes=loop_classes,
        )

    # ------------------------------------------------------------------
    # executor interface
    # ------------------------------------------------------------------
    def splitter(self) -> Splitter:
        """Split sequences at interest boundaries (Sec. V-B)."""
        return interest_splitter(self.interests, self.k)

    def lookup(self, seq: LabelSeq) -> Result:
        """``Il2c(seq)``; sequences outside the interests return empty."""
        return Result.of_classes(self._il2c.get(seq, ()))

    def expand_classes(self, classes: frozenset[int]) -> PairSet:
        """``∪ Ic2p(c)`` over ``classes``: concatenate the disjoint
        columns and re-sort (C Timsort over pre-sorted runs)."""
        ic2p = self._ic2p
        return PairSet.union_disjoint(
            (ic2p[class_id] for class_id in classes if class_id in ic2p),
            self.graph.interner,
        )

    def loop_classes_of(self, classes: frozenset[int]) -> frozenset[int]:
        """IDENTITY on class sets."""
        return frozenset(classes & self._loop_classes)

    # ------------------------------------------------------------------
    # introspection (mirrors CPQxIndex)
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of interest-aware equivalence classes."""
        return len(self._ic2p)

    @property
    def num_pairs(self) -> int:
        """Number of indexed s-t pairs."""
        return len(self._class_of)

    @property
    def num_sequences(self) -> int:
        """Number of label sequences keyed in ``Il2c``."""
        return len(self._il2c)

    def class_of(self, pair: Pair) -> int | None:
        """Class identifier of a pair, or None."""
        interner = self.graph.interner
        vid = interner.get_id(pair[0])
        uid = interner.get_id(pair[1])
        if vid is None or uid is None:
            return None
        return self._class_of.get((vid << ID_BITS) | uid)

    def class_size(self, class_id: int) -> int:
        """``|Ic2p(c)|`` without decoding (COUNT pushdown reads this)."""
        members = self._ic2p.get(class_id)
        return len(members) if members is not None else 0

    def pairs_of_class(self, class_id: int) -> list[Pair]:
        """Members of a class, decoded to a deterministically sorted list."""
        members = self._ic2p.get(class_id)
        if members is None:
            return []
        return sorted(members, key=repr)

    def sequences_of_class(self, class_id: int) -> frozenset[LabelSeq]:
        """The uniform ``L≤k ∩ Lq`` set of a class."""
        return self._class_sequences.get(class_id, frozenset())

    def gamma(self) -> float:
        """Average interest-sequence count per indexed pair."""
        if not self._class_of:
            return 0.0
        total = sum(
            len(self._class_sequences[c]) * len(members)
            for c, members in self._ic2p.items()
        )
        return total / len(self._class_of)

    def size_bytes(self) -> int:
        """Size model identical to CPQx's (32-bit ids; Thm. 5.1)."""
        il2c_bytes = sum(
            4 * len(seq) + 4 * len(classes) for seq, classes in self._il2c.items()
        )
        ic2p_bytes = sum(4 + 8 * len(pairs) for pairs in self._ic2p.values())
        return il2c_bytes + ic2p_bytes

    # ------------------------------------------------------------------
    # maintenance (Sec. V-C)
    # ------------------------------------------------------------------
    def insert_edge(self, v: Vertex, u: Vertex, label: object) -> None:
        """Insert a graph edge and lazily patch the index."""
        lid = self.graph.add_edge(v, u, label)
        for single in ((lid,), (-lid,)):
            if single not in self.interests:
                self.interests = self.interests | {single}
        self._reclassify(affected_pairs(self.graph, v, u, self.k))

    def delete_edge(self, v: Vertex, u: Vertex, label: object) -> None:
        """Delete a graph edge and lazily patch the index."""
        affected = affected_pairs(self.graph, v, u, self.k)
        try:
            self.graph.remove_edge(v, u, label)
        except Exception as exc:
            raise MaintenanceError(str(exc)) from exc
        self._reclassify(affected)

    def change_edge_label(
        self, v: Vertex, u: Vertex, old_label: object, new_label: object
    ) -> None:
        """Relabel an edge and lazily update the index (Sec. IV-E)."""
        from repro.core.maintenance import change_edge_label

        change_edge_label(self, v, u, old_label, new_label)

    def delete_vertex(self, v: Vertex) -> None:
        """Remove a vertex with its edges and lazily update the index."""
        from repro.core.maintenance import delete_vertex

        delete_vertex(self, v)

    def insert_vertex(self, v: Vertex, edges: list[tuple] = ()) -> None:
        """Add a vertex (plus incident edges) and lazily update the index."""
        from repro.core.maintenance import insert_vertex

        insert_vertex(self, v, edges)

    def insert_interest(self, seq: LabelSeq) -> None:
        """Add a label sequence to the interests (Sec. V-C).

        Enumerates the pairs matching the new sequence and re-classes
        them (grouped by previous class, so uniformity is preserved
        without merging into existing classes).
        """
        if not seq or len(seq) > self.k:
            raise MaintenanceError(f"interest must have length 1..k, got {seq}")
        if seq in self.interests:
            return
        self.interests = self.interests | {seq}
        self.invalidate_cache()
        matching = sequence_relation_codes(self.graph, seq)
        by_old_class: dict[int | None, list[int]] = {}
        for code in matching.iter_codes():
            by_old_class.setdefault(self._class_of.get(code), []).append(code)
        for old_class, members in by_old_class.items():
            if old_class is None:
                loops = [c for c in members if (c >> ID_BITS) == (c & ID_MASK)]
                non_loops = [c for c in members if (c >> ID_BITS) != (c & ID_MASK)]
                for group, is_loop in ((non_loops, False), (loops, True)):
                    if group:
                        self._create_class(frozenset((seq,)), is_loop, group)
            else:
                # project the old class's record onto the *current*
                # interests — it may still carry sequences deleted by
                # delete_interest, which must not be resurrected in Il2c
                live_seqs = self._class_sequences[old_class] & self.interests
                new_seqs = live_seqs | {seq}
                is_loop = old_class in self._loop_classes
                for code in members:
                    self._remove_code(code, old_class)
                self._create_class(frozenset(new_seqs), is_loop, members)

    def delete_interest(self, seq: LabelSeq) -> None:
        """Drop a label sequence from the interests (Sec. V-C).

        Only the ``Il2c`` postings are removed; classes are left split
        (the paper: "while we do not merge two sets of paths, we can
        still guarantee correct query answers").
        """
        if len(seq) == 1:
            raise MaintenanceError("length-1 interests are mandatory (Sec. V-A)")
        if seq not in self.interests:
            raise MaintenanceError(f"{seq} is not an interest")
        self.interests = self.interests - {seq}
        self._il2c.pop(seq, None)
        self.invalidate_cache()

    # ------------------------------------------------------------------
    # internal helpers shared by the maintenance paths
    # ------------------------------------------------------------------
    def _reclassify(self, pairs: set[Pair]) -> None:
        encode = self.graph.interner.encode_pair
        regrouped: dict[tuple[frozenset[LabelSeq], bool], list[int]] = {}
        # Vertex pairs hash by string, so set order is salted per run;
        # sort (key=repr: vertices are only Hashable) so regrouped's
        # group order — and the fresh class ids — are deterministic.
        for pair in sorted(pairs, key=repr):
            new_seqs = frozenset(
                seq
                for seq in self.interests
                if _pair_matches(self.graph, pair, seq)
            )
            code = encode(pair)
            old_class = self._class_of.get(code)
            old_seqs = (
                self._class_sequences[old_class] & self.interests
                if old_class is not None
                else frozenset()
            )
            if new_seqs == old_seqs:
                continue
            if old_class is not None:
                self._remove_code(code, old_class)
            if new_seqs:
                key = (new_seqs, pair[0] == pair[1])
                regrouped.setdefault(key, []).append(code)
        for (seqs, is_loop), members in regrouped.items():
            self._create_class(seqs, is_loop, members)

    def _remove_code(self, code: int, class_id: int) -> None:
        members = self._ic2p[class_id].without_code(code)
        self._class_of.pop(code, None)
        if members:
            self._ic2p[class_id] = members
            return
        for seq in self._class_sequences[class_id]:
            postings = self._il2c.get(seq)
            if postings is not None:
                postings.discard(class_id)
                if not postings:
                    del self._il2c[seq]
        del self._ic2p[class_id]
        del self._class_sequences[class_id]
        self._loop_classes.discard(class_id)

    def _create_class(
        self, seqs: frozenset[LabelSeq], is_loop: bool, members: list[int]
    ) -> int:
        class_id = self._next_class
        self._next_class += 1
        self._ic2p[class_id] = PairSet.from_codes(members, self.graph.interner)
        self._class_sequences[class_id] = seqs
        for code in members:
            self._class_of[code] = class_id
        if is_loop:
            self._loop_classes.add(class_id)
        for seq in sorted(seqs):
            self._il2c.setdefault(seq, set()).add(class_id)
        return class_id

    def __repr__(self) -> str:
        return (
            f"InterestAwareIndex(k={self.k}, |Lq|={len(self.interests)}, "
            f"|C|={self.num_classes}, |P|={self.num_pairs})"
        )
