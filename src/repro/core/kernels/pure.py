"""Pure-Python set-algebra kernels: the merge/gallop loops.

This is the reference backend — the exact loops that lived in
:mod:`repro.core.pairset` before the kernel layer existed, relocated
verbatim.  Every function operates on raw *columns*: sorted,
duplicate-free ``int64`` sequences, either an owned ``array('q')`` or a
read-only ``'q'``-cast ``memoryview`` over an ``mmap``-ed store file.
Higher-level kernels (:func:`compose`, :func:`loops`) duck-type
:class:`~repro.core.pairset.PairSet` operands through their public
surface only (``codes`` / ``code_set()`` / ``is_frozen()``), so this
module never imports ``pairset`` and the two layers cannot cycle.

The numpy backend (:mod:`repro.core.kernels.numpy_backend`) must return
bit-identical columns for every function here — that contract is what
lets the backends swap freely under one ``index_fingerprint``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable

from repro.graph.interner import ID_BITS, ID_HIGH_MASK, ID_MASK

#: Size ratio beyond which merge operations gallop instead of scanning.
GALLOP_RATIO = 8

Column = array | memoryview


def owned_copy(column: Column) -> array:
    """A fresh owned ``array('q')`` with ``column``'s codes."""
    if type(column) is array:
        return array("q", column)
    out = array("q")
    out.frombytes(column.cast("B"))
    return out


def owned_slice(column: Column, start: int, stop: int) -> array:
    """``column[start:stop]`` as a fresh owned ``array('q')``."""
    if type(column) is array:
        return column[start:stop]
    out = array("q")
    if start < stop:
        out.frombytes(column[start:stop].cast("B"))
    return out


def extend_from(out: array, column: Column, start: int = 0) -> None:
    """Append ``column[start:]`` to ``out`` without Python-level iteration."""
    if type(column) is array:
        out.extend(column if start == 0 else column[start:])
    elif start < len(column):
        out.frombytes(column[start:].cast("B"))


def intersect(a: Column, b: Column) -> array:
    """Sorted-merge intersection; gallops when one column dwarfs the other."""
    if len(a) > len(b):
        a, b = b, a
    la, lb = len(a), len(b)
    out = array("q")
    if la == 0:
        return out
    if lb >= GALLOP_RATIO * la:
        lo = 0
        for code in a:
            lo = bisect_left(b, code, lo)
            if lo == lb:
                break
            if b[lo] == code:
                out.append(code)
                lo += 1
        return out
    i = j = 0
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def union(a: Column, b: Column) -> array:
    """Sorted-merge union of two sorted duplicate-free columns."""
    if not a:
        return owned_copy(b)
    if not b:
        return owned_copy(a)
    la, lb = len(a), len(b)
    if min(la, lb) * GALLOP_RATIO <= max(la, lb):
        # skewed: binary-probe the small side, then one C-level sort of
        # the large column plus the genuinely new codes
        small, large = (a, b) if la < lb else (b, a)
        missing = [
            code for code in small
            if (pos := bisect_left(large, code)) == len(large) or large[pos] != code
        ]
        if not missing:
            return owned_copy(large)
        merged = owned_copy(large)
        merged.extend(missing)
        return array("q", sorted(merged))
    out = array("q")
    i = j = 0
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
    extend_from(out, a, i)
    extend_from(out, b, j)
    return out


def difference(a: Column, b: Column) -> array:
    """Sorted-merge difference ``a \\ b``; gallops when ``b`` is much larger."""
    if not a or not b:
        return owned_copy(a)
    la, lb = len(a), len(b)
    out = array("q")
    if lb >= GALLOP_RATIO * la:
        lo = 0
        for code in a:
            lo = bisect_left(b, code, lo)
            if lo == lb or b[lo] != code:
                out.append(code)
        return out
    i = j = 0
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x < y:
            out.append(x)
            i += 1
        elif x > y:
            j += 1
        else:
            i += 1
            j += 1
    extend_from(out, a, i)
    return out


def contains(column: Column, code: int) -> bool:
    """Membership on a sorted column via binary search."""
    pos = bisect_left(column, code)
    return pos < len(column) and column[pos] == code


def from_codes(codes: Iterable[int]) -> array:
    """Arbitrary codes → sorted duplicate-free column."""
    return array("q", sorted(set(codes)))


def column_from_set(codes: set[int]) -> array:
    """A known-unique code set → sorted column (no dedup pass)."""
    return array("q", sorted(codes))


def concat_sorted(columns: list[Column]) -> array:
    """Pairwise-disjoint sorted columns → one sorted column.

    Disjointness means no dedup pass is needed: concatenate and re-sort —
    the C sort exploits the pre-sorted runs.
    """
    merged = array("q")
    for column in columns:
        extend_from(merged, column)
    return array("q", sorted(merged))


def _scan_codes(pairs) -> set[int] | Column:
    """A PairSet's codes in whichever representation is cheapest to scan."""
    return pairs.codes if pairs.is_frozen() else pairs.code_set()


def compose(left, right, loops_only: bool = False) -> set[int]:
    """Hash-join composition on the packed middle ids (lazy output).

    ``left`` and ``right`` are :class:`~repro.core.pairset.PairSet`-shaped
    operands (duck-typed).  The right operand is grouped once by its
    packed source id — one machine-width int per key — then the left
    codes stream through it.  ``loops_only=True`` fuses the trailing
    ``∩ id`` (the paper's JOIN ID operator), probing only for ``(m, v)``
    on the right instead of emitting the full cross product.  Returns a
    plain code set: the sort is deferred to the consumer.
    """
    by_source: dict[int, list[int]] = {}
    for code in _scan_codes(right):
        key = code >> ID_BITS
        bucket = by_source.get(key)
        if bucket is None:
            by_source[key] = [code & ID_MASK]
        else:
            bucket.append(code & ID_MASK)
    out: set[int] = set()
    get = by_source.get
    add = out.add
    if loops_only:
        for code in _scan_codes(left):
            targets = get(code & ID_MASK)
            if targets is not None:
                v = code >> ID_BITS
                if v in targets:
                    add((v << ID_BITS) | v)
    else:
        for code in _scan_codes(left):
            targets = get(code & ID_MASK)
            if targets is not None:
                v_high = code & ID_HIGH_MASK
                for u in targets:
                    add(v_high | u)
    return out


def loops(pairs) -> set[int] | array:
    """The ``v == u`` subset (the ``∩ id`` filter), matching the backing.

    A lazy operand stays lazy (returns a set); a frozen one returns a
    column (already sorted — filtering preserves order).
    """
    if not pairs.is_frozen():
        return {
            c for c in pairs.code_set() if (c >> ID_BITS) == (c & ID_MASK)
        }
    return array(
        "q",
        (c for c in pairs.codes if (c >> ID_BITS) == (c & ID_MASK)),
    )
