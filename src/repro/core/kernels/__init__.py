"""Kernel backend selection: pure-Python merge loops or NumPy.

Every set-algebra primitive the hot paths run — PairSet
union/intersection/difference, membership, the hash-join compose, bulk
``from_codes`` packing, disjoint column concatenation — dispatches
through this package.  Two backends implement the contract:

* :mod:`.pure` — the original merge/gallop loops (always available);
* :mod:`.numpy_backend` — vectorized twins over zero-copy ``int64``
  views (present when ``numpy`` is importable; the ``repro[fast]``
  extra).

The backend is chosen **once at import**: ``REPRO_KERNELS=numpy|pure``
overrides, otherwise numpy is used when importable.  :func:`set_backend`
(the ``repro build/serve --kernels`` plumb-through) re-selects at
runtime *and* exports the choice into ``os.environ`` so spawned worker
processes — build shards, partition workers, the process-serving pool —
re-derive the same backend at their own import: a build must never mix
backends mid-protocol by accident (they interoperate, but benchmarks
and fingerprint comparisons want one declared backend per run).

Both backends return bit-identical columns for every shared primitive,
so the choice is invisible to results — only to wall-clock time.
"""

from __future__ import annotations

import os
import warnings
from array import array
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from types import ModuleType

from repro.core.kernels import pure

_ENV_VAR = "REPRO_KERNELS"

_BACKENDS: dict[str, ModuleType] = {"pure": pure}
try:  # pragma: no cover - exercised via the numpy-absent CI leg
    from repro.core.kernels import numpy_backend

    _BACKENDS["numpy"] = numpy_backend
except ImportError:  # pragma: no cover
    numpy_backend = None  # type: ignore[assignment]

Column = pure.Column


def available_backends() -> tuple[str, ...]:
    """The installable backend names, preferred first."""
    return tuple(name for name in ("numpy", "pure") if name in _BACKENDS)


def _initial_backend() -> str:
    requested = os.environ.get(_ENV_VAR, "").strip().lower()
    if requested:
        if requested in _BACKENDS:
            return requested
        if requested == "numpy":
            warnings.warn(
                f"{_ENV_VAR}=numpy requested but numpy is not importable; "
                "falling back to the pure backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return "pure"
        warnings.warn(
            f"ignoring unknown {_ENV_VAR}={requested!r} "
            f"(known: {', '.join(sorted(_BACKENDS))})",
            RuntimeWarning,
            stacklevel=2,
        )
    return "numpy" if "numpy" in _BACKENDS else "pure"


_ACTIVE = _initial_backend()


def active_backend() -> str:
    """The name of the backend primitives currently dispatch to."""
    return _ACTIVE


def backend_module() -> ModuleType:
    """The active backend module (for backend-specific kernels)."""
    return _BACKENDS[_ACTIVE]


def set_backend(name: str) -> str:
    """Select a backend by name; returns the previously active name.

    Also exports the choice into ``os.environ[REPRO_KERNELS]`` so worker
    processes spawned after this call select the same backend.
    """
    global _ACTIVE
    if name not in _BACKENDS:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown kernel backend {name!r} (available: {known})")
    previous = _ACTIVE
    _ACTIVE = name
    os.environ[_ENV_VAR] = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily select a backend (bench and equivalence tests)."""
    had_env = _ENV_VAR in os.environ
    previous_env = os.environ.get(_ENV_VAR)
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)
        if had_env:
            os.environ[_ENV_VAR] = previous_env  # type: ignore[arg-type]
        else:
            os.environ.pop(_ENV_VAR, None)


# ---------------------------------------------------------------------------
# dispatched primitives (the PairSet/parallel-facing contract)
# ---------------------------------------------------------------------------


def intersect(a: Column, b: Column) -> array:
    """Sorted duplicate-free intersection of two columns."""
    return _BACKENDS[_ACTIVE].intersect(a, b)


def union(a: Column, b: Column) -> array:
    """Sorted duplicate-free union of two columns."""
    return _BACKENDS[_ACTIVE].union(a, b)


def difference(a: Column, b: Column) -> array:
    """Sorted duplicate-free difference ``a \\ b`` of two columns."""
    return _BACKENDS[_ACTIVE].difference(a, b)


def contains(column: Column, code: int) -> bool:
    """Membership of ``code`` in a sorted column."""
    return _BACKENDS[_ACTIVE].contains(column, code)


def from_codes(codes: Iterable[int]) -> array:
    """Arbitrary codes → sorted duplicate-free column."""
    return _BACKENDS[_ACTIVE].from_codes(codes)


def column_from_set(codes: set[int]) -> array:
    """A known-unique code set → sorted column."""
    return _BACKENDS[_ACTIVE].column_from_set(codes)


def concat_sorted(columns: list[Column]) -> array:
    """Pairwise-disjoint sorted columns → one sorted column."""
    return _BACKENDS[_ACTIVE].concat_sorted(columns)


def compose(left, right, loops_only: bool = False) -> set[int] | array:
    """Relational composition of two PairSet-shaped operands.

    Pure returns a lazy code set; numpy returns the sorted column
    directly (same value — the physical state is backend-specific).
    """
    return _BACKENDS[_ACTIVE].compose(left, right, loops_only)


def loops(pairs) -> set[int] | array:
    """The ``v == u`` subset of a PairSet-shaped operand."""
    return _BACKENDS[_ACTIVE].loops(pairs)
