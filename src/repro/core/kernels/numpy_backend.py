"""NumPy set-algebra kernels: vectorized twins of :mod:`.pure`.

Sorted duplicate-free ``int64`` columns are NumPy's native habitat, so
every primitive here is a thin composition of ``np.frombuffer`` (zero
copy — owned ``array('q')`` columns and mapped ``.rsx`` memoryviews both
export the buffer protocol, so neither is ever deserialized),
``searchsorted``, ``intersect1d``/``union1d``/``setdiff1d`` with
``assume_unique=True``, and vectorized code packing/unpacking.

Contract: **bit-identical results.**  Every function shared with the
pure backend returns the same sorted duplicate-free column the
merge/gallop loops produce, so builds fingerprint equal under either
backend (``tests/test_kernels.py`` property-tests this).  The partition
and path-enumeration kernels additionally exploit the canonical
renumbering in :func:`repro.core.partition._assemble`: intermediate
class/signature ids may differ from the pure refinement's first-seen
ids (here they are assigned in sorted-code order), because signatures
are only ever compared for equality within a level and both assignments
are bijective relabelings — the assembled partition, and everything
built from it, is identical.

Two pitfalls this module works around:

* ``ID_HIGH_MASK`` exceeds ``int64``; the high half of a (non-negative)
  code is recovered as ``code - (code & ID_MASK)`` instead;
* class ids are shifted into the high word when packing decompositions,
  which requires ``class id < 2**31`` — the same bound the pure
  refinement's ``array('q')`` wire format already imposes.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable

import numpy as np

from repro.graph.interner import ID_BITS, ID_MASK

_MASK = np.int64(ID_MASK)
_EMPTY_ND = np.empty(0, dtype=np.int64)

#: Above this many distinct (inverse-extended) labels the per-label
#: probe sweep of :func:`enumerate_sequence_columns` loses to the pure
#: per-vertex loop (each level pays ``O(labels · frontier)`` probes
#: here versus ``O(Σ out-degree)`` there); callers fall back to pure.
MAX_ENUMERATION_LABELS = 64

Column = array | memoryview


def as_ndarray(column: Column | np.ndarray) -> np.ndarray:
    """A zero-copy int64 view over a column (owned or mapped)."""
    if isinstance(column, np.ndarray):
        return column
    if len(column) == 0:
        return _EMPTY_ND
    return np.frombuffer(column, dtype=np.int64)


def to_column(codes: np.ndarray) -> array:
    """An owned ``array('q')`` with ``codes``'s values (one memcpy)."""
    out = array("q")
    if len(codes):
        out.frombytes(memoryview(np.ascontiguousarray(codes)).cast("B"))
    return out


def _expand_ranges(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Gather indices for the ranges ``[starts[i], starts[i]+counts[i])``.

    The standard CSR-expansion trick: one ``arange`` minus the repeated
    exclusive prefix sums yields every range's local offsets at once.
    """
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + offsets


# ---------------------------------------------------------------------------
# set algebra on columns
# ---------------------------------------------------------------------------


def intersect(a: Column, b: Column) -> array:
    return to_column(
        np.intersect1d(as_ndarray(a), as_ndarray(b), assume_unique=True)
    )


def union(a: Column, b: Column) -> array:
    return to_column(np.union1d(as_ndarray(a), as_ndarray(b)))


def difference(a: Column, b: Column) -> array:
    return to_column(
        np.setdiff1d(as_ndarray(a), as_ndarray(b), assume_unique=True)
    )


def contains(column: Column, code: int) -> bool:
    codes = as_ndarray(column)
    pos = int(np.searchsorted(codes, code))
    return pos < len(codes) and int(codes[pos]) == code


def from_codes(codes: Iterable[int]) -> array:
    """Arbitrary codes → sorted duplicate-free column."""
    if isinstance(codes, (array, memoryview, np.ndarray)):
        return to_column(np.unique(as_ndarray(codes)))
    if isinstance(codes, (set, frozenset)):
        # Known unique: a straight sort beats unique's sort-plus-mask.
        nd = np.fromiter(codes, dtype=np.int64, count=len(codes))
        nd.sort()
        return to_column(nd)
    return to_column(np.unique(np.fromiter(codes, dtype=np.int64)))


def column_from_set(codes: set[int]) -> array:
    nd = np.fromiter(codes, dtype=np.int64, count=len(codes))
    nd.sort()
    return to_column(nd)


def concat_sorted(columns: list[Column]) -> array:
    """Pairwise-disjoint sorted columns → one sorted column."""
    if not columns:
        return array("q")
    merged = np.concatenate([as_ndarray(column) for column in columns])
    merged.sort()
    return to_column(merged)


def compose(left, right, loops_only: bool = False) -> array:
    """Sort-merge-join composition on the packed middle ids.

    The vectorized twin of the pure backend's hash join: the right
    column is already clustered by its packed source id, so per left
    code a ``searchsorted`` range over the unpacked right sources
    replaces the hash probe, and the cross products materialize through
    one CSR expansion.  Unlike the pure kernel this returns the *sorted
    column* directly — ``np.unique`` is the dedup — so the resulting
    PairSet is born frozen (same value, different physical state).
    """
    lhs = as_ndarray(left.codes)
    rhs = as_ndarray(right.codes)
    if not len(lhs) or not len(rhs):
        return array("q")
    mids = lhs & _MASK
    if loops_only:
        # Only (m, v) can close a loop for left code (v, m): probe the
        # right column for the swapped codes, no expansion needed.
        sources = lhs >> ID_BITS
        probes = (mids << ID_BITS) | sources
        pos = np.minimum(np.searchsorted(rhs, probes), len(rhs) - 1)
        closed = np.unique(sources[rhs[pos] == probes])
        return to_column((closed << ID_BITS) | closed)
    rhs_sources = rhs >> ID_BITS
    lo = np.searchsorted(rhs_sources, mids, side="left")
    hi = np.searchsorted(rhs_sources, mids, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return array("q")
    gather = _expand_ranges(lo, counts, total)
    highs = lhs - mids
    targets = rhs[gather] & _MASK
    # Dedup: the join output is grouped by left source already, so when
    # the (distinct sources) x (target id range) grid is not much larger
    # than the row count, a presence bitmap + row-major np.nonzero beats
    # np.unique's full sort — nonzero scans in exactly the packed-code
    # order.  Sparse/wide outputs fall back to the sort.
    width = int(targets.max()) + 1
    sources, inverse = np.unique(highs, return_inverse=True)
    if len(sources) * width <= 4 * total + 4096:
        grid = np.zeros((len(sources), width), dtype=bool)
        grid[np.repeat(inverse, counts), targets] = True
        rows, cols = np.nonzero(grid)
        return to_column(sources[rows] | cols)
    out = np.repeat(highs, counts) | targets
    return to_column(np.unique(out))


def loops(pairs) -> array:
    """The ``v == u`` subset of a PairSet-shaped operand, as a column."""
    codes = as_ndarray(pairs.codes)
    return to_column(codes[(codes >> ID_BITS) == (codes & _MASK)])


# ---------------------------------------------------------------------------
# partition refinement (Algorithm 1's per-level signature build)
# ---------------------------------------------------------------------------


def level1_columns(view) -> tuple[np.ndarray, np.ndarray, int]:
    """Vectorized level-1 code classing: ``(codes, classes, count)``.

    Groups the inverse-extended triples by pair code with one lexsort,
    then keys each pair's class on ``(loop flag, label slice)`` — the
    sorted duplicate-free label run is bijective with the pure
    implementation's frozenset, so the grouping is identical (class ids
    are assigned in sorted-code order rather than dict order; see the
    module docstring for why that cannot be observed).
    """
    triples = view.triples
    if not triples:
        return _EMPTY_ND, _EMPTY_ND, 0
    t = np.asarray(triples, dtype=np.int64)
    v, u, lab = t[:, 0], t[:, 1], t[:, 2]
    codes = np.concatenate(((v << ID_BITS) | u, (u << ID_BITS) | v))
    labels = np.concatenate((lab, -lab))
    order = np.lexsort((labels, codes))
    codes = codes[order]
    labels = labels[order]
    keep = np.empty(len(codes), dtype=bool)
    keep[0] = True
    keep[1:] = (codes[1:] != codes[:-1]) | (labels[1:] != labels[:-1])
    codes = codes[keep]
    labels = np.ascontiguousarray(labels[keep])
    first = np.empty(len(codes), dtype=bool)
    first[0] = True
    first[1:] = codes[1:] != codes[:-1]
    starts = np.flatnonzero(first)
    unique_codes = codes[starts]
    ends = np.append(starts[1:], len(codes))
    is_loop = (unique_codes >> ID_BITS) == (unique_codes & _MASK)
    ids: dict[tuple[bool, bytes], int] = {}
    assign = ids.setdefault
    classes = np.empty(len(unique_codes), dtype=np.int64)
    for i in range(len(unique_codes)):
        key = (bool(is_loop[i]), labels[starts[i] : ends[i]].tobytes())
        classes[i] = assign(key, len(ids))
    return unique_codes, classes, len(ids)


def edge_csr(
    codes: np.ndarray, classes: np.ndarray, num_ids: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The class-annotated level-1 adjacency in CSR form.

    The sorted code column is already clustered by source id, so the
    CSR is one ``bincount``: ``indptr`` over sources, aligned target
    and edge-class arrays as the payload.
    """
    indptr = np.zeros(num_ids + 1, dtype=np.int64)
    if len(codes):
        counts = np.bincount(codes >> ID_BITS, minlength=num_ids)
        np.cumsum(counts, out=indptr[1:])
    return indptr, codes & _MASK, classes


def refine_level(
    codes: np.ndarray,
    classes: np.ndarray,
    csr: tuple[np.ndarray, np.ndarray, np.ndarray],
    want_table: bool = False,
) -> tuple[np.ndarray, np.ndarray, int, tuple[array, array] | None]:
    """One refinement level over sorted ``(codes, classes)`` columns.

    Vectorizes the composition sweep and the per-pair decomposition
    grouping (expansion, dedup, and boundary detection are all one
    lexsort pass); signature ids are then assigned with one cheap dict
    probe per *pair* — keys are ``(prev class, loop flag, bytes)``
    where the bytes are the pair's sorted duplicate-free decomposition
    run, bijective with the pure signature's frozenset.

    Returns ``(new codes, new classes, signature count, table)`` where
    ``table`` (only when ``want_table``, i.e. inside a partition shard
    worker) is the wire-format ``(meta, decomps)`` column pair of
    :func:`repro.core.partition._partition_shard_worker` — three meta
    slots per signature in local-id order, decompositions concatenated.
    """
    indptr, targets, edge_classes = csr
    mids = codes & _MASK
    lo = indptr[mids]
    counts = indptr[mids + np.int64(1)] - lo
    total = int(counts.sum())
    if total:
        gather = _expand_ranges(lo, counts, total)
        pairs = np.repeat(codes - mids, counts) | targets[gather]
        decomps = np.repeat(classes << ID_BITS, counts) | edge_classes[gather]
        order = np.lexsort((decomps, pairs))
        pairs = pairs[order]
        decomps = decomps[order]
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        keep[1:] = (pairs[1:] != pairs[:-1]) | (decomps[1:] != decomps[:-1])
        pairs = pairs[keep]
        decomps = np.ascontiguousarray(decomps[keep])
        first = np.empty(len(pairs), dtype=bool)
        first[0] = True
        first[1:] = pairs[1:] != pairs[:-1]
        starts = np.flatnonzero(first)
        emitted = pairs[starts]
        ends = np.append(starts[1:], len(pairs))
    else:
        decomps = _EMPTY_ND
        starts = ends = _EMPTY_ND
        emitted = _EMPTY_ND
    # Previous class of each emitted pair: -1 when first reached here.
    if len(codes) and len(emitted):
        pos = np.minimum(np.searchsorted(codes, emitted), len(codes) - 1)
        known = codes[pos] == emitted
        prev = np.where(known, classes[pos], np.int64(-1))
    else:
        prev = np.full(len(emitted), -1, dtype=np.int64)
    emitted_loop = (emitted >> ID_BITS) == (emitted & _MASK)
    # Current pairs that composed into nothing keep an empty
    # decomposition (they still carry their previous class forward).
    if len(emitted):
        pos = np.minimum(np.searchsorted(emitted, codes), len(emitted) - 1)
        rest_mask = emitted[pos] != codes
    else:
        rest_mask = np.ones(len(codes), dtype=bool)
    rest_codes = codes[rest_mask]
    rest_prev = classes[rest_mask]
    rest_loop = (rest_codes >> ID_BITS) == (rest_codes & _MASK)
    ids: dict[tuple[int, bool, bytes], int] = {}
    emitted_sigs = np.empty(len(emitted), dtype=np.int64)
    meta: list[int] = []
    slices: list[np.ndarray] = []
    for i in range(len(emitted)):
        run = decomps[starts[i] : ends[i]]
        key = (int(prev[i]), bool(emitted_loop[i]), run.tobytes())
        sig = ids.get(key)
        if sig is None:
            sig = len(ids)
            ids[key] = sig
            if want_table:
                meta.extend((key[0], int(key[1]), len(run)))
                slices.append(run)
        emitted_sigs[i] = sig
    rest_sigs = np.empty(len(rest_codes), dtype=np.int64)
    for i in range(len(rest_codes)):
        key = (int(rest_prev[i]), bool(rest_loop[i]), b"")
        sig = ids.get(key)
        if sig is None:
            sig = len(ids)
            ids[key] = sig
            if want_table:
                meta.extend((key[0], int(key[1]), 0))
        rest_sigs[i] = sig
    new_codes = np.concatenate((emitted, rest_codes))
    new_sigs = np.concatenate((emitted_sigs, rest_sigs))
    order = np.argsort(new_codes, kind="stable")
    table = None
    if want_table:
        packed = np.concatenate(slices) if slices else _EMPTY_ND
        table = (array("q", meta), to_column(packed))
    return new_codes[order], new_sigs[order], len(ids), table


def apply_remap(remap: Column, signature_ids: np.ndarray) -> np.ndarray:
    """Rewrite local signature ids through the parent's remap column."""
    return as_ndarray(remap)[signature_ids]


def source_ids(codes: np.ndarray) -> list[int]:
    """The distinct source ids of a code column, ascending."""
    return np.unique(codes >> ID_BITS).tolist()


def sorted_columns(
    codes: Column, classes: Column
) -> tuple[np.ndarray, np.ndarray]:
    """Wire columns → aligned ndarrays sorted by code.

    The shard-worker entry point: the parent ships the level-1
    assignment in whatever order its backend produced (the pure path
    ships dict order), and the CSR build below requires code order.
    """
    code_nd = as_ndarray(codes)
    class_nd = as_ndarray(classes)
    order = np.argsort(code_nd)
    return code_nd[order], class_nd[order]


def filter_by_sources(
    codes: np.ndarray, classes: np.ndarray, sources: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Restrict an assignment to the pairs anchored at ``sources``."""
    mask = np.isin(codes >> ID_BITS, np.asarray(sources, dtype=np.int64))
    return codes[mask], classes[mask]


def merged_member_columns(
    column_pairs: list[tuple[Column, Column]],
) -> list[array]:
    """Shard-final ``(codes, classes)`` column pairs → member columns.

    Shards anchor disjoint sources and class ids are already global, so
    the assignments concatenate directly into one grouping pass.
    """
    if not column_pairs:
        return []
    codes = np.concatenate([as_ndarray(codes) for codes, _ in column_pairs])
    classes = np.concatenate(
        [as_ndarray(classes) for _, classes in column_pairs]
    )
    return class_member_columns(codes, classes)


def unify_tables(
    tables: list[tuple[Column, Column]],
) -> tuple[list[array], int]:
    """Parent-side signature unification over shard tables (satellite of
    the PR-4 protocol): one remap column per shard, plus the level's
    global class count.

    Replaces the per-signature frozenset folds with slice views into the
    shipped decomposition columns — workers send each signature's
    decompositions sorted and duplicate-free, so the raw byte run is
    already a canonical set key.
    """
    global_ids: dict[tuple[int, int, bytes], int] = {}
    assign = global_ids.setdefault
    remaps: list[array] = []
    for meta_column, decomps_column in tables:
        meta = as_ndarray(meta_column).reshape(-1, 3)
        decomps = as_ndarray(decomps_column)
        bounds = np.zeros(len(meta) + 1, dtype=np.int64)
        np.cumsum(meta[:, 2], out=bounds[1:])
        remap = array("q")
        for row in range(len(meta)):
            key = (
                int(meta[row, 0]),
                int(meta[row, 1]),
                decomps[bounds[row] : bounds[row + 1]].tobytes(),
            )
            remap.append(assign(key, len(global_ids)))
        remaps.append(remap)
    return remaps, len(global_ids)


def class_member_columns(codes: np.ndarray, classes: np.ndarray) -> list[array]:
    """Group a final assignment into sorted member-code columns."""
    if not len(codes):
        return []
    order = np.lexsort((codes, classes))
    codes = codes[order]
    classes = classes[order]
    first = np.empty(len(classes), dtype=bool)
    first[0] = True
    first[1:] = classes[1:] != classes[:-1]
    starts = np.flatnonzero(first)
    ends = np.append(starts[1:], len(codes))
    return [to_column(codes[s:e]) for s, e in zip(starts, ends)]


# ---------------------------------------------------------------------------
# path enumeration (L≤k traversals)
# ---------------------------------------------------------------------------

#: Per-view adjacency caches, keyed by view identity.  Strong references
#: to the two most recent views: the serial and sharded builders each
#: traverse one snapshot many times (once per interest sequence / per
#: level), and holding the view pins its id against reuse.
_VIEW_CACHES: list[tuple[object, dict]] = []


def _view_cache(view) -> dict:
    for cached_view, cache in _VIEW_CACHES:
        if cached_view is view:
            return cache
    cache: dict = {}
    _VIEW_CACHES.insert(0, (view, cache))
    del _VIEW_CACHES[2:]
    return cache


def _label_adjacency(view) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-label CSR adjacency ``label → (indptr, targets, codes)``.

    Built once per view from the triples (inverse-extended, deduped)
    with one lexsort; ``codes`` is the label's full sorted relation
    column, which makes length-1 relations free.
    """
    cache = _view_cache(view)
    adjacency = cache.get("labels")
    if adjacency is not None:
        return adjacency
    adjacency = {}
    triples = view.triples
    if triples:
        num_ids = view.num_ids
        t = np.asarray(triples, dtype=np.int64)
        sources = np.concatenate((t[:, 0], t[:, 1]))
        targets = np.concatenate((t[:, 1], t[:, 0]))
        labels = np.concatenate((t[:, 2], -t[:, 2]))
        order = np.lexsort((targets, sources, labels))
        sources = sources[order]
        targets = targets[order]
        labels = labels[order]
        keep = np.empty(len(labels), dtype=bool)
        keep[0] = True
        keep[1:] = (
            (labels[1:] != labels[:-1])
            | (sources[1:] != sources[:-1])
            | (targets[1:] != targets[:-1])
        )
        sources = sources[keep]
        targets = targets[keep]
        labels = labels[keep]
        first = np.empty(len(labels), dtype=bool)
        first[0] = True
        first[1:] = labels[1:] != labels[:-1]
        starts = np.flatnonzero(first)
        ends = np.append(starts[1:], len(labels))
        for s, e in zip(starts, ends):
            src = sources[s:e]
            dst = np.ascontiguousarray(targets[s:e])
            indptr = np.zeros(num_ids + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=num_ids), out=indptr[1:])
            adjacency[int(labels[s])] = (indptr, dst, (src << ID_BITS) | dst)
    cache["labels"] = adjacency
    return adjacency


def _expand_step(
    codes: np.ndarray, indptr: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Extend pair codes by one adjacency step; output NOT deduped."""
    mids = codes & _MASK
    lo = indptr[mids]
    counts = indptr[mids + np.int64(1)] - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_ND
    gather = _expand_ranges(lo, counts, total)
    return np.repeat(codes - mids, counts) | targets[gather]


def sequence_codes_from_sources(view, sources, seq) -> array:
    """Vectorized twin of :func:`repro.core.paths.sequence_codes_from_sources`."""
    adjacency = _label_adjacency(view)
    entry = adjacency.get(seq[0])
    if entry is None:
        return array("q")
    indptr, targets, _ = entry
    src = np.fromiter(sources, dtype=np.int64)
    src = np.unique(src)
    lo = indptr[src]
    counts = indptr[src + np.int64(1)] - lo
    total = int(counts.sum())
    if total == 0:
        return array("q")
    gather = _expand_ranges(lo, counts, total)
    # (source, target) rows are unique within one label and emitted in
    # sorted source-major order: already a canonical column.
    codes = np.repeat(src << ID_BITS, counts) | targets[gather]
    for label in seq[1:]:
        entry = adjacency.get(label)
        if entry is None:
            return array("q")
        codes = _expand_step(codes, entry[0], entry[1])
        if not len(codes):
            return array("q")
        codes = np.unique(codes)
    return to_column(codes)


def reachable_codes(view, k: int) -> array:
    """Vectorized ``P≤k`` sweep over the all-label pair adjacency."""
    cache = _view_cache(view)
    pair_adjacency = cache.get("pairs")
    if pair_adjacency is None:
        triples = view.triples
        if not triples:
            return array("q")
        t = np.asarray(triples, dtype=np.int64)
        codes = np.unique(
            np.concatenate(
                (
                    (t[:, 0] << ID_BITS) | t[:, 1],
                    (t[:, 1] << ID_BITS) | t[:, 0],
                )
            )
        )
        indptr = np.zeros(view.num_ids + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(codes >> ID_BITS, minlength=view.num_ids), out=indptr[1:]
        )
        pair_adjacency = cache["pairs"] = (codes, indptr, codes & _MASK)
    level1, indptr, targets = pair_adjacency
    if not len(level1):
        return array("q")
    known = level1
    frontier = level1
    for _ in range(1, k):
        extended = _expand_step(frontier, indptr, targets)
        if not len(extended):
            break
        frontier = np.setdiff1d(np.unique(extended), known, assume_unique=True)
        if not len(frontier):
            break
        known = np.union1d(known, frontier)
    return to_column(known)


def enumerate_sequence_columns(view, k: int) -> dict | None:
    """Vectorized sequence enumeration: ``seq → sorted code column``.

    Returns ``None`` when the label alphabet exceeds
    :data:`MAX_ENUMERATION_LABELS` (the caller falls back to the pure
    per-vertex frontier loop — see the constant's docstring).
    """
    adjacency = _label_adjacency(view)
    if len(adjacency) > MAX_ENUMERATION_LABELS:
        return None
    labels = sorted(adjacency)
    sequences: dict[tuple[int, ...], np.ndarray] = {}
    frontier: dict[tuple[int, ...], np.ndarray] = {}
    for label in labels:
        column = adjacency[label][2]
        sequences[(label,)] = frontier[(label,)] = column
    for _ in range(1, k):
        extended: dict[tuple[int, ...], np.ndarray] = {}
        for seq, codes in frontier.items():
            for label in labels:
                indptr, targets, _ = adjacency[label]
                grown = _expand_step(codes, indptr, targets)
                if len(grown):
                    extended[seq + (label,)] = np.unique(grown)
        for seq, codes in extended.items():
            known = sequences.get(seq)
            sequences[seq] = codes if known is None else np.union1d(known, codes)
        frontier = extended
        if not frontier:
            break
    return sequences
