"""Index statistics and the paper's size/pruning accounting.

Collects the quantities the evaluation section reports:

* Table III — class-id vs s-t-pair counts flowing through a query
  (via :class:`repro.core.executor.ExecutionStats`);
* Table IV / Fig. 12 / Fig. 15 — index sizes under the 32-bit-id size
  model and construction times;
* Table II — dataset overview rows.

Works uniformly over every index type in this repository through duck
typing (each exposes ``name``, ``k``, ``num_classes``/``num_pairs`` or
entry counts, and ``size_bytes``).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.graph.digraph import LabeledDigraph


@dataclass(frozen=True)
class IndexStats:
    """One Table IV row: identification, size, and build cost."""

    name: str
    k: int
    num_classes: int | None
    num_pairs: int
    num_sequences: int
    size_bytes: int
    build_seconds: float
    #: kernel backend active when the index was built ("numpy"/"pure") —
    #: timings are only comparable within one backend.
    kernels: str = "pure"

    def describe(self) -> str:
        """Human-readable single-line rendering."""
        classes = "-" if self.num_classes is None else str(self.num_classes)
        return (
            f"{self.name}(k={self.k}): |C|={classes} |P|={self.num_pairs} "
            f"|seqs|={self.num_sequences} size={format_bytes(self.size_bytes)} "
            f"build={self.build_seconds:.3f}s kernels={self.kernels}"
        )


def build_with_stats(builder: Callable[[], object], name: str | None = None) -> tuple[object, IndexStats]:
    """Run an index builder, timing it and collecting an IndexStats row."""
    start = time.perf_counter()
    index = builder()
    elapsed = time.perf_counter() - start
    return index, stats_of(index, build_seconds=elapsed, name=name)


def stats_of(index: object, build_seconds: float = 0.0, name: str | None = None) -> IndexStats:
    """Extract an :class:`IndexStats` row from any index object."""
    from repro.core import kernels

    return IndexStats(
        name=name if name is not None else getattr(index, "name", type(index).__name__),
        k=getattr(index, "k", 0),
        num_classes=getattr(index, "num_classes", None),
        num_pairs=getattr(index, "num_pairs", 0),
        num_sequences=getattr(index, "num_sequences", 0),
        size_bytes=index.size_bytes() if hasattr(index, "size_bytes") else 0,
        build_seconds=build_seconds,
        kernels=kernels.active_backend(),
    )


def format_bytes(size: int) -> str:
    """Render a byte count the way the paper's Table IV does (K/M/G)."""
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.2f}GB"  # pragma: no cover


@dataclass(frozen=True)
class DatasetStats:
    """One Table II row for a built graph."""

    name: str
    vertices: int
    edges_extended: int
    labels_extended: int
    max_degree: int

    def describe(self) -> str:
        """Human-readable single-line rendering."""
        return (
            f"{self.name}: |V|={self.vertices} |E|={self.edges_extended} "
            f"|L|={self.labels_extended} d={self.max_degree}"
        )


def dataset_stats(name: str, graph: LabeledDigraph) -> DatasetStats:
    """Compute the Table II conventions: |E| and |L| include inverses."""
    return DatasetStats(
        name=name,
        vertices=graph.num_vertices,
        edges_extended=graph.num_extended_edges,
        labels_extended=2 * len(graph.labels_used()),
        max_degree=graph.max_degree(),
    )
