"""k-path-bisimulation partitioning of s-t pairs (Algorithm 1).

The paper partitions ``P≤k`` into CPQ_k-equivalence classes using
k-path-bisimulation (Def. 4.1) computed bottom-up (Sec. IV-C): level-1
blocks group pairs by their direct edge labels, and level-``i`` blocks
refine level-``i-1`` blocks by the *decompositions* of each pair — the set
of ``(block of (v,m) at level i-1, block of (m,u) at level 1)`` over all
midpoints ``m``.

We realize the paper's "sequence of block identifiers
``⟨b1(v,u),…,bk(v,u)⟩``" as **cumulative class ids**: the level-``i``
signature folds the pair's level-``i-1`` class in, so the level-``k`` id
alone identifies the full sequence.  This sidesteps the ``Null``-block
bookkeeping of the pseudo-code while producing a partition at least as
fine as the paper's — and any refinement of a correct partition is still
correct for the index (the paper's own lazy maintenance relies on this,
Prop. 4.2).  The two invariants index correctness actually needs — all
pairs of a class share the same ``L≤k`` set, and agree on ``v == u`` —
are enforced by construction and property-tested.

The computation runs entirely in the interned code space: pairs are
64-bit codes, decompositions pack ``(prev_class, edge_class)`` into one
int, and signatures hash ints instead of nested tuples.
:func:`compute_partition` decodes the result for the public tuple-based
API; the index builders consume :func:`compute_partition_codes` directly.

**Parallel refinement** (``workers`` > 1): every structure a level
touches is anchored at the pair's *source id* — pair ``(v, m)`` only
ever composes into pairs ``(v, u)`` with the same source ``v`` — so the
source axis shards the refinement sweep with no shared mutable state,
exactly as the index builders shard (:mod:`repro.core.parallel`).  Each
persistent worker process owns one round-robin shard of sources and
keeps its pair → class map *local* across levels; per level it ships
only a packed signature table (``array('q')`` columns) to the parent,
which unifies signatures into global class ids and broadcasts back one
small remap array per shard.  The only globally shared inputs — the
level-1 partition and its class-annotated adjacency — are static across
levels and ship once at worker start.  A final canonical renumbering
(classes ordered by smallest member code) makes the result *identical*
to the serial build, class ids included; graphs below
:data:`PARALLEL_MIN_PAIRS` level-1 pairs fall back to the serial loop,
whose per-level cost is smaller than the worker round-trip.
"""

from __future__ import annotations

import contextlib
import traceback
from array import array
from dataclasses import dataclass
from multiprocessing.connection import Connection

from repro.core import kernels
from repro.core.pairset import PairSet
from repro.core.parallel import resolve_workers, shard_processes, shard_round_robin
from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph, Pair
from repro.graph.interner import ID_BITS, ID_HIGH_MASK, ID_MASK, VertexInterner

#: A level signature: ``(previous class, loop flag, decomposition set)``.
#: ``previous class`` is ``-1`` for pairs first reached at this level.
_Signature = tuple[int, int, frozenset[int]]

#: Minimum level-1 pair count for the sharded parallel refinement.
#: Below it the per-level worker round-trip (process start, signature
#: shipping, remap broadcast — ~10 ms on the bench machine) exceeds the
#: serial per-level cost, so ``workers`` is quietly ignored; the
#: ``repro bench-concurrent`` graph (~4k level-1 pairs, ~1 s serial
#: partition at k=3) sits comfortably above the threshold.
PARALLEL_MIN_PAIRS = 2048


@dataclass
class PathPartition:
    """The CPQ_k-equivalence partition of the non-empty-path pairs.

    Attributes:
        k: the path-length bound the partition was computed for.
        class_of: pair → class id, over all pairs with a path of length 1..k.
        blocks: class id → sorted list of member pairs.
        loop_classes: ids of classes whose pairs are loops (``v == u``).
        level_class_counts: number of blocks per level (diagnostics; the
            per-level growth is what Fig. 3's two rows illustrate).
    """

    k: int
    class_of: dict[Pair, int]
    blocks: dict[int, list[Pair]]
    loop_classes: frozenset[int]
    level_class_counts: list[int]

    @property
    def num_classes(self) -> int:
        """``|C|``, the paper's class-count statistic (Table III)."""
        return len(self.blocks)

    @property
    def num_pairs(self) -> int:
        """``|P≤k|`` restricted to non-empty paths."""
        return len(self.class_of)


@dataclass
class CodePartition:
    """The same partition in columnar form (pair codes, not tuples)."""

    k: int
    class_of: dict[int, int]
    blocks: dict[int, PairSet]
    loop_classes: frozenset[int]
    level_class_counts: list[int]

    @property
    def num_classes(self) -> int:
        return len(self.blocks)

    @property
    def num_pairs(self) -> int:
        return len(self.class_of)


def _level1_code_classes(graph: LabeledDigraph) -> dict[int, int]:
    """Level-1 partition over pair codes: ``(v==u, L1(v,u))`` grouping.

    This realizes Def. 4.1 conditions (1) and (2): two pairs are
    1-path-bisimilar iff they agree on loop-ness and on the extended edge
    labels between them (the inverse-extension makes condition 2's
    both-direction clauses a single label-set comparison).
    """
    view = graph.interned()
    label_sets: dict[int, set[int]] = {}
    for vid, uid, lab in view.triples:
        code = (vid << ID_BITS) | uid
        entry = label_sets.get(code)
        if entry is None:
            label_sets[code] = {lab}
        else:
            entry.add(lab)
        inverse_code = (uid << ID_BITS) | vid
        entry = label_sets.get(inverse_code)
        if entry is None:
            label_sets[inverse_code] = {-lab}
        else:
            entry.add(-lab)
    ids: dict[tuple[bool, frozenset[int]], int] = {}
    classes: dict[int, int] = {}
    for code, labels in label_sets.items():
        signature = ((code >> ID_BITS) == (code & ID_MASK), frozenset(labels))
        class_id = ids.setdefault(signature, len(ids))
        classes[code] = class_id
    return classes


def level1_classes(graph: LabeledDigraph) -> dict[Pair, int]:
    """Level-1 partition, decoded to vertex pairs (public API)."""
    decode = graph.interner.decode_pair
    return {decode(code): class_id for code, class_id in _level1_code_classes(graph).items()}


def _class_annotated_adjacency(level1: dict[int, int], num_ids: int) -> list[list[tuple[int, int]]]:
    """Level-1 adjacency annotated with classes: ``m → [(u, C1(m, u))]``.

    Static across levels — built once, reused by every level's
    composition step (and shipped once to each partition worker).
    """
    annotated: list[list[tuple[int, int]]] = [[] for _ in range(num_ids)]
    for code, class_id in level1.items():
        annotated[code >> ID_BITS].append((code & ID_MASK, class_id))
    return annotated


def _refine_level(
    current: dict[int, int],
    edge_class_by_source: list[list[tuple[int, int]]],
) -> tuple[dict[int, int], list[_Signature]]:
    """One refinement level of Algorithm 1 over one shard of pairs.

    Composes every pair ``(v, m)`` of ``current`` with the
    class-annotated level-1 edges out of ``m`` (decomposition entries
    pack ``prev_class << 32 | edge_class`` into single ints, so each
    level hashes flat integers rather than nested tuples) and re-groups
    the resulting pairs by ``(previous class, loop flag, decomposition
    set)``.  Returns the pair → signature-id map (ids dense, in
    first-seen order) and the signature table in id order.

    The per-level work is ``O(d · |P≤i-1|)`` plus the grouping, matching
    Theorem 4.3's bound (grouping here is a hash aggregation rather than
    the paper's sort — same asymptotics, simpler in Python).  This is
    the single implementation behind both the serial loop and the
    sharded partition workers — the parallel == serial contract depends
    on them never diverging.
    """
    high_mask = ID_HIGH_MASK
    id_mask = ID_MASK
    # Duplicate decomposition entries are appended freely and collapsed
    # by the signature's frozenset — cheaper than hashing a set per add.
    decompositions: dict[int, list[int]] = {}
    get_bucket = decompositions.get
    for code, prev_class in current.items():
        annotated = edge_class_by_source[code & id_mask]
        if not annotated:
            continue
        v_high = code & high_mask
        prev_high = prev_class << ID_BITS
        for u, edge_class in annotated:
            pair_code = v_high | u
            decomposition = prev_high | edge_class
            bucket = get_bucket(pair_code)
            if bucket is None:
                decompositions[pair_code] = [decomposition]
            else:
                bucket.append(decomposition)
    ids: dict[_Signature, int] = {}
    assign = ids.setdefault
    signatures: list[_Signature] = []
    refined: dict[int, int] = {}
    get_prev = current.get
    for code, bucket in decompositions.items():
        signature = (
            get_prev(code, -1),
            1 if (code >> ID_BITS) == (code & id_mask) else 0,
            frozenset(bucket),
        )
        sig_id = assign(signature, len(ids))
        if sig_id == len(signatures):
            signatures.append(signature)
        refined[code] = sig_id
    empty_decomposition: frozenset[int] = frozenset()
    for code, prev_class in current.items():
        if code not in decompositions:
            signature = (
                prev_class,
                1 if (code >> ID_BITS) == (code & id_mask) else 0,
                empty_decomposition,
            )
            sig_id = assign(signature, len(ids))
            if sig_id == len(signatures):
                signatures.append(signature)
            refined[code] = sig_id
    return refined, signatures


def _block_columns(current: dict[int, int]) -> list[array]:
    """Group a final pair → class map into sorted member-code columns."""
    grouped: dict[int, list[int]] = {}
    for code, class_id in current.items():
        bucket = grouped.get(class_id)
        if bucket is None:
            grouped[class_id] = [code]
        else:
            bucket.append(code)
    # Block members are unique by construction; sort without a dedup pass.
    return [array("q", sorted(codes)) for codes in grouped.values()]


def _assemble(
    k: int,
    block_columns: list[array],
    level_counts: list[int],
    interner: VertexInterner,
) -> CodePartition:
    """Renumber the final blocks canonically and build the result.

    Classes are ordered by their smallest member code — a total order
    independent of refinement iteration order *and* shard count (blocks
    are disjoint, so the minima are distinct) — which makes the serial
    and sharded paths return identical ``CodePartition``s, class ids
    included, and hence identical ``index_fingerprint``s downstream.
    """
    ordered = sorted(block_columns, key=lambda column: column[0])
    class_of: dict[int, int] = {}
    blocks: dict[int, PairSet] = {}
    loop_classes: list[int] = []
    for class_id, column in enumerate(ordered):
        blocks[class_id] = PairSet.from_sorted_codes(column, interner)
        for code in column:
            class_of[code] = class_id
        # Loop-ness is part of every level signature, so the first
        # member's flag is the whole block's flag.
        first = column[0]
        if first >> ID_BITS == first & ID_MASK:
            loop_classes.append(class_id)
    return CodePartition(
        k=k,
        class_of=class_of,
        blocks=blocks,
        loop_classes=frozenset(loop_classes),
        level_class_counts=level_counts,
    )


# ---------------------------------------------------------------------------
# sharded refinement (worker protocol)
# ---------------------------------------------------------------------------


def _partition_shard_worker(
    task: tuple[int, list[int], int, array, array, object],
    conn: Connection,
) -> None:
    """Refine one shard of sources through levels ``2..k`` (worker side).

    Task: ``(k, shard sources, num_ids, level-1 codes, level-1 classes,
    injector)`` — the packed level-1 partition is the only graph-derived
    state a worker needs (refinement never touches the graph again), so
    nothing larger ever crosses the process boundary; ``injector`` is the
    chaos-run fault source (``None`` in production), consulted at the
    ``partition.shard`` site once per level so failures land mid-protocol
    too.  Per level the
    worker sends its packed signature table — ``("sigs", meta, decomps)``
    with three ``meta`` slots ``(prev_class, loop_flag, decomposition
    count)`` per local signature and the sorted decompositions
    concatenated in ``decomps`` — then receives the parent's remap array
    (local signature id → global class id) and rewrites its local pair
    map in place.  After level ``k`` it ships its final assignment as
    ``("blocks", codes, classes)`` — two aligned packed columns, the
    cheapest wire form (dicts of per-class arrays pickled an object per
    class, which dominated the protocol cost on discrete partitions).
    """
    k, shard_sources, num_ids, codes, classes, injector = task
    try:
        if kernels.active_backend() == "numpy":
            # Same wire protocol, vectorized refinement: the table rows
            # a numpy worker ships are content-equal to a pure worker's
            # (decompositions sorted and duplicate-free), so the parent
            # unifies mixed-backend shards without knowing the difference.
            nk = kernels.backend_module()
            all_codes, all_classes = nk.sorted_columns(codes, classes)
            csr = nk.edge_csr(all_codes, all_classes, num_ids)
            shard_codes, shard_classes = nk.filter_by_sources(
                all_codes, all_classes, shard_sources
            )
            for _ in range(2, k + 1):
                if injector is not None:
                    injector.fail("partition.shard")  # type: ignore[attr-defined]
                shard_codes, signature_ids, _, table = nk.refine_level(
                    shard_codes, shard_classes, csr, want_table=True
                )
                conn.send(("sigs", table[0], table[1]))
                remap = conn.recv()
                shard_classes = nk.apply_remap(remap, signature_ids)
            conn.send(
                ("blocks", nk.to_column(shard_codes), nk.to_column(shard_classes))
            )
            return
        level1 = dict(zip(codes, classes, strict=True))
        edge_class_by_source = _class_annotated_adjacency(level1, num_ids)
        shard = set(shard_sources)
        current = {code: class_id for code, class_id in level1.items() if (code >> ID_BITS) in shard}
        for _ in range(2, k + 1):
            if injector is not None:
                injector.fail("partition.shard")  # type: ignore[attr-defined]
            current, signatures = _refine_level(current, edge_class_by_source)
            meta = array("q")
            decomps = array("q")
            for prev_class, loop_flag, bucket in signatures:
                ordered = sorted(bucket)
                meta.extend((prev_class, loop_flag, len(ordered)))
                decomps.extend(ordered)
            conn.send(("sigs", meta, decomps))
            remap = conn.recv()
            current = {code: remap[sig_id] for code, sig_id in current.items()}
        conn.send(("blocks", array("q", current.keys()), array("q", current.values())))
    except Exception:  # pragma: no cover - ship the failure, don't hang
        with contextlib.suppress(OSError):
            conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _recv_payload(conn: Connection) -> tuple[array, array]:
    """Receive one shard message's two-column payload.

    Both protocol stages carry the same shape — ``("sigs", meta,
    decomps)`` per level, ``("blocks", codes, classes)`` at the end —
    and a worker that failed ships ``("error", traceback)`` instead,
    surfaced here as :class:`IndexBuildError` (as is a worker that died
    without reporting, which closes the pipe).
    """
    try:
        message = conn.recv()
    except EOFError:
        raise IndexBuildError("parallel partition worker exited unexpectedly") from None
    if message[0] == "error":
        raise IndexBuildError(f"parallel partition worker failed:\n{message[1]}")
    return message[1], message[2]


def _parallel_refinement(
    codes: array,
    classes: array,
    num_ids: int,
    k: int,
    sources: list[int],
    num_workers: int,
) -> tuple[list[array], list[int]]:
    """Run refinement levels ``2..k`` sharded over persistent workers.

    ``codes``/``classes`` are the aligned level-1 assignment columns
    (any order — workers normalize).  The parent's per-level job is pure
    signature unification: read each shard's packed signature table **in
    shard order** (deterministic — equal signatures across shards
    resolve to one global class id, new ids assigned first-seen), answer
    with a remap array per shard, and record the level's class count.
    Under the numpy backend the unification reuses the vectorized table
    build (:func:`repro.core.kernels.numpy_backend.unify_tables`):
    shipped decomposition runs are sorted and duplicate-free, so their
    raw byte slices key the signature dict directly instead of a
    per-signature frozenset fold — the PR-4 parent-side residue.
    Per-pair state never crosses the process boundary between levels;
    only the final assignment columns do, regrouped into member columns
    exactly as the serial path does.
    """
    from repro.serve.faults import current_injector

    use_numpy = kernels.active_backend() == "numpy"
    shards = shard_round_robin(sources, min(num_workers, len(sources)))
    injector = current_injector()
    tasks = [(k, shard, num_ids, codes, classes, injector) for shard in shards]
    level_counts: list[int] = []
    final: dict[int, int] = {}
    assignments: list[tuple[array, array]] = []
    with shard_processes(_partition_shard_worker, tasks) as connections:
        for _ in range(2, k + 1):
            tables = [_recv_payload(conn) for conn in connections]
            if use_numpy:
                remaps, level_count = kernels.backend_module().unify_tables(tables)
                for conn, remap in zip(connections, remaps, strict=True):
                    conn.send(remap)
                level_counts.append(level_count)
                continue
            global_ids: dict[_Signature, int] = {}
            assign = global_ids.setdefault
            for conn, (meta, decomps) in zip(connections, tables, strict=True):
                remap = array("q")
                offset = 0
                for row in range(0, len(meta), 3):
                    count = meta[row + 2]
                    signature = (
                        meta[row],
                        meta[row + 1],
                        frozenset(decomps[offset : offset + count]),
                    )
                    offset += count
                    remap.append(assign(signature, len(global_ids)))
                conn.send(remap)
            level_counts.append(len(global_ids))
        for conn in connections:
            shard_codes, shard_classes = _recv_payload(conn)
            if use_numpy:
                assignments.append((shard_codes, shard_classes))
            else:
                final.update(zip(shard_codes, shard_classes, strict=True))
    if use_numpy:
        return kernels.backend_module().merged_member_columns(assignments), level_counts
    return _block_columns(final), level_counts


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def compute_partition_codes(
    graph: LabeledDigraph,
    k: int,
    workers: int | str = 1,
    min_pairs: int | None = None,
) -> CodePartition:
    """Compute the CPQ_k-equivalence partition bottom-up (Algorithm 1).

    Level ``i`` composes every level-``i-1`` pair ``(v, m)`` with every
    level-1 pair ``(m, u)``; pairs are then re-grouped by ``(previous
    class, decomposition-class set)`` — see :func:`_refine_level`.

    ``workers`` > 1 (or ``"auto"``) shards the per-level refinement
    sweep along the interned source-vertex axis over persistent worker
    processes (see the module docstring for the protocol); the result is
    *identical* to the serial build, class ids included.  Graphs with
    fewer than ``min_pairs`` level-1 pairs (default
    :data:`PARALLEL_MIN_PAIRS`) stay on the serial loop regardless of
    ``workers``.
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    num_workers = resolve_workers(workers)
    if kernels.active_backend() == "numpy":
        return _compute_partition_codes_numpy(graph, k, num_workers, min_pairs)
    current = _level1_code_classes(graph)
    level_counts = [len(set(current.values()))]
    interner = graph.interner

    if k == 1:
        return _assemble(k, _block_columns(current), level_counts, interner)

    threshold = PARALLEL_MIN_PAIRS if min_pairs is None else min_pairs
    if num_workers > 1 and len(current) >= threshold:
        sources = sorted({code >> ID_BITS for code in current})
        if len(sources) > 1:
            # Fault tolerance (PR 7): the level-synchronized protocol
            # cannot re-dispatch one shard mid-level (every shard's
            # signature table feeds the same global unification), so a
            # failed refinement is retried whole once, then recomputed
            # serially — the serial loop is value-identical including
            # class ids (see _assemble), so the build still fingerprints
            # equal to a healthy parallel run.
            from repro.serve.faults import current_injector

            injector = current_injector()
            for attempt in range(2):
                try:
                    columns, refined_counts = _parallel_refinement(
                        array("q", current.keys()),
                        array("q", current.values()),
                        len(interner),
                        k,
                        sources,
                        num_workers,
                    )
                    return _assemble(k, columns, level_counts + refined_counts, interner)
                except IndexBuildError:  # noqa: PERF203 - retry ladder
                    if injector is not None:
                        injector.note(
                            "partition.retried" if attempt == 0 else "partition.serial_fallback"
                        )

    edge_class_by_source = _class_annotated_adjacency(current, len(interner))
    for _ in range(2, k + 1):
        current, signatures = _refine_level(current, edge_class_by_source)
        level_counts.append(len(signatures))
    return _assemble(k, _block_columns(current), level_counts, interner)


def _compute_partition_codes_numpy(
    graph: LabeledDigraph,
    k: int,
    num_workers: int,
    min_pairs: int | None,
) -> CodePartition:
    """Columnar twin of the pure flow above (numpy backend active).

    Intermediate class ids are assigned in sorted-code order rather than
    the pure refinement's first-seen dict order — a bijective relabeling
    at every level, invisible after :func:`_assemble`'s canonical
    renumbering: the returned ``CodePartition`` (class ids included) is
    identical to the pure backend's, serial or sharded.
    """
    nk = kernels.backend_module()
    interner = graph.interner
    codes, classes, num_classes = nk.level1_columns(graph.interned())
    level_counts = [num_classes]

    if k == 1:
        return _assemble(k, nk.class_member_columns(codes, classes), level_counts, interner)

    threshold = PARALLEL_MIN_PAIRS if min_pairs is None else min_pairs
    if num_workers > 1 and len(codes) >= threshold:
        sources = nk.source_ids(codes)
        if len(sources) > 1:
            # The same retry-then-serial ladder as the pure path: a
            # failed sharded refinement reruns whole once, then falls
            # back to the serial loop below (value-identical result).
            from repro.serve.faults import current_injector

            injector = current_injector()
            for attempt in range(2):
                try:
                    columns, refined_counts = _parallel_refinement(
                        nk.to_column(codes),
                        nk.to_column(classes),
                        len(interner),
                        k,
                        sources,
                        num_workers,
                    )
                    return _assemble(k, columns, level_counts + refined_counts, interner)
                except IndexBuildError:  # noqa: PERF203 - retry ladder
                    if injector is not None:
                        injector.note(
                            "partition.retried" if attempt == 0 else "partition.serial_fallback"
                        )

    csr = nk.edge_csr(codes, classes, len(interner))
    for _ in range(2, k + 1):
        codes, classes, level_count, _ = nk.refine_level(codes, classes, csr)
        level_counts.append(level_count)
    return _assemble(k, nk.class_member_columns(codes, classes), level_counts, interner)


def compute_partition(
    graph: LabeledDigraph,
    k: int,
    workers: int | str = 1,
) -> PathPartition:
    """Tuple-decoded view of :func:`compute_partition_codes` (public API)."""
    coded = compute_partition_codes(graph, k, workers=workers)
    decode = graph.interner.decode_pair
    blocks = {class_id: sorted(members, key=repr) for class_id, members in coded.blocks.items()}
    return PathPartition(
        k=coded.k,
        class_of={decode(code): cid for code, cid in coded.class_of.items()},
        blocks=blocks,
        loop_classes=coded.loop_classes,
        level_class_counts=coded.level_class_counts,
    )


def refines(finer: dict[Pair, int], coarser: dict[Pair, int]) -> bool:
    """True if partition ``finer`` refines ``coarser`` on the common domain.

    Exposed for the property-based tests of the refinement chain
    ``level-i refines level-(i-1)`` (Sec. IV-C's key invariant).
    """
    block_map: dict[int, int] = {}
    for pair, fine_id in finer.items():
        coarse_id = coarser.get(pair)
        if coarse_id is None:
            continue
        known = block_map.setdefault(fine_id, coarse_id)
        if known != coarse_id:
            return False
    return True
