"""k-path-bisimulation partitioning of s-t pairs (Algorithm 1).

The paper partitions ``P≤k`` into CPQ_k-equivalence classes using
k-path-bisimulation (Def. 4.1) computed bottom-up (Sec. IV-C): level-1
blocks group pairs by their direct edge labels, and level-``i`` blocks
refine level-``i-1`` blocks by the *decompositions* of each pair — the set
of ``(block of (v,m) at level i-1, block of (m,u) at level 1)`` over all
midpoints ``m``.

We realize the paper's "sequence of block identifiers
``⟨b1(v,u),…,bk(v,u)⟩``" as **cumulative class ids**: the level-``i``
signature folds the pair's level-``i-1`` class in, so the level-``k`` id
alone identifies the full sequence.  This sidesteps the ``Null``-block
bookkeeping of the pseudo-code while producing a partition at least as
fine as the paper's — and any refinement of a correct partition is still
correct for the index (the paper's own lazy maintenance relies on this,
Prop. 4.2).  The two invariants index correctness actually needs — all
pairs of a class share the same ``L≤k`` set, and agree on ``v == u`` —
are enforced by construction and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexBuildError
from repro.graph.digraph import LabeledDigraph, Pair, Vertex

#: A level signature: hashable key identifying a block within a level.
_Signature = tuple


@dataclass
class PathPartition:
    """The CPQ_k-equivalence partition of the non-empty-path pairs.

    Attributes:
        k: the path-length bound the partition was computed for.
        class_of: pair → class id, over all pairs with a path of length 1..k.
        blocks: class id → sorted list of member pairs.
        loop_classes: ids of classes whose pairs are loops (``v == u``).
        level_class_counts: number of blocks per level (diagnostics; the
            per-level growth is what Fig. 3's two rows illustrate).
    """

    k: int
    class_of: dict[Pair, int]
    blocks: dict[int, list[Pair]]
    loop_classes: frozenset[int]
    level_class_counts: list[int]

    @property
    def num_classes(self) -> int:
        """``|C|``, the paper's class-count statistic (Table III)."""
        return len(self.blocks)

    @property
    def num_pairs(self) -> int:
        """``|P≤k|`` restricted to non-empty paths."""
        return len(self.class_of)


def level1_classes(graph: LabeledDigraph) -> dict[Pair, int]:
    """Level-1 partition: group edge-connected pairs by ``(v==u, L1(v,u))``.

    This realizes Def. 4.1 conditions (1) and (2): two pairs are
    1-path-bisimilar iff they agree on loop-ness and on the extended edge
    labels between them (the inverse-extension makes condition 2's
    both-direction clauses a single label-set comparison).
    """
    label_sets: dict[Pair, set[int]] = {}
    for v, u, lab in graph.triples():
        label_sets.setdefault((v, u), set()).add(lab)
        label_sets.setdefault((u, v), set()).add(-lab)
    ids: dict[_Signature, int] = {}
    classes: dict[Pair, int] = {}
    for pair, labels in label_sets.items():
        signature = (pair[0] == pair[1], frozenset(labels))
        class_id = ids.setdefault(signature, len(ids))
        classes[pair] = class_id
    return classes


def compute_partition(graph: LabeledDigraph, k: int) -> PathPartition:
    """Compute the CPQ_k-equivalence partition bottom-up (Algorithm 1).

    Level ``i`` composes every level-``i-1`` pair ``(v, m)`` with every
    level-1 pair ``(m, u)``; pairs are then re-grouped by
    ``(previous class, decomposition-class set)``.  The per-level work is
    ``O(d · |P≤i-1|)`` plus the grouping, matching Theorem 4.3's bound
    (grouping here is a hash aggregation rather than the paper's sort —
    same asymptotics, simpler in Python).
    """
    if k < 1:
        raise IndexBuildError(f"k must be >= 1, got {k}")
    current = level1_classes(graph)
    level1 = dict(current)
    level_counts = [len(set(current.values()))]

    # Adjacency annotated with level-1 classes: m → [(u, C1(m, u))].
    # Built once; reused by every level's composition step.
    edge_class_by_source: dict[Vertex, list[tuple[Vertex, int]]] = {}
    for (m, u), class_id in level1.items():
        edge_class_by_source.setdefault(m, []).append((u, class_id))

    for _ in range(2, k + 1):
        decompositions: dict[Pair, set[tuple[int, int]]] = {}
        for (v, m), prev_class in current.items():
            for u, edge_class in edge_class_by_source.get(m, ()):
                decompositions.setdefault((v, u), set()).add((prev_class, edge_class))
        ids: dict[_Signature, int] = {}
        refined: dict[Pair, int] = {}
        domain = set(current)
        domain.update(decompositions)
        for pair in domain:
            signature = (
                pair[0] == pair[1],
                current.get(pair),
                frozenset(decompositions.get(pair, ())),
            )
            refined[pair] = ids.setdefault(signature, len(ids))
        current = refined
        level_counts.append(len(ids))

    blocks: dict[int, list[Pair]] = {}
    for pair, class_id in current.items():
        blocks.setdefault(class_id, []).append(pair)
    for members in blocks.values():
        members.sort(key=repr)
    loop_classes = frozenset(
        class_id
        for class_id, members in blocks.items()
        if members and members[0][0] == members[0][1]
    )
    return PathPartition(
        k=k,
        class_of=current,
        blocks=blocks,
        loop_classes=loop_classes,
        level_class_counts=level_counts,
    )


def refines(finer: dict[Pair, int], coarser: dict[Pair, int]) -> bool:
    """True if partition ``finer`` refines ``coarser`` on the common domain.

    Exposed for the property-based tests of the refinement chain
    ``level-i refines level-(i-1)`` (Sec. IV-C's key invariant).
    """
    block_map: dict[int, int] = {}
    for pair, fine_id in finer.items():
        coarse_id = coarser.get(pair)
        if coarse_id is None:
            continue
        known = block_map.setdefault(fine_id, coarse_id)
        if known != coarse_id:
            return False
    return True
